file(REMOVE_RECURSE
  "CMakeFiles/simba_sss.dir/sss.cc.o"
  "CMakeFiles/simba_sss.dir/sss.cc.o.d"
  "libsimba_sss.a"
  "libsimba_sss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
