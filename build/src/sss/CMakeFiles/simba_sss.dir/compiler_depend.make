# Empty compiler generated dependencies file for simba_sss.
# This may be replaced when dependencies are built.
