file(REMOVE_RECURSE
  "libsimba_sss.a"
)
