
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_book.cc" "src/core/CMakeFiles/simba_core.dir/address_book.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/address_book.cc.o.d"
  "/root/repo/src/core/alert.cc" "src/core/CMakeFiles/simba_core.dir/alert.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/alert.cc.o.d"
  "/root/repo/src/core/alert_log.cc" "src/core/CMakeFiles/simba_core.dir/alert_log.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/alert_log.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/simba_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/category_map.cc" "src/core/CMakeFiles/simba_core.dir/category_map.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/category_map.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/simba_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/config_xml.cc" "src/core/CMakeFiles/simba_core.dir/config_xml.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/config_xml.cc.o.d"
  "/root/repo/src/core/delivery_engine.cc" "src/core/CMakeFiles/simba_core.dir/delivery_engine.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/delivery_engine.cc.o.d"
  "/root/repo/src/core/delivery_mode.cc" "src/core/CMakeFiles/simba_core.dir/delivery_mode.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/delivery_mode.cc.o.d"
  "/root/repo/src/core/digest.cc" "src/core/CMakeFiles/simba_core.dir/digest.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/digest.cc.o.d"
  "/root/repo/src/core/mab.cc" "src/core/CMakeFiles/simba_core.dir/mab.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/mab.cc.o.d"
  "/root/repo/src/core/mab_host.cc" "src/core/CMakeFiles/simba_core.dir/mab_host.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/mab_host.cc.o.d"
  "/root/repo/src/core/mdc.cc" "src/core/CMakeFiles/simba_core.dir/mdc.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/mdc.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/simba_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/profile.cc.o.d"
  "/root/repo/src/core/source_endpoint.cc" "src/core/CMakeFiles/simba_core.dir/source_endpoint.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/source_endpoint.cc.o.d"
  "/root/repo/src/core/user_endpoint.cc" "src/core/CMakeFiles/simba_core.dir/user_endpoint.cc.o" "gcc" "src/core/CMakeFiles/simba_core.dir/user_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automation/CMakeFiles/simba_automation.dir/DependInfo.cmake"
  "/root/repo/build/src/email/CMakeFiles/simba_email.dir/DependInfo.cmake"
  "/root/repo/build/src/im/CMakeFiles/simba_im.dir/DependInfo.cmake"
  "/root/repo/build/src/sms/CMakeFiles/simba_sms.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/simba_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/simba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gui/CMakeFiles/simba_gui.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
