# Empty compiler generated dependencies file for simba_core.
# This may be replaced when dependencies are built.
