# Empty dependencies file for simba_im.
# This may be replaced when dependencies are built.
