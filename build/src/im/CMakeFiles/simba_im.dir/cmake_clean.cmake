file(REMOVE_RECURSE
  "CMakeFiles/simba_im.dir/im_client.cc.o"
  "CMakeFiles/simba_im.dir/im_client.cc.o.d"
  "CMakeFiles/simba_im.dir/im_server.cc.o"
  "CMakeFiles/simba_im.dir/im_server.cc.o.d"
  "libsimba_im.a"
  "libsimba_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
