file(REMOVE_RECURSE
  "libsimba_im.a"
)
