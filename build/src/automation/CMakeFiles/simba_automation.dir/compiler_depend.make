# Empty compiler generated dependencies file for simba_automation.
# This may be replaced when dependencies are built.
