file(REMOVE_RECURSE
  "libsimba_automation.a"
)
