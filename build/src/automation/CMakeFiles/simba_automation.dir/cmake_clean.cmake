file(REMOVE_RECURSE
  "CMakeFiles/simba_automation.dir/email_manager.cc.o"
  "CMakeFiles/simba_automation.dir/email_manager.cc.o.d"
  "CMakeFiles/simba_automation.dir/im_manager.cc.o"
  "CMakeFiles/simba_automation.dir/im_manager.cc.o.d"
  "CMakeFiles/simba_automation.dir/manager.cc.o"
  "CMakeFiles/simba_automation.dir/manager.cc.o.d"
  "libsimba_automation.a"
  "libsimba_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
