file(REMOVE_RECURSE
  "libsimba_assistant.a"
)
