file(REMOVE_RECURSE
  "CMakeFiles/simba_assistant.dir/assistant.cc.o"
  "CMakeFiles/simba_assistant.dir/assistant.cc.o.d"
  "libsimba_assistant.a"
  "libsimba_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
