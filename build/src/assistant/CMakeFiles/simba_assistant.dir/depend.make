# Empty dependencies file for simba_assistant.
# This may be replaced when dependencies are built.
