file(REMOVE_RECURSE
  "CMakeFiles/simba_gui.dir/client_app.cc.o"
  "CMakeFiles/simba_gui.dir/client_app.cc.o.d"
  "CMakeFiles/simba_gui.dir/desktop.cc.o"
  "CMakeFiles/simba_gui.dir/desktop.cc.o.d"
  "libsimba_gui.a"
  "libsimba_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
