file(REMOVE_RECURSE
  "libsimba_gui.a"
)
