# Empty dependencies file for simba_gui.
# This may be replaced when dependencies are built.
