
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gui/client_app.cc" "src/gui/CMakeFiles/simba_gui.dir/client_app.cc.o" "gcc" "src/gui/CMakeFiles/simba_gui.dir/client_app.cc.o.d"
  "/root/repo/src/gui/desktop.cc" "src/gui/CMakeFiles/simba_gui.dir/desktop.cc.o" "gcc" "src/gui/CMakeFiles/simba_gui.dir/desktop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/simba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
