file(REMOVE_RECURSE
  "libsimba_aladdin.a"
)
