# Empty compiler generated dependencies file for simba_aladdin.
# This may be replaced when dependencies are built.
