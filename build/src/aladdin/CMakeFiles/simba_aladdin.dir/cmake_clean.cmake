file(REMOVE_RECURSE
  "CMakeFiles/simba_aladdin.dir/devices.cc.o"
  "CMakeFiles/simba_aladdin.dir/devices.cc.o.d"
  "CMakeFiles/simba_aladdin.dir/home_network.cc.o"
  "CMakeFiles/simba_aladdin.dir/home_network.cc.o.d"
  "CMakeFiles/simba_aladdin.dir/monitor.cc.o"
  "CMakeFiles/simba_aladdin.dir/monitor.cc.o.d"
  "CMakeFiles/simba_aladdin.dir/remote_automation.cc.o"
  "CMakeFiles/simba_aladdin.dir/remote_automation.cc.o.d"
  "libsimba_aladdin.a"
  "libsimba_aladdin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_aladdin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
