# Empty compiler generated dependencies file for simba_xml.
# This may be replaced when dependencies are built.
