file(REMOVE_RECURSE
  "libsimba_xml.a"
)
