file(REMOVE_RECURSE
  "CMakeFiles/simba_xml.dir/xml.cc.o"
  "CMakeFiles/simba_xml.dir/xml.cc.o.d"
  "libsimba_xml.a"
  "libsimba_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
