file(REMOVE_RECURSE
  "CMakeFiles/simba_util.dir/calendar.cc.o"
  "CMakeFiles/simba_util.dir/calendar.cc.o.d"
  "CMakeFiles/simba_util.dir/log.cc.o"
  "CMakeFiles/simba_util.dir/log.cc.o.d"
  "CMakeFiles/simba_util.dir/rng.cc.o"
  "CMakeFiles/simba_util.dir/rng.cc.o.d"
  "CMakeFiles/simba_util.dir/stats.cc.o"
  "CMakeFiles/simba_util.dir/stats.cc.o.d"
  "CMakeFiles/simba_util.dir/strings.cc.o"
  "CMakeFiles/simba_util.dir/strings.cc.o.d"
  "CMakeFiles/simba_util.dir/time.cc.o"
  "CMakeFiles/simba_util.dir/time.cc.o.d"
  "libsimba_util.a"
  "libsimba_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
