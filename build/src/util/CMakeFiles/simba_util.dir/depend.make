# Empty dependencies file for simba_util.
# This may be replaced when dependencies are built.
