# Empty dependencies file for simba_sms.
# This may be replaced when dependencies are built.
