file(REMOVE_RECURSE
  "libsimba_sms.a"
)
