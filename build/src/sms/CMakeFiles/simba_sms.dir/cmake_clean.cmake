file(REMOVE_RECURSE
  "CMakeFiles/simba_sms.dir/sms.cc.o"
  "CMakeFiles/simba_sms.dir/sms.cc.o.d"
  "libsimba_sms.a"
  "libsimba_sms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_sms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
