# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("xml")
subdirs("sim")
subdirs("net")
subdirs("gui")
subdirs("im")
subdirs("email")
subdirs("sms")
subdirs("automation")
subdirs("sss")
subdirs("aladdin")
subdirs("wish")
subdirs("proxy")
subdirs("assistant")
subdirs("core")
subdirs("fleet")
