file(REMOVE_RECURSE
  "CMakeFiles/simba_wish.dir/wish.cc.o"
  "CMakeFiles/simba_wish.dir/wish.cc.o.d"
  "libsimba_wish.a"
  "libsimba_wish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_wish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
