file(REMOVE_RECURSE
  "libsimba_wish.a"
)
