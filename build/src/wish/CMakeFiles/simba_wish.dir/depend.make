# Empty dependencies file for simba_wish.
# This may be replaced when dependencies are built.
