# Empty dependencies file for simba_net.
# This may be replaced when dependencies are built.
