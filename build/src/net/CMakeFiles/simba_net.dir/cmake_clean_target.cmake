file(REMOVE_RECURSE
  "libsimba_net.a"
)
