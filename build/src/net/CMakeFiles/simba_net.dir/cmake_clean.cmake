file(REMOVE_RECURSE
  "CMakeFiles/simba_net.dir/bus.cc.o"
  "CMakeFiles/simba_net.dir/bus.cc.o.d"
  "libsimba_net.a"
  "libsimba_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
