file(REMOVE_RECURSE
  "CMakeFiles/simba_fleet.dir/fleet.cc.o"
  "CMakeFiles/simba_fleet.dir/fleet.cc.o.d"
  "CMakeFiles/simba_fleet.dir/portal_workload.cc.o"
  "CMakeFiles/simba_fleet.dir/portal_workload.cc.o.d"
  "CMakeFiles/simba_fleet.dir/user_world.cc.o"
  "CMakeFiles/simba_fleet.dir/user_world.cc.o.d"
  "libsimba_fleet.a"
  "libsimba_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
