file(REMOVE_RECURSE
  "libsimba_fleet.a"
)
