# Empty dependencies file for simba_fleet.
# This may be replaced when dependencies are built.
