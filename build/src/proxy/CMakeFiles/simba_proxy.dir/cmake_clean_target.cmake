file(REMOVE_RECURSE
  "libsimba_proxy.a"
)
