file(REMOVE_RECURSE
  "CMakeFiles/simba_proxy.dir/proxy.cc.o"
  "CMakeFiles/simba_proxy.dir/proxy.cc.o.d"
  "libsimba_proxy.a"
  "libsimba_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
