# Empty compiler generated dependencies file for simba_proxy.
# This may be replaced when dependencies are built.
