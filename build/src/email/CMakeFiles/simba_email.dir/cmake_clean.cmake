file(REMOVE_RECURSE
  "CMakeFiles/simba_email.dir/email_client.cc.o"
  "CMakeFiles/simba_email.dir/email_client.cc.o.d"
  "CMakeFiles/simba_email.dir/email_server.cc.o"
  "CMakeFiles/simba_email.dir/email_server.cc.o.d"
  "libsimba_email.a"
  "libsimba_email.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_email.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
