
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/email/email_client.cc" "src/email/CMakeFiles/simba_email.dir/email_client.cc.o" "gcc" "src/email/CMakeFiles/simba_email.dir/email_client.cc.o.d"
  "/root/repo/src/email/email_server.cc" "src/email/CMakeFiles/simba_email.dir/email_server.cc.o" "gcc" "src/email/CMakeFiles/simba_email.dir/email_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gui/CMakeFiles/simba_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
