file(REMOVE_RECURSE
  "libsimba_email.a"
)
