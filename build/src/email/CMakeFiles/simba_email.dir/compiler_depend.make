# Empty compiler generated dependencies file for simba_email.
# This may be replaced when dependencies are built.
