file(REMOVE_RECURSE
  "CMakeFiles/simba_sim.dir/fault.cc.o"
  "CMakeFiles/simba_sim.dir/fault.cc.o.d"
  "CMakeFiles/simba_sim.dir/simulator.cc.o"
  "CMakeFiles/simba_sim.dir/simulator.cc.o.d"
  "libsimba_sim.a"
  "libsimba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
