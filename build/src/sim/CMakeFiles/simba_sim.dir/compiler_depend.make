# Empty compiler generated dependencies file for simba_sim.
# This may be replaced when dependencies are built.
