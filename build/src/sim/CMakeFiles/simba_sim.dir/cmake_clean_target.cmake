file(REMOVE_RECURSE
  "libsimba_sim.a"
)
