# Empty compiler generated dependencies file for simba_bench_common.
# This may be replaced when dependencies are built.
