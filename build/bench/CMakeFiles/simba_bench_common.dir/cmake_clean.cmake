file(REMOVE_RECURSE
  "CMakeFiles/simba_bench_common.dir/common.cc.o"
  "CMakeFiles/simba_bench_common.dir/common.cc.o.d"
  "libsimba_bench_common.a"
  "libsimba_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simba_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
