file(REMOVE_RECURSE
  "libsimba_bench_common.a"
)
