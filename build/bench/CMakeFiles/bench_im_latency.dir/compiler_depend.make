# Empty compiler generated dependencies file for bench_im_latency.
# This may be replaced when dependencies are built.
