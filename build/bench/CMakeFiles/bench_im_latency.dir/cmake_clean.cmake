file(REMOVE_RECURSE
  "CMakeFiles/bench_im_latency.dir/bench_im_latency.cc.o"
  "CMakeFiles/bench_im_latency.dir/bench_im_latency.cc.o.d"
  "bench_im_latency"
  "bench_im_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_im_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
