file(REMOVE_RECURSE
  "CMakeFiles/bench_portal_scale.dir/bench_portal_scale.cc.o"
  "CMakeFiles/bench_portal_scale.dir/bench_portal_scale.cc.o.d"
  "bench_portal_scale"
  "bench_portal_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portal_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
