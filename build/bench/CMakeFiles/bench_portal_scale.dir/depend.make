# Empty dependencies file for bench_portal_scale.
# This may be replaced when dependencies are built.
