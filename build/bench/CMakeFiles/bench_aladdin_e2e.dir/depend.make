# Empty dependencies file for bench_aladdin_e2e.
# This may be replaced when dependencies are built.
