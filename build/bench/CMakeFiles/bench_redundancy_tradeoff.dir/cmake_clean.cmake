file(REMOVE_RECURSE
  "CMakeFiles/bench_redundancy_tradeoff.dir/bench_redundancy_tradeoff.cc.o"
  "CMakeFiles/bench_redundancy_tradeoff.dir/bench_redundancy_tradeoff.cc.o.d"
  "bench_redundancy_tradeoff"
  "bench_redundancy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redundancy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
