file(REMOVE_RECURSE
  "CMakeFiles/bench_proxy_routing.dir/bench_proxy_routing.cc.o"
  "CMakeFiles/bench_proxy_routing.dir/bench_proxy_routing.cc.o.d"
  "bench_proxy_routing"
  "bench_proxy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
