# Empty compiler generated dependencies file for bench_proxy_routing.
# This may be replaced when dependencies are built.
