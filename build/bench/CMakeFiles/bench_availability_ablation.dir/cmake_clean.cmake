file(REMOVE_RECURSE
  "CMakeFiles/bench_availability_ablation.dir/bench_availability_ablation.cc.o"
  "CMakeFiles/bench_availability_ablation.dir/bench_availability_ablation.cc.o.d"
  "bench_availability_ablation"
  "bench_availability_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
