# Empty dependencies file for bench_availability_ablation.
# This may be replaced when dependencies are built.
