file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_month.dir/bench_fault_month.cc.o"
  "CMakeFiles/bench_fault_month.dir/bench_fault_month.cc.o.d"
  "bench_fault_month"
  "bench_fault_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
