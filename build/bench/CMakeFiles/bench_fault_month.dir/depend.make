# Empty dependencies file for bench_fault_month.
# This may be replaced when dependencies are built.
