# Empty dependencies file for bench_ack_latency.
# This may be replaced when dependencies are built.
