file(REMOVE_RECURSE
  "CMakeFiles/bench_ack_latency.dir/bench_ack_latency.cc.o"
  "CMakeFiles/bench_ack_latency.dir/bench_ack_latency.cc.o.d"
  "bench_ack_latency"
  "bench_ack_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ack_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
