file(REMOVE_RECURSE
  "CMakeFiles/where_is_victor.dir/where_is_victor.cpp.o"
  "CMakeFiles/where_is_victor.dir/where_is_victor.cpp.o.d"
  "where_is_victor"
  "where_is_victor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/where_is_victor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
