# Empty compiler generated dependencies file for where_is_victor.
# This may be replaced when dependencies are built.
