# Empty compiler generated dependencies file for election_watch.
# This may be replaced when dependencies are built.
