file(REMOVE_RECURSE
  "CMakeFiles/election_watch.dir/election_watch.cpp.o"
  "CMakeFiles/election_watch.dir/election_watch.cpp.o.d"
  "election_watch"
  "election_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
