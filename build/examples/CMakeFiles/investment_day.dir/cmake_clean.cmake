file(REMOVE_RECURSE
  "CMakeFiles/investment_day.dir/investment_day.cpp.o"
  "CMakeFiles/investment_day.dir/investment_day.cpp.o.d"
  "investment_day"
  "investment_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investment_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
