# Empty dependencies file for investment_day.
# This may be replaced when dependencies are built.
