# Empty compiler generated dependencies file for home_security.
# This may be replaced when dependencies are built.
