file(REMOVE_RECURSE
  "CMakeFiles/home_security.dir/home_security.cpp.o"
  "CMakeFiles/home_security.dir/home_security.cpp.o.d"
  "home_security"
  "home_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
