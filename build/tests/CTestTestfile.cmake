# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gui_test[1]_include.cmake")
include("/root/repo/build/tests/im_test[1]_include.cmake")
include("/root/repo/build/tests/email_test[1]_include.cmake")
include("/root/repo/build/tests/automation_test[1]_include.cmake")
include("/root/repo/build/tests/sss_test[1]_include.cmake")
include("/root/repo/build/tests/aladdin_test[1]_include.cmake")
include("/root/repo/build/tests/wish_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/assistant_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/config_xml_test[1]_include.cmake")
include("/root/repo/build/tests/remote_automation_test[1]_include.cmake")
include("/root/repo/build/tests/delivery_test[1]_include.cmake")
include("/root/repo/build/tests/mab_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/component_test[1]_include.cmake")
include("/root/repo/build/tests/conservation_test[1]_include.cmake")
include("/root/repo/build/tests/conservation_test[2]_include.cmake")
include("/root/repo/build/tests/stats_merge_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
