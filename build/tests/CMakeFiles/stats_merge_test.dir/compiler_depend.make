# Empty compiler generated dependencies file for stats_merge_test.
# This may be replaced when dependencies are built.
