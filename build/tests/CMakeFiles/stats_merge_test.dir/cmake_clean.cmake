file(REMOVE_RECURSE
  "CMakeFiles/stats_merge_test.dir/stats_merge_test.cc.o"
  "CMakeFiles/stats_merge_test.dir/stats_merge_test.cc.o.d"
  "stats_merge_test"
  "stats_merge_test.pdb"
  "stats_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
