# Empty dependencies file for aladdin_test.
# This may be replaced when dependencies are built.
