file(REMOVE_RECURSE
  "CMakeFiles/aladdin_test.dir/aladdin_test.cc.o"
  "CMakeFiles/aladdin_test.dir/aladdin_test.cc.o.d"
  "aladdin_test"
  "aladdin_test.pdb"
  "aladdin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
