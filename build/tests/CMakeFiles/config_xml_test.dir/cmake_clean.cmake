file(REMOVE_RECURSE
  "CMakeFiles/config_xml_test.dir/config_xml_test.cc.o"
  "CMakeFiles/config_xml_test.dir/config_xml_test.cc.o.d"
  "config_xml_test"
  "config_xml_test.pdb"
  "config_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
