# Empty compiler generated dependencies file for config_xml_test.
# This may be replaced when dependencies are built.
