# Empty compiler generated dependencies file for sss_test.
# This may be replaced when dependencies are built.
