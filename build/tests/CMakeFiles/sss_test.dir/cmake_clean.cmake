file(REMOVE_RECURSE
  "CMakeFiles/sss_test.dir/sss_test.cc.o"
  "CMakeFiles/sss_test.dir/sss_test.cc.o.d"
  "sss_test"
  "sss_test.pdb"
  "sss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
