file(REMOVE_RECURSE
  "CMakeFiles/email_test.dir/email_test.cc.o"
  "CMakeFiles/email_test.dir/email_test.cc.o.d"
  "email_test"
  "email_test.pdb"
  "email_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
