# Empty compiler generated dependencies file for email_test.
# This may be replaced when dependencies are built.
