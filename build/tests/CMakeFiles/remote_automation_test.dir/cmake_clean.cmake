file(REMOVE_RECURSE
  "CMakeFiles/remote_automation_test.dir/remote_automation_test.cc.o"
  "CMakeFiles/remote_automation_test.dir/remote_automation_test.cc.o.d"
  "remote_automation_test"
  "remote_automation_test.pdb"
  "remote_automation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_automation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
