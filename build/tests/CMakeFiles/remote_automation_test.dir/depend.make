# Empty dependencies file for remote_automation_test.
# This may be replaced when dependencies are built.
