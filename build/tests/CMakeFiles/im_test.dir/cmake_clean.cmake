file(REMOVE_RECURSE
  "CMakeFiles/im_test.dir/im_test.cc.o"
  "CMakeFiles/im_test.dir/im_test.cc.o.d"
  "im_test"
  "im_test.pdb"
  "im_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
