# Empty compiler generated dependencies file for wish_test.
# This may be replaced when dependencies are built.
