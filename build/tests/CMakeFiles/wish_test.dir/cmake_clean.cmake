file(REMOVE_RECURSE
  "CMakeFiles/wish_test.dir/wish_test.cc.o"
  "CMakeFiles/wish_test.dir/wish_test.cc.o.d"
  "wish_test"
  "wish_test.pdb"
  "wish_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
