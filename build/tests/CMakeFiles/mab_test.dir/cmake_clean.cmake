file(REMOVE_RECURSE
  "CMakeFiles/mab_test.dir/mab_test.cc.o"
  "CMakeFiles/mab_test.dir/mab_test.cc.o.d"
  "mab_test"
  "mab_test.pdb"
  "mab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
