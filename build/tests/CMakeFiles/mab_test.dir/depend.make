# Empty dependencies file for mab_test.
# This may be replaced when dependencies are built.
