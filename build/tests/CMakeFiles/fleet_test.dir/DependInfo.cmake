
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fleet_test.cc" "tests/CMakeFiles/fleet_test.dir/fleet_test.cc.o" "gcc" "tests/CMakeFiles/fleet_test.dir/fleet_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/simba_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/simba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/automation/CMakeFiles/simba_automation.dir/DependInfo.cmake"
  "/root/repo/build/src/im/CMakeFiles/simba_im.dir/DependInfo.cmake"
  "/root/repo/build/src/sms/CMakeFiles/simba_sms.dir/DependInfo.cmake"
  "/root/repo/build/src/email/CMakeFiles/simba_email.dir/DependInfo.cmake"
  "/root/repo/build/src/gui/CMakeFiles/simba_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/simba_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/simba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/simba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
