// Simulated desktop "screen": the set of dialog boxes currently
// visible on the machine that hosts MyAlertBuddy and its communication
// client software.
//
// The paper (Section 4.1.1): dialog boxes "should never pop up when the
// software is driven by a program through automation interfaces because
// the program cannot interact with the boxes, which then stay on the
// screen forever and prevent the entire application from making
// progress". The monkey thread in src/automation clicks them away by
// caption/button pair; unknown captions block their owner app forever —
// exactly the two unrecovered dialog-box failures in the paper's
// one-month log (experiment E6).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace simba::gui {

struct DialogBox {
  std::uint64_t id = 0;
  std::string owner;    // app name, or "system" for OS-level dialogs
  std::string caption;
  std::vector<std::string> buttons;
  bool blocks_owner = true;  // owner app cannot make progress while open
  TimePoint opened_at{};
};

class Desktop {
 public:
  explicit Desktop(sim::Simulator& sim) : sim_(sim) {}

  /// Shows a dialog; returns its id. `on_closed` (optional) runs when a
  /// button is clicked, with the button label.
  std::uint64_t show(DialogBox box,
                     std::function<void(const std::string& button)> on_closed =
                         nullptr);

  /// Clicks `button` on the first dialog whose caption contains
  /// `caption_substring` (case-insensitive) and which offers that
  /// button. This is what the monkey thread does: mouse-down, mouse-up.
  /// Returns true if a dialog was dismissed. Parameters are by value:
  /// callers often pass strings that live inside dialogs(), which this
  /// call invalidates.
  bool click(std::string caption_substring, std::string button);

  /// Force-closes all dialogs owned by `owner` (the owner process was
  /// killed, so the OS reaps its windows).
  void close_owned_by(const std::string& owner);

  /// Force-closes everything (machine reboot / power loss).
  void clear();

  const std::vector<DialogBox>& dialogs() const { return dialogs_; }
  std::size_t count() const { return dialogs_.size(); }
  /// True if a modal dialog blocks this app: one it owns, or a
  /// system-owned modal (owner "system"), which blocks everything.
  bool any_blocking(const std::string& owner) const;
  /// Longest time any currently-open dialog has been on screen.
  Duration oldest_age() const;

 private:
  struct Entry {
    DialogBox box;
    std::function<void(const std::string&)> on_closed;
  };
  void rebuild_view();

  sim::Simulator& sim_;
  std::vector<Entry> entries_;
  std::vector<DialogBox> dialogs_;  // view kept in sync with entries_
  std::uint64_t next_id_ = 1;
};

}  // namespace simba::gui
