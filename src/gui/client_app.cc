#include "gui/client_app.h"

#include <algorithm>

#include "util/log.h"

namespace simba::gui {

ClientApp::ClientApp(sim::Simulator& sim, Desktop& desktop, std::string name,
                     FaultProfile profile)
    : sim_(sim),
      desktop_(desktop),
      name_(std::move(name)),
      profile_(std::move(profile)),
      rng_(sim.make_rng("gui." + name_)) {}

ClientApp::~ClientApp() { cancel_faults(); }

void ClientApp::launch() {
  if (state_ == ProcessState::kRunning) return;
  if (state_ == ProcessState::kHung) {
    // A hung process still occupies the singleton app slot; a human
    // would have to kill it first, and so must the Manager.
    log_warn("gui." + name_, "launch ignored: hung instance still present");
    return;
  }
  state_ = ProcessState::kRunning;
  ++instance_;
  launched_at_ = sim_.now();
  leaked_op_mb_ = 0.0;
  stats_.bump("launches");
  SIMBA_LOG_DEBUG("gui." + name_,
                  "launched, instance " + std::to_string(instance_));
  schedule_faults();
  on_launch();
}

void ClientApp::kill() {
  if (state_ == ProcessState::kNotRunning) return;
  cancel_faults();
  state_ = ProcessState::kNotRunning;
  stats_.bump("kills");
  desktop_.close_owned_by(name_);
  SIMBA_LOG_DEBUG("gui." + name_, "killed");
  on_kill();
}

double ClientApp::memory_mb() const {
  if (state_ == ProcessState::kNotRunning) return 0.0;
  const double hours = to_seconds(sim_.now() - launched_at_) / 3600.0;
  return profile_.base_memory_mb + profile_.leak_mb_per_hour * hours +
         leaked_op_mb_;
}

Duration ClientApp::uptime() const {
  return state_ == ProcessState::kNotRunning ? Duration::zero()
                                             : sim_.now() - launched_at_;
}

void ClientApp::pop_dialog(const DialogSpec& spec) {
  if (state_ == ProcessState::kNotRunning) return;
  DialogBox box;
  box.owner = spec.system_owned ? "system" : name_;
  box.caption = spec.caption;
  box.buttons = {spec.button};
  box.blocks_owner = spec.blocks_app;
  desktop_.show(std::move(box));
  stats_.bump("dialogs_popped");
}

void ClientApp::force_hang() {
  if (state_ != ProcessState::kRunning) return;
  cancel_faults();
  state_ = ProcessState::kHung;
  stats_.bump("hangs");
  SIMBA_LOG_DEBUG("gui." + name_, "hung");
}

void ClientApp::force_crash() {
  if (state_ == ProcessState::kNotRunning) return;
  cancel_faults();
  state_ = ProcessState::kNotRunning;
  stats_.bump("crashes");
  desktop_.close_owned_by(name_);
  SIMBA_LOG_DEBUG("gui." + name_, "crashed");
  on_kill();
}

Status ClientApp::begin_operation(const std::string& op) {
  stats_.bump("ops");
  switch (state_) {
    case ProcessState::kNotRunning:
      return Status::failure(name_ + ": process not running");
    case ProcessState::kHung:
      return Status::failure(name_ + ": process hung");
    case ProcessState::kRunning:
      break;
  }
  if (desktop_.any_blocking(name_)) {
    return Status::failure(name_ + ": blocked by modal dialog");
  }
  if (memory_mb() > profile_.memory_hang_threshold_mb) {
    // Resource exhaustion: the next touch pushes it over.
    force_hang();
    return Status::failure(name_ + ": process hung (memory exhaustion)");
  }
  if ((profile_.exception_op.empty() || profile_.exception_op == op) &&
      rng_.chance(profile_.op_exception_probability)) {
    stats_.bump("op_exceptions");
    throw AutomationError(name_ + "." + op +
                          ": exception from undocumented interface");
  }
  if (rng_.chance(profile_.op_transient_failure_probability)) {
    stats_.bump("op_transient_failures");
    return Status::failure(name_ + "." + op + ": transient failure");
  }
  leaked_op_mb_ += profile_.leak_mb_per_op;
  return Status::success();
}

void ClientApp::schedule_faults() {
  auto arm = [this](Duration mean, auto&& action, const char* label) {
    if (mean <= Duration::zero()) return;
    const Duration delay = rng_.exponential_duration(mean);
    fault_events_.push_back(sim_.after(
        delay, std::forward<decltype(action)>(action),
        label_interner_.intern("gui." + name_ + "." + label)));
  };
  arm(profile_.mean_time_to_hang, [this] { force_hang(); }, "hang");
  arm(profile_.mean_time_to_crash, [this] { force_crash(); }, "crash");
  arm(profile_.mean_time_to_dialog, [this] { spontaneous_dialog(); },
      "dialog");
}

void ClientApp::cancel_faults() {
  for (const auto id : fault_events_) sim_.cancel(id);
  fault_events_.clear();
}

void ClientApp::spontaneous_dialog() {
  if (state_ != ProcessState::kRunning || profile_.dialog_pool.empty()) return;
  std::vector<double> weights;
  weights.reserve(profile_.dialog_pool.size());
  for (const auto& d : profile_.dialog_pool) weights.push_back(d.weight);
  const std::size_t pick = rng_.weighted_index(weights.data(), weights.size());
  pop_dialog(profile_.dialog_pool[pick]);
  // Re-arm for the next spontaneous dialog.
  if (profile_.mean_time_to_dialog > Duration::zero()) {
    fault_events_.push_back(sim_.after(
        rng_.exponential_duration(profile_.mean_time_to_dialog),
        [this] { spontaneous_dialog(); },
        label_interner_.intern("gui." + name_ + ".dialog")));
  }
}

}  // namespace simba::gui
