#include "gui/desktop.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace simba::gui {

std::uint64_t Desktop::show(DialogBox box,
                            std::function<void(const std::string&)> on_closed) {
  box.id = next_id_++;
  box.opened_at = sim_.now();
  SIMBA_LOG_DEBUG("desktop", "dialog shown: \"" + box.caption + "\" (owner=" +
                                 box.owner + ")");
  entries_.push_back(Entry{std::move(box), std::move(on_closed)});
  rebuild_view();
  return entries_.back().box.id;
}

bool Desktop::click(std::string caption_substring, std::string button) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const DialogBox& box = entries_[i].box;
    if (!icontains(box.caption, caption_substring)) continue;
    const auto match =
        std::find_if(box.buttons.begin(), box.buttons.end(),
                     [&](const std::string& b) { return iequals(b, button); });
    if (match == box.buttons.end()) continue;
    const std::string canonical = *match;  // report the real label
    SIMBA_LOG_DEBUG("desktop", "dialog clicked: \"" + box.caption + "\" [" +
                                   canonical + "]");
    auto on_closed = std::move(entries_[i].on_closed);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    rebuild_view();
    if (on_closed) on_closed(canonical);
    return true;
  }
  return false;
}

void Desktop::close_owned_by(const std::string& owner) {
  // Deliberately no on_closed callbacks: the owner process is gone.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.box.owner == owner;
                                }),
                 entries_.end());
  rebuild_view();
}

void Desktop::clear() {
  entries_.clear();
  rebuild_view();
}

bool Desktop::any_blocking(const std::string& owner) const {
  return std::any_of(dialogs_.begin(), dialogs_.end(),
                     [&](const DialogBox& b) {
                       return (b.owner == owner || b.owner == "system") &&
                              b.blocks_owner;
                     });
}

Duration Desktop::oldest_age() const {
  Duration oldest{0};
  for (const auto& b : dialogs_) {
    oldest = std::max(oldest, sim_.now() - b.opened_at);
  }
  return oldest;
}

void Desktop::rebuild_view() {
  dialogs_.clear();
  dialogs_.reserve(entries_.size());
  for (const auto& e : entries_) dialogs_.push_back(e.box);
}

}  // namespace simba::gui
