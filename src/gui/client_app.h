// Base class for simulated third-party GUI communication client
// software (the IM client and the email client).
//
// The paper's Communication Managers do not speak wire protocols; they
// drive "exactly the same email and IM client software that human users
// use" through automation interfaces. Those clients are opaque and
// flaky: they hang, crash, pop up dialog boxes, throw exceptions from
// undocumented interfaces, and leak memory. This class models all of
// those failure modes with tunable rates so the exception-handling
// automation layer (src/automation) has something real to recover from.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gui/desktop.h"
#include "sim/simulator.h"
#include "util/interner.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::gui {

/// Thrown by automation calls when the client misbehaves in a way the
/// paper attributes to "an earlier version of undocumented interfaces".
/// Managers and MyAlertBuddy catch these; uncaught ones terminate MAB
/// and exercise the MDC watchdog.
class AutomationError : public std::runtime_error {
 public:
  explicit AutomationError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class ProcessState { kNotRunning, kRunning, kHung };

/// A dialog the client may spontaneously pop up. `known` dialogs have
/// caption/button pairs shipped in the Communication Manager's registry;
/// unknown ones reproduce the paper's "previously unknown dialog boxes"
/// that defeated the monkey thread until their captions were added.
struct DialogSpec {
  std::string caption;
  std::string button;  // the button that dismisses it
  double weight = 1.0;
  bool blocks_app = true;
  /// System-owned dialogs ("other parts of the system can pop up dialog
  /// boxes that are out of the control of the client software") block
  /// every app on the desktop and survive the client being killed.
  bool system_owned = false;
};

/// Failure rates for a client app. All mean times are exponential
/// inter-arrival times while the process is running; zero disables.
struct FaultProfile {
  Duration mean_time_to_hang{};           // process alive but unresponsive
  Duration mean_time_to_crash{};          // process dies
  Duration mean_time_to_dialog{};         // spontaneous dialog pops up
  std::vector<DialogSpec> dialog_pool;    // what can pop up
  double op_exception_probability = 0.0;  // automation call throws
  /// When non-empty, injected exceptions fire only on this operation
  /// (e.g. "fetch_unread") — lets experiments aim the "undocumented
  /// interface" failures at the calls the paper saw them on.
  std::string exception_op;
  double op_transient_failure_probability = 0.0;  // call fails, retry ok
  // Memory leak model: MB leaked per hour of uptime plus per operation.
  double leak_mb_per_hour = 0.0;
  double leak_mb_per_op = 0.0;
  double base_memory_mb = 40.0;
  // Above this the process becomes unstable: it hangs on the next
  // operation. Nightly rejuvenation exists to stay below it.
  double memory_hang_threshold_mb = 512.0;
};

class ClientApp {
 public:
  ClientApp(sim::Simulator& sim, Desktop& desktop, std::string name,
            FaultProfile profile);
  virtual ~ClientApp();

  ClientApp(const ClientApp&) = delete;
  ClientApp& operator=(const ClientApp&) = delete;

  const std::string& name() const { return name_; }
  ProcessState state() const { return state_; }
  bool running() const { return state_ == ProcessState::kRunning; }

  /// Starts the process. No-op if already running (like double-clicking
  /// an already-open app). Hung processes must be kill()ed first.
  void launch();

  /// Terminates the process (TerminateProcess-style): works even on a
  /// hung instance. The OS reaps the app's dialog boxes.
  void kill();

  /// Bumps on every launch. Automation pointers captured against an
  /// older instance are stale; see AutomationPointer below.
  std::uint64_t instance() const { return instance_; }

  /// Simulated working-set size; grows with the leak model.
  double memory_mb() const;

  /// Pops up a specific dialog now (used by fault scripts and tests).
  void pop_dialog(const DialogSpec& spec);

  Duration uptime() const;
  const Counters& stats() const { return stats_; }
  Counters& stats() { return stats_; }

  /// Hook for scripted faults: force a hang / crash right now.
  void force_hang();
  void force_crash();

 protected:
  /// Gate that every automation operation passes through. Checks the
  /// process is running, not blocked by a modal dialog, and rolls the
  /// injected-fault dice. Returns failure (or throws AutomationError)
  /// accordingly; on success records the operation for the leak model.
  Status begin_operation(const std::string& op);

  /// Subclass hooks around process lifecycle.
  virtual void on_launch() {}
  virtual void on_kill() {}

  sim::Simulator& sim() { return sim_; }
  Desktop& desktop() { return desktop_; }
  Rng& rng() { return rng_; }

 private:
  void schedule_faults();
  void cancel_faults();
  void spontaneous_dialog();

  sim::Simulator& sim_;
  Desktop& desktop_;
  std::string name_;
  FaultProfile profile_;
  Rng rng_;
  ProcessState state_ = ProcessState::kNotRunning;
  std::uint64_t instance_ = 0;
  TimePoint launched_at_{};
  double leaked_op_mb_ = 0.0;
  std::vector<sim::EventId> fault_events_;
  /// Owns the "gui.<name>.<fault>" event labels (three per app); the
  /// kernel stores label pointers, so they must outlive the events.
  util::StringInterner label_interner_;
  Counters stats_;
};

/// A captured automation pointer: valid only for the instance it was
/// captured against. Models the paper's "refreshes all its pointers to
/// point to the new instance" requirement after a restart.
class AutomationPointer {
 public:
  AutomationPointer() = default;
  explicit AutomationPointer(const ClientApp& app)
      : app_(&app), instance_(app.instance()) {}

  bool valid() const {
    return app_ != nullptr && app_->instance() == instance_ &&
           app_->state() != ProcessState::kNotRunning;
  }

 private:
  const ClientApp* app_ = nullptr;
  std::uint64_t instance_ = 0;
};

}  // namespace simba::gui
