#include "wish/wish.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/strings.h"

namespace simba::wish {

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void FloorMap::add_ap(AccessPoint ap) { aps_.push_back(std::move(ap)); }

const AccessPoint* FloorMap::ap(const std::string& id) const {
  for (const auto& ap : aps_) {
    if (ap.id == id) return &ap;
  }
  return nullptr;
}

double RadioModel::sample_rssi(double dist_m, Rng& rng) const {
  const double d = std::max(dist_m, 0.5);
  const double mean = power_at_1m_dbm - 10.0 * path_loss_exponent * std::log10(d);
  return rng.normal(mean, shadow_sigma_db);
}

double RadioModel::distance_for_rssi(double rssi_dbm) const {
  return std::pow(10.0, (power_at_1m_dbm - rssi_dbm) /
                            (10.0 * path_loss_exponent));
}

// ---------------------------------------------------------------------------
// WishServer
// ---------------------------------------------------------------------------

WishServer::WishServer(sim::Simulator& sim, FloorMap map, RadioModel radio,
                       sss::SssServer& store)
    : sim_(sim), map_(std::move(map)), radio_(radio), store_(store) {
  store_.define_type("wish.user");
}

Estimate WishServer::estimate(const Report& report) const {
  Estimate e;
  const AccessPoint* ap = map_.ap(report.ap_id);
  if (ap == nullptr) {
    e.zone = "unknown";
    e.confidence_pct = 0.0;
    return e;
  }
  e.zone = ap->zone;
  e.distance_m = radio_.distance_for_rssi(report.rssi_dbm);
  // Confidence falls with estimated distance from the AP: near the AP
  // the zone label is almost certainly right; at the cell edge the user
  // could be in the neighboring zone.
  e.confidence_pct = std::clamp(100.0 - 4.0 * e.distance_m, 10.0, 99.0);
  return e;
}

void WishServer::handle_report(const Report& report) {
  stats_.bump("reports");
  const Estimate e = estimate(report);
  last_[report.user] = e;
  const std::string var = user_variable(report.user);
  if (!store_.read(var).ok()) {
    store_.create("wish.user", var, e.zone, user_refresh_period_,
                  user_max_missed_);
  } else {
    store_.write(var, e.zone);
  }
}

std::optional<Estimate> WishServer::last_estimate(
    const std::string& user) const {
  const auto it = last_.find(user);
  if (it == last_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// WishClient
// ---------------------------------------------------------------------------

WishClient::WishClient(sim::Simulator& sim, FloorMap map, RadioModel radio,
                       WishServer& server, std::string user,
                       Duration report_interval)
    : sim_(sim),
      map_(std::move(map)),
      radio_(radio),
      server_(server),
      user_(std::move(user)),
      report_interval_(report_interval),
      rng_(sim.make_rng("wish.client." + user_)) {}

void WishClient::start() {
  stop();
  report_task_ = sim_.every(
      report_interval_, [this] { report_now(); },
      (report_label_ = "wish." + user_ + ".report").c_str(),
      /*immediate=*/true);
}

void WishClient::stop() { report_task_.cancel(); }

void WishClient::report_now() {
  if (!in_range_) {
    stats_.bump("cycles.out_of_range");
    return;  // hears nothing; no report — soft state decays server-side
  }
  // Scan: sample RSSI from every AP, associate with the strongest
  // audible one (that is all the wireless card exposes per the paper).
  const AccessPoint* best = nullptr;
  double best_rssi = -1e9;
  for (const auto& ap : map_.aps()) {
    const double rssi = radio_.sample_rssi(distance(position_, ap.position), rng_);
    if (rssi < radio_.receiver_floor_dbm) continue;
    if (rssi > best_rssi) {
      best_rssi = rssi;
      best = &ap;
    }
  }
  if (best == nullptr) {
    stats_.bump("cycles.no_ap_heard");
    return;
  }
  Report report;
  report.user = user_;
  report.ap_id = best->id;
  report.rssi_dbm = best_rssi;
  report.sent_at = sim_.now();
  stats_.bump("reports_sent");
  // Wireless hop + LAN to the WISH server.
  const Duration hop = millis(30) + rng_.uniform_duration(Duration::zero(),
                                                          millis(120));
  sim_.after(hop, [this, report] { server_.handle_report(report); },
             "wish.report");
}

// ---------------------------------------------------------------------------
// WishAlertService
// ---------------------------------------------------------------------------

WishAlertService::WishAlertService(sim::Simulator& sim, sss::SssServer& store)
    : sim_(sim), store_(store) {}

void WishAlertService::subscribe(const std::string& subscriber,
                                 const std::string& target_user,
                                 Triggers triggers, core::AlertSink sink) {
  Tracking t;
  t.subscriber = subscriber;
  t.target = target_user;
  t.triggers = triggers;
  t.sink = std::move(sink);
  trackings_.push_back(std::move(t));
  const std::size_t index = trackings_.size() - 1;
  store_.subscribe_variable(
      WishServer::user_variable(target_user),
      [this, index](const sss::Event& event) { on_event(index, event); });
}

void WishAlertService::on_event(std::size_t tracking_index,
                                const sss::Event& event) {
  Tracking& t = trackings_[tracking_index];
  switch (event.kind) {
    case sss::EventKind::kCreated:
    case sss::EventKind::kUpdated: {
      const std::string& zone = event.variable.value;
      if (zone == t.last_zone) return;
      const bool was_outside = t.last_zone.empty();
      t.last_zone = zone;
      if (was_outside) {
        if (t.triggers.on_enter) emit(t, "entered", zone);
      } else {
        if (t.triggers.on_move) emit(t, "moved to", zone);
      }
      break;
    }
    case sss::EventKind::kTimedOut:
      if (!t.last_zone.empty()) {
        t.last_zone.clear();
        if (t.triggers.on_leave) emit(t, "left", "the building");
      }
      break;
    case sss::EventKind::kRefreshed:
    case sss::EventKind::kDeleted:
      break;
  }
}

void WishAlertService::emit(Tracking& t, const std::string& what,
                            const std::string& zone) {
  core::Alert alert;
  alert.source = "wish";
  alert.native_category = "Location";
  alert.subject = t.target + " " + what + " " + zone;
  alert.body = "WISH location alert for " + t.subscriber + ": " + t.target +
               " " + what + " " + zone + ".";
  alert.created_at = sim_.now();
  alert.id = strformat("wish-%llu",
                       static_cast<unsigned long long>(next_alert_++));
  alert.attributes["target"] = t.target;
  alert.attributes["subscriber"] = t.subscriber;
  stats_.bump("alerts_generated");
  log_info("wish.alerts", "alert: " + alert.subject);
  if (t.sink) t.sink(alert);
}

}  // namespace simba::wish
