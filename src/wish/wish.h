// WISH wireless user-location service (Section 2.4, RADAR-style [11]).
//
// "The WISH client software, running on the user's handheld device,
// extracts from its RF wireless network card the identity of the Access
// Point (AP) the device is connected to and the strength of the signals
// received from the AP. It then sends that information along with the
// user's name and activity status to a WISH server. The WISH server
// maintains an RF signal propagation model and a table that maps each
// AP to a physical location. ... A confidence percentage is associated
// with each estimate."
//
// Substitution note (DESIGN.md): real Wi-Fi RSSI is replaced by a
// log-distance path-loss model with Gaussian shadowing over a synthetic
// floor map; the estimation and alerting code paths are identical.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/alert.h"
#include "sim/simulator.h"
#include "sss/sss.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::wish {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

struct AccessPoint {
  std::string id;
  Point position;
  std::string zone;  // physical location label for this AP's cell
};

/// AP map ("a table that maps each AP to a physical location").
class FloorMap {
 public:
  void add_ap(AccessPoint ap);
  const std::vector<AccessPoint>& aps() const { return aps_; }
  const AccessPoint* ap(const std::string& id) const;

 private:
  std::vector<AccessPoint> aps_;
};

/// Log-distance path loss with Gaussian shadowing.
struct RadioModel {
  double power_at_1m_dbm = -32.0;
  double path_loss_exponent = 3.2;
  double shadow_sigma_db = 4.0;
  double receiver_floor_dbm = -92.0;  // below this the AP is not heard

  /// Sampled RSSI at a given distance (includes shadowing noise).
  double sample_rssi(double dist_m, Rng& rng) const;
  /// Deterministic inverse: distance implied by an RSSI (no noise).
  double distance_for_rssi(double rssi_dbm) const;
};

/// One client position report, as it arrives at the server.
struct Report {
  std::string user;
  std::string ap_id;
  double rssi_dbm = 0.0;
  std::string activity = "active";
  TimePoint sent_at{};
};

/// The server's location estimate.
struct Estimate {
  std::string zone;
  double distance_m = 0.0;
  double confidence_pct = 0.0;
};

class WishServer {
 public:
  WishServer(sim::Simulator& sim, FloorMap map, RadioModel radio,
             sss::SssServer& store);

  /// Ingests a report: estimates the location and writes/refreshes the
  /// user's soft-state variable ("each user is represented by a
  /// soft-state variable").
  void handle_report(const Report& report);

  /// Soft-state parameters for user variables: how long with no report
  /// before the user is considered out of range / gone.
  void set_user_refresh(Duration period, int max_missed) {
    user_refresh_period_ = period;
    user_max_missed_ = max_missed;
  }

  Estimate estimate(const Report& report) const;
  std::optional<Estimate> last_estimate(const std::string& user) const;

  static std::string user_variable(const std::string& user) {
    return "wish.user." + user;
  }

  const Counters& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  FloorMap map_;
  RadioModel radio_;
  sss::SssServer& store_;
  Duration user_refresh_period_ = seconds(10);
  int user_max_missed_ = 2;
  std::map<std::string, Estimate> last_;
  Counters stats_;
};

/// The WISH client on the user's handheld: connects to the strongest
/// audible AP and periodically reports to the server over the wireless
/// + LAN hop.
class WishClient {
 public:
  /// The client carries its own copy of the map purely as the set of
  /// APs that exist in the air; it does NOT consult zones (the server
  /// owns the AP-to-location table).
  WishClient(sim::Simulator& sim, FloorMap map, RadioModel radio,
             WishServer& server, std::string user,
             Duration report_interval = seconds(3));

  void set_position(Point p) { position_ = p; }
  Point position() const { return position_; }
  /// Powered off / out of building: stops hearing APs entirely.
  void set_in_range(bool in_range) { in_range_ = in_range; }

  void start();
  void stop();

  /// One report cycle (also called by the periodic task).
  void report_now();

  const Counters& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  FloorMap map_;
  RadioModel radio_;
  WishServer& server_;
  std::string user_;
  Duration report_interval_;
  Rng rng_;
  Point position_{};
  bool in_range_ = true;
  sim::TaskHandle report_task_;
  /// Stable storage for the "wish.<user>.report" event label.
  std::string report_label_;
  Counters stats_;
};

/// Web-based location alert service: "A user of the alert service
/// specifies the name of the person to track ... An alert can be
/// generated when the tracked person enters a building, moves to a
/// different part of the building, and/or leaves the building."
class WishAlertService {
 public:
  struct Triggers {
    bool on_enter = true;
    bool on_move = true;
    bool on_leave = true;
  };

  WishAlertService(sim::Simulator& sim, sss::SssServer& store);

  /// Adds a tracking subscription; alerts flow to `sink`.
  void subscribe(const std::string& subscriber, const std::string& target_user,
                 Triggers triggers, core::AlertSink sink);

  const Counters& stats() const { return stats_; }

 private:
  struct Tracking {
    std::string subscriber;
    std::string target;
    Triggers triggers;
    core::AlertSink sink;
    std::string last_zone;  // empty = out of building
  };

  void on_event(std::size_t tracking_index, const sss::Event& event);
  void emit(Tracking& t, const std::string& what, const std::string& zone);

  sim::Simulator& sim_;
  sss::SssServer& store_;
  std::vector<Tracking> trackings_;
  std::uint64_t next_alert_ = 1;
  Counters stats_;
};

}  // namespace simba::wish
