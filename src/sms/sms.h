// Simulated cell-carrier SMS path.
//
// The paper sends SMS by emailing the phone's SMS address
// ("the SMS address typically contains the corresponding cell phone
// number" — the privacy problem MyAlertBuddy solves). Accordingly, the
// gateway registers as an email domain handler: mail to
// <number>@<carrier domain> becomes an SMS. The paper's measurements
// found carrier delivery "a similar range of unpredictability" to
// email, which the delay model reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "email/email_server.h"
#include "sim/fault.h"
#include "util/flat_map.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::sms {

struct SmsMessage {
  std::uint64_t id = 0;
  std::string number;
  std::string text;
  /// Carried metadata (not user-visible): the email-to-SMS bridge
  /// copies the mail headers so experiments can trace alert ids.
  util::FlatMap<std::string, std::string> headers;
  TimePoint submitted_at{};
  TimePoint delivered_at{};
};

/// A cell phone. Coverage/battery outages make every SMS sent during
/// the outage window undeliverable (carriers retry briefly, modeled as
/// a grace period).
class Phone {
 public:
  Phone(sim::Simulator& sim, std::string number);

  const std::string& number() const { return number_; }

  /// Out-of-coverage / battery-dead windows.
  void set_outage_plan(sim::OutagePlan plan) { outages_ = std::move(plan); }
  bool reachable() const { return !outages_.down_at(sim_.now()); }
  /// When the current outage (if any) ends.
  TimePoint reachable_again_at() const {
    return outages_.up_again_at(sim_.now());
  }
  /// Carrier store-and-forward horizon: delivery retries until the
  /// phone is reachable, but gives up after this long.
  void set_retry_horizon(Duration d) { retry_horizon_ = d; }
  Duration retry_horizon() const { return retry_horizon_; }

  void receive(SmsMessage message);
  const std::vector<SmsMessage>& received() const { return received_; }
  void set_on_receive(std::function<void(const SmsMessage&)> cb) {
    on_receive_ = std::move(cb);
  }

 private:
  sim::Simulator& sim_;
  std::string number_;
  sim::OutagePlan outages_;
  Duration retry_horizon_ = hours(4);
  std::vector<SmsMessage> received_;
  std::function<void(const SmsMessage&)> on_receive_;
};

/// Carrier delay model: mostly tens of seconds, heavy tail, some loss.
struct SmsDelayModel {
  double fast_probability = 0.90;
  Duration fast_median = seconds(15);
  double fast_sigma = 0.9;
  Duration slow_median = minutes(45);
  double slow_sigma = 1.3;
  double loss_probability = 0.01;

  Duration sample(Rng& rng) const;
};

class SmsGateway {
 public:
  SmsGateway(sim::Simulator& sim, std::string domain = "sms.example.net");

  const std::string& domain() const { return domain_; }
  /// The SMS email address for a phone number at this carrier.
  std::string email_address(const std::string& number) const {
    return number + "@" + domain_;
  }

  void set_delay_model(SmsDelayModel model) { delay_ = model; }

  /// Attaches a phone; unregistered numbers are undeliverable.
  void register_phone(Phone& phone);

  /// Hooks this gateway into an email server as a domain handler.
  void attach_to(email::EmailServer& server);

  /// Direct submission (the MSN-Mobile-style HTTP gateway).
  Status submit(const std::string& number, const std::string& text,
                util::FlatMap<std::string, std::string> headers = {});

  const Counters& stats() const { return stats_; }

 private:
  void deliver_or_retry(SmsMessage message, TimePoint give_up_at);

  sim::Simulator& sim_;
  std::string domain_;
  Rng rng_;
  SmsDelayModel delay_;
  std::map<std::string, Phone*> phones_;
  std::uint64_t next_id_ = 1;
  Counters stats_;
};

}  // namespace simba::sms
