#include "sms/sms.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace simba::sms {

Phone::Phone(sim::Simulator& sim, std::string number)
    : sim_(sim), number_(std::move(number)) {}

void Phone::receive(SmsMessage message) {
  message.delivered_at = sim_.now();
  received_.push_back(message);
  if (on_receive_) on_receive_(received_.back());
}

Duration SmsDelayModel::sample(Rng& rng) const {
  if (rng.chance(fast_probability)) {
    return rng.lognormal_duration(fast_median, fast_sigma);
  }
  return rng.lognormal_duration(slow_median, slow_sigma);
}

SmsGateway::SmsGateway(sim::Simulator& sim, std::string domain)
    : sim_(sim),
      domain_(std::move(domain)),
      rng_(sim.make_rng("sms.gateway." + domain_)) {}

void SmsGateway::register_phone(Phone& phone) {
  phones_[phone.number()] = &phone;
}

void SmsGateway::attach_to(email::EmailServer& server) {
  server.register_domain_handler(domain_, [this](const email::Email& mail) {
    const auto at = mail.to.find('@');
    const std::string number = mail.to.substr(0, at);
    // SMS bodies are short; carriers truncate. Subject first, like the
    // email-to-SMS bridges of the era.
    std::string text = mail.subject;
    if (!mail.body.empty()) text += " | " + mail.body;
    if (text.size() > 160) text.resize(160);
    const Status s = submit(number, text, mail.headers);
    if (!s.ok()) SIMBA_LOG_DEBUG("sms", "bridge drop: " + s.error());
  });
}

Status SmsGateway::submit(const std::string& number, const std::string& text,
                          util::FlatMap<std::string, std::string> headers) {
  const auto it = phones_.find(number);
  if (it == phones_.end()) {
    stats_.bump("rejected.unknown_number");
    return Status::failure("unknown number " + number);
  }
  stats_.bump("accepted");
  if (rng_.chance(delay_.loss_probability)) {
    stats_.bump("lost");
    return Status::success();  // sender cannot tell
  }
  SmsMessage message;
  message.id = next_id_++;
  message.number = number;
  message.text = text;
  message.headers = std::move(headers);
  message.submitted_at = sim_.now();
  const Duration delay = delay_.sample(rng_);
  const TimePoint give_up_at =
      sim_.now() + delay + it->second->retry_horizon();
  sim_.after(
      delay,
      [this, message = std::move(message), give_up_at]() mutable {
        deliver_or_retry(std::move(message), give_up_at);
      },
      "sms.deliver");
  return Status::success();
}

void SmsGateway::deliver_or_retry(SmsMessage message, TimePoint give_up_at) {
  const auto it = phones_.find(message.number);
  if (it == phones_.end()) {
    stats_.bump("dropped.phone_gone");
    return;
  }
  Phone& phone = *it->second;
  // Expiry is checked first: once the carrier's store-and-forward
  // horizon passes, the message is discarded even if the phone has
  // just come back into coverage.
  if (sim_.now() >= give_up_at) {
    stats_.bump("expired");
    SIMBA_LOG_DEBUG("sms", "gave up on SMS to " + message.number);
    return;
  }
  if (phone.reachable()) {
    stats_.bump("delivered");
    phone.receive(std::move(message));
    return;
  }
  // Store-and-forward: retry once the phone's outage window ends (or in
  // a minute if the plan doesn't say).
  const TimePoint retry_at =
      std::max(phone.reachable_again_at(), sim_.now() + minutes(1));
  sim_.at(
      retry_at,
      [this, message = std::move(message), give_up_at]() mutable {
        deliver_or_retry(std::move(message), give_up_at);
      },
      "sms.retry");
}

}  // namespace simba::sms
