#include "sss/sss.h"

#include <algorithm>

#include "util/log.h"

namespace simba::sss {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCreated: return "created";
    case EventKind::kUpdated: return "updated";
    case EventKind::kRefreshed: return "refreshed";
    case EventKind::kTimedOut: return "timed_out";
    case EventKind::kDeleted: return "deleted";
  }
  return "?";
}

SssServer::SssServer(sim::Simulator& sim, std::string node_name)
    : sim_(sim), node_(std::move(node_name)) {}

SssServer::~SssServer() {
  for (auto& [name, event] : timeout_events_) sim_.cancel(event);
}

Status SssServer::define_type(const std::string& type) {
  if (type.empty()) return Status::failure("empty type name");
  types_.insert(type);
  return Status::success();
}

bool SssServer::has_type(const std::string& type) const {
  return types_.count(type) > 0;
}

std::vector<std::string> SssServer::types() const {
  return {types_.begin(), types_.end()};
}

Status SssServer::create(const std::string& type, const std::string& name,
                         const std::string& value, Duration refresh_period,
                         int max_missed_refreshes) {
  if (!has_type(type)) return Status::failure("undefined type " + type);
  if (name.empty()) return Status::failure("empty variable name");
  if (variables_.count(name) > 0) {
    return Status::failure("variable exists: " + name);
  }
  if (refresh_period < Duration::zero() || max_missed_refreshes < 0) {
    return Status::failure("bad refresh parameters for " + name);
  }
  Variable v;
  v.type = type;
  v.name = name;
  v.value = value;
  v.refresh_period = refresh_period;
  v.max_missed_refreshes = max_missed_refreshes;
  v.last_refresh = sim_.now();
  v.version = 1;
  v.origin = node_;
  variables_[name] = v;
  stats_.bump("creates");
  emit(EventKind::kCreated, v);
  arm_timeout(name);
  replicate(v);
  return Status::success();
}

Status SssServer::write(const std::string& name, const std::string& value) {
  const auto it = variables_.find(name);
  if (it == variables_.end()) return Status::failure("no variable " + name);
  Variable& v = it->second;
  const bool changed = v.value != value || v.timed_out;
  v.value = value;
  v.last_refresh = sim_.now();
  v.timed_out = false;
  v.version++;
  v.origin = node_;
  stats_.bump("writes");
  emit(changed ? EventKind::kUpdated : EventKind::kRefreshed, v);
  arm_timeout(name);
  replicate(v);
  return Status::success();
}

Status SssServer::refresh(const std::string& name) {
  const auto it = variables_.find(name);
  if (it == variables_.end()) return Status::failure("no variable " + name);
  Variable& v = it->second;
  const bool was_timed_out = v.timed_out;
  v.last_refresh = sim_.now();
  v.timed_out = false;
  v.version++;
  v.origin = node_;
  stats_.bump("refreshes");
  emit(was_timed_out ? EventKind::kUpdated : EventKind::kRefreshed, v);
  arm_timeout(name);
  replicate(v);
  return Status::success();
}

Result<Variable> SssServer::read(const std::string& name) const {
  const auto it = variables_.find(name);
  if (it == variables_.end()) return make_error("no variable " + name);
  return it->second;
}

Status SssServer::remove(const std::string& name) {
  const auto it = variables_.find(name);
  if (it == variables_.end()) return Status::failure("no variable " + name);
  const Variable snapshot = it->second;
  const auto timeout = timeout_events_.find(name);
  if (timeout != timeout_events_.end()) {
    sim_.cancel(timeout->second);
    timeout_events_.erase(timeout);
  }
  variables_.erase(it);
  stats_.bump("removes");
  emit(EventKind::kDeleted, snapshot);
  return Status::success();
}

std::vector<std::string> SssServer::variable_names() const {
  std::vector<std::string> out;
  out.reserve(variables_.size());
  for (const auto& [name, v] : variables_) out.push_back(name);
  return out;
}

SssServer::State SssServer::save_state() const {
  State state;
  state.types.assign(types_.begin(), types_.end());
  state.variables.reserve(variables_.size());
  for (const auto& [name, v] : variables_) state.variables.push_back(v);
  state.next_sub = next_sub_;
  state.stats = stats_;
  return state;
}

void SssServer::restore_state(State state) {
  for (const auto& [name, event] : timeout_events_) sim_.cancel(event);
  timeout_events_.clear();
  types_.clear();
  types_.insert(state.types.begin(), state.types.end());
  variables_.clear();
  for (Variable& v : state.variables) {
    const std::string name = v.name;
    variables_[name] = std::move(v);
  }
  next_sub_ = state.next_sub;
  stats_.restore_state(std::move(state.stats));
  for (const auto& [name, v] : variables_) {
    if (!v.timed_out) arm_timeout(name);
  }
}

SubscriptionId SssServer::subscribe_variable(
    const std::string& name, std::function<void(const Event&)> cb) {
  subscriptions_.push_back(
      Subscription{next_sub_, /*by_type=*/false, name, std::move(cb)});
  return next_sub_++;
}

SubscriptionId SssServer::subscribe_type(const std::string& type,
                                         std::function<void(const Event&)> cb) {
  subscriptions_.push_back(
      Subscription{next_sub_, /*by_type=*/true, type, std::move(cb)});
  return next_sub_++;
}

void SssServer::unsubscribe(SubscriptionId id) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& s) { return s.id == id; }),
      subscriptions_.end());
}

void SssServer::emit(EventKind kind, const Variable& variable) {
  Event event{kind, variable, sim_.now()};
  stats_.bump(std::string("events.") + to_string(kind));
  // Copy the subscription list: callbacks may (un)subscribe.
  const auto subs = subscriptions_;
  for (const auto& s : subs) {
    const bool match =
        s.by_type ? s.key == variable.type : s.key == variable.name;
    if (match && s.callback) s.callback(event);
  }
}

void SssServer::arm_timeout(const std::string& name) {
  const auto existing = timeout_events_.find(name);
  if (existing != timeout_events_.end()) {
    sim_.cancel(existing->second);
    timeout_events_.erase(existing);
  }
  const auto it = variables_.find(name);
  if (it == variables_.end()) return;
  const Variable& v = it->second;
  if (v.refresh_period <= Duration::zero()) return;
  // The variable times out after max_missed+1 periods with no refresh.
  const Duration grace = v.refresh_period * (v.max_missed_refreshes + 1);
  const std::uint64_t armed_version = v.version;
  const TimePoint armed_refresh = v.last_refresh;
  timeout_events_[name] = sim_.after(
      grace,
      [this, name, armed_version, armed_refresh] {
        on_timeout_deadline(name, armed_version, armed_refresh);
      },
      label_interner_.intern("sss.timeout." + name));
}

void SssServer::on_timeout_deadline(const std::string& name,
                                    std::uint64_t version,
                                    TimePoint armed_refresh) {
  timeout_events_.erase(name);
  const auto it = variables_.find(name);
  if (it == variables_.end()) return;
  Variable& v = it->second;
  // A refresh since arming means this deadline is stale.
  if (v.version != version || v.last_refresh != armed_refresh) return;
  if (v.timed_out) return;
  v.timed_out = true;
  stats_.bump("timeouts");
  SIMBA_LOG_DEBUG("sss." + node_, "variable timed out: " + name);
  emit(EventKind::kTimedOut, v);
}

bool SssServer::apply_remote(const Variable& remote) {
  // Make sure the type exists locally (replication carries schema).
  types_.insert(remote.type);
  auto it = variables_.find(remote.name);
  if (it == variables_.end()) {
    variables_[remote.name] = remote;
    variables_[remote.name].last_refresh = sim_.now();
    stats_.bump("replica_creates");
    emit(EventKind::kCreated, variables_[remote.name]);
    arm_timeout(remote.name);
    return true;
  }
  Variable& local = it->second;
  const bool remote_wins =
      remote.version > local.version ||
      (remote.version == local.version && remote.origin > local.origin);
  if (!remote_wins) {
    stats_.bump("replica_stale");
    return false;
  }
  const bool changed = local.value != remote.value || local.timed_out;
  local.value = remote.value;
  local.version = remote.version;
  local.origin = remote.origin;
  local.last_refresh = sim_.now();
  local.timed_out = false;
  stats_.bump("replica_updates");
  emit(changed ? EventKind::kUpdated : EventKind::kRefreshed, local);
  arm_timeout(remote.name);
  return true;
}

void SssServer::replicate(const Variable& variable) {
  if (group_ != nullptr) group_->multicast(*this, variable);
}

SssReplicationGroup::SssReplicationGroup(sim::Simulator& sim,
                                         MediumModel medium)
    : sim_(sim), medium_(medium), rng_(sim.make_rng("sss.replication")) {}

void SssReplicationGroup::join(SssServer& server) {
  members_.push_back(&server);
  server.group_ = this;
}

void SssReplicationGroup::multicast(const SssServer& from,
                                    const Variable& variable) {
  for (SssServer* member : members_) {
    if (member == &from) continue;
    if (rng_.chance(medium_.loss_probability)) {
      stats_.bump("lost");
      continue;
    }
    const Duration latency =
        medium_.base_latency +
        rng_.uniform_duration(Duration::zero(), medium_.jitter);
    stats_.bump("sent");
    sim_.after(
        latency,
        [member, variable] { member->apply_remote(variable); },
        "sss.replicate");
  }
}

}  // namespace simba::sss
