// Soft-State Store (SSS) — the daemon process from the Aladdin home
// networking system (paper reference [9], used in Sections 2.3 and 5).
//
// "The Soft-State Store (SSS) server is a daemon process that maintains
// a store of soft-state variables, each of which is associated with a
// required refresh frequency and the maximum number of allowed missing
// refreshes before the variable is timed out. Clients of SSS can define
// data types, create variables, read/write variables, and subscribe to
// events relating to changes in the types or variables."
//
// Aladdin's powerline monitor writes into its local SSS, "which
// replicated the update to other PCs through a multicast over the
// phoneline Ethernet" — SssReplicationGroup models that multicast.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/interner.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::sss {

struct Variable {
  std::string type;
  std::string name;
  std::string value;
  Duration refresh_period{};
  int max_missed_refreshes = 0;
  TimePoint last_refresh{};
  bool timed_out = false;
  /// Version for last-writer-wins replication; ties break by origin.
  std::uint64_t version = 0;
  std::string origin;  // node that produced this version
};

enum class EventKind { kCreated, kUpdated, kRefreshed, kTimedOut, kDeleted };

const char* to_string(EventKind kind);

struct Event {
  EventKind kind;
  Variable variable;  // snapshot at event time
  TimePoint at{};
};

using SubscriptionId = std::uint64_t;

class SssReplicationGroup;

class SssServer {
 public:
  SssServer(sim::Simulator& sim, std::string node_name);
  ~SssServer();

  SssServer(const SssServer&) = delete;
  SssServer& operator=(const SssServer&) = delete;

  const std::string& node() const { return node_; }

  // --- Types ---------------------------------------------------------------
  Status define_type(const std::string& type);
  bool has_type(const std::string& type) const;
  std::vector<std::string> types() const;

  // --- Variables -----------------------------------------------------------
  /// Creates a variable. refresh_period zero disables timeout tracking.
  Status create(const std::string& type, const std::string& name,
                const std::string& value, Duration refresh_period,
                int max_missed_refreshes);
  /// Writes a value; counts as a refresh and clears any timeout.
  Status write(const std::string& name, const std::string& value);
  /// Keep-alive without a value change.
  Status refresh(const std::string& name);
  Result<Variable> read(const std::string& name) const;
  Status remove(const std::string& name);
  std::vector<std::string> variable_names() const;

  // --- Checkpoint ----------------------------------------------------------
  /// Checkpoint state (sim/snapshot.h): defined types plus every
  /// variable verbatim (value, version, origin, timeout flag). Restore
  /// re-arms the timeout timer of every live refresh-tracked variable
  /// from the restore instant — a crash-restart restarts the grace
  /// period, exactly as a rebooted daemon would. Subscriptions are
  /// process-lifetime callbacks and are NOT carried.
  struct State {
    std::vector<std::string> types;
    std::vector<Variable> variables;  // sorted by name (map order)
    SubscriptionId next_sub = 1;
    Counters stats;
  };
  State save_state() const;
  /// Call on a freshly constructed server.
  void restore_state(State state);

  // --- Subscriptions ---------------------------------------------------------
  SubscriptionId subscribe_variable(const std::string& name,
                                    std::function<void(const Event&)> cb);
  SubscriptionId subscribe_type(const std::string& type,
                                std::function<void(const Event&)> cb);
  void unsubscribe(SubscriptionId id);

  const Counters& stats() const { return stats_; }

 private:
  friend class SssReplicationGroup;

  struct Subscription {
    SubscriptionId id;
    bool by_type;
    std::string key;
    std::function<void(const Event&)> callback;
  };

  void emit(EventKind kind, const Variable& variable);
  void arm_timeout(const std::string& name);
  void on_timeout_deadline(const std::string& name, std::uint64_t version,
                           TimePoint armed_refresh);
  /// Applies a replicated update; returns true if it won LWW.
  bool apply_remote(const Variable& remote);
  void replicate(const Variable& variable);

  sim::Simulator& sim_;
  std::string node_;
  std::set<std::string> types_;
  // Stays ordered (subscription fan-out walks variables sorted);
  // std::less<> lets string_view probes avoid a key allocation.
  std::map<std::string, Variable, std::less<>> variables_;
  std::map<std::string, sim::EventId, std::less<>> timeout_events_;
  /// Owns the per-variable "sss.timeout.<name>" event labels; the
  /// kernel stores only the pointer, so they must outlive the events.
  util::StringInterner label_interner_;
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_sub_ = 1;
  SssReplicationGroup* group_ = nullptr;
  Counters stats_;
};

/// Multicast replication over a shared medium (Aladdin: the phoneline
/// Ethernet). Joins several SSS nodes; every local create/write/refresh
/// is multicast to the other members after a sampled latency, with
/// last-writer-wins reconciliation at the receiver.
/// Latency/loss model of the replication medium.
struct MediumModel {
  Duration base_latency = millis(120);
  Duration jitter = millis(200);
  double loss_probability = 0.0;
};

class SssReplicationGroup {
 public:
  explicit SssReplicationGroup(sim::Simulator& sim, MediumModel medium = {});

  void join(SssServer& server);
  const MediumModel& medium() const { return medium_; }
  const Counters& stats() const { return stats_; }

 private:
  friend class SssServer;
  void multicast(const SssServer& from, const Variable& variable);

  sim::Simulator& sim_;
  MediumModel medium_;
  Rng rng_;
  std::vector<SssServer*> members_;
  Counters stats_;
};

}  // namespace simba::sss
