// Reference event scheduler: the pre-wheel binary-heap kernel,
// retained verbatim as the test oracle for the timing wheel.
//
// tests/scheduler_diff_test.cc drives seed-generated op sequences
// (schedule / cancel / periodic re-arm / cancel-in-callback mixes)
// through both this class and sim::Simulator and asserts identical
// firing orders — the proof that the wheel preserves the exact
// (when, sequence) FIFO tie-break the golden traces and fleet merges
// depend on. Nothing outside the test tree should use this class; the
// production kernel is sim::Simulator (DESIGN.md §13).
//
// The implementation is the PR-5 heap kernel: slab/free-list event
// pool, generation-tagged EventIds, a std::priority_queue of plain
// (when, sequence, slot) entries, release-before-fire one-shots, and
// in-place periodic re-arm. It shares Callback / PeriodicTask /
// TaskHandle with the real kernel so op scripts are written once.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/simulator.h"
#include "util/time.h"

namespace simba::sim {

class ReferenceScheduler {
 public:
  explicit ReferenceScheduler(std::uint64_t seed = 1) : seed_(seed) {}

  ReferenceScheduler(const ReferenceScheduler&) = delete;
  ReferenceScheduler& operator=(const ReferenceScheduler&) = delete;

  /// See Simulator::kScheduler.
  static constexpr const char* kScheduler = "heap";

  TimePoint now() const { return now_; }
  std::uint64_t seed() const { return seed_; }

  EventId at(TimePoint t, Callback cb, const char* label = "");
  EventId after(Duration delay, Callback cb, const char* label = "");
  void cancel(EventId id);
  TaskHandle every(Duration period, Callback cb, const char* label = "",
                   bool immediate = false);

  void run();
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  void stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return processed_; }
  bool queue_empty() const { return queue_.empty(); }
  std::size_t pool_slots() const { return pool_.size(); }
  std::size_t pool_free() const { return free_.size(); }

 private:
  struct Event {
    Callback callback;
    std::shared_ptr<PeriodicTask> periodic;
    TimePoint when{};
    const char* label = "";
    std::uint32_t generation = 1;
    bool cancelled = false;
    bool pending = false;
  };
  struct QueueEntry {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal times
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  std::uint32_t allocate_slot();
  void release_slot(std::uint32_t slot);
  bool step();
  void drop_cancelled_head();

  TimePoint now_{};
  std::uint64_t seed_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Event> pool_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace simba::sim
