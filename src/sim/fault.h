// Fault modeling shared by all substrates: outage plans (alternating
// up/down windows) and Bernoulli fault processes. Experiment E6 builds
// its one-month fault log on these.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace simba::sim {

/// A closed-open outage window [start, end).
struct Outage {
  TimePoint start;
  TimePoint end;
  Duration length() const { return end - start; }
};

/// An explicit, inspectable schedule of outages. Components query
/// down_at(now) at the moment they act; there is no hidden state.
class OutagePlan {
 public:
  OutagePlan() = default;

  /// Adds a window; windows may be added out of order and overlapping
  /// (overlaps are merged on normalize, called lazily).
  void add(TimePoint start, Duration length);

  bool down_at(TimePoint t) const;

  /// End of the outage covering `t`, or `t` itself when up.
  TimePoint up_again_at(TimePoint t) const;

  const std::vector<Outage>& outages() const;

  /// Total downtime within [0, horizon).
  Duration total_downtime(TimePoint horizon) const;

  /// Generates a random plan over [0, horizon): up-times are exponential
  /// with mean `mtbf`; down-times are log-normal with the given median
  /// and sigma (the paper saw a 4..103-minute spread of IM downtimes,
  /// which a heavy-ish tail reproduces).
  static OutagePlan generate(Rng& rng, Duration horizon, Duration mtbf,
                             Duration down_median, double down_sigma);

  std::string describe() const;

 private:
  void normalize() const;

  mutable std::vector<Outage> outages_;
  mutable bool normalized_ = true;
};

}  // namespace simba::sim
