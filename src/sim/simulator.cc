#include "sim/simulator.h"

#include <cassert>

namespace simba::sim {

Simulator::Simulator(std::uint64_t seed)
    : seed_(seed), root_rng_(Rng{seed}.child("root")) {
  // Log lines carry virtual time while this simulator is alive.
  Log::set_time_source([this] { return now_; });
}

Simulator::~Simulator() { Log::clear_time_source(); }

EventId Simulator::at(TimePoint t, Callback cb, std::string label) {
  if (t < now_) t = now_;
  auto event = std::make_shared<Event>();
  event->when = t;
  event->sequence = next_sequence_++;
  event->id = next_id_++;
  event->callback = std::move(cb);
  event->label = std::move(label);
  index_.emplace(event->id, event);
  queue_.push(event);
  return event->id;
}

EventId Simulator::after(Duration delay, Callback cb, std::string label) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return at(now_ + delay, std::move(cb), std::move(label));
}

void Simulator::cancel(EventId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  if (auto event = it->second.lock()) event->cancelled = true;
  index_.erase(it);
}

TaskHandle Simulator::every(Duration period, Callback cb, std::string label,
                            bool immediate) {
  assert(period > Duration::zero());
  auto cancelled = std::make_shared<bool>(false);
  // Ownership: each scheduled event holds the shared holder; the
  // recurring closure itself only holds a weak self-reference, so no
  // cycle — once cancelled (or the simulator dies with the queue), the
  // holder is freed. `this` outlives all events by construction.
  struct Recurring {
    std::function<void()> fn;
  };
  auto holder = std::make_shared<Recurring>();
  holder->fn = [this, period, cb = std::move(cb), cancelled,
                weak = std::weak_ptr<Recurring>(holder), label] {
    if (*cancelled) return;
    cb();
    if (*cancelled) return;
    if (auto self = weak.lock()) {
      after(period, [self] { self->fn(); }, label);
    }
  };
  after(immediate ? Duration::zero() : period,
        [holder] { holder->fn(); }, label);
  return TaskHandle{cancelled};
}

void Simulator::drop_cancelled_head() {
  while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
}

bool Simulator::queue_empty() const {
  // Cancelled events at the head still count as empty-in-effect; this is
  // a cheap conservative check used only by diagnostics.
  return queue_.empty();
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  auto event = queue_.top();
  queue_.pop();
  assert(event->when >= now_);
  now_ = event->when;
  index_.erase(event->id);
  ++processed_;
  event->callback();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top()->when > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace simba::sim
