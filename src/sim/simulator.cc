#include "sim/simulator.h"

#include <cassert>

namespace simba::sim {

int Simulator::Bitmap::next_above(int i) const {
  for (int w = (i + 1) >> 6; w < kSlots / 64; ++w) {
    std::uint64_t bits = words[w];
    if (w == (i + 1) >> 6) bits &= ~0ull << ((i + 1) & 63);
    if (bits != 0) return (w << 6) + __builtin_ctzll(bits);
  }
  return kSlots;
}

Simulator::Simulator(std::uint64_t seed)
    : seed_(seed), root_rng_(Rng{seed}.child("root")) {
  // Log lines carry virtual time while this simulator is alive.
  Log::set_time_source([this] { return now_; });
}

Simulator::~Simulator() { Log::clear_time_source(); }

std::uint32_t Simulator::allocate_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& event = pool_[slot];
  event.callback = nullptr;
  event.periodic.reset();
  event.label = "";
  event.cancelled = false;
  event.pending = false;
  // Bumping the generation invalidates every EventId issued for the
  // old occupant; skipping 0 keeps all ids nonzero (0 is the callers'
  // "no event" sentinel).
  if (++event.generation == 0) event.generation = 1;
  free_.push_back(slot);
}

void Simulator::place(const QueueEntry& entry) {
  const Tick t = tick_of(entry.when);
  assert(t >= cursor_);
  const auto x =
      static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cursor_);
  if ((x >> kOverflowShift) != 0) {
    overflow_[t >> kOverflowShift].push_back(entry);
    return;
  }
  // Lowest level whose block bits (everything above the level's 8-bit
  // slot group) match the cursor's. Same-tick events always agree on
  // this, whatever the cursor was when each was filed, so they share
  // one slot list and FIFO order is append order (DESIGN.md §13).
  int level = 0;
  while ((x >> (kSlotBits * (level + 1))) != 0) ++level;
  const int index = static_cast<int>((t >> (kSlotBits * level)) & (kSlots - 1));
  std::vector<QueueEntry>& slot = slots_[level][index];
  if (slot.empty()) occupied_[level].set(index);
  slot.push_back(entry);
}

EventId Simulator::at(TimePoint t, Callback cb, const char* label) {
  if (t < now_) t = now_;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = t;
  event.callback = std::move(cb);
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  ++entry_count_;
  place(QueueEntry{t, next_sequence_++, slot});
  return make_id(slot, event.generation);
}

EventId Simulator::after(Duration delay, Callback cb, const char* label) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return at(now_ + delay, std::move(cb), label);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= pool_.size()) return;
  Event& event = pool_[slot];
  if (!event.pending || event.generation != generation) return;
  // The wheel entry still references this slot, so the slot is only
  // freed (and its generation bumped) when that entry is consumed —
  // by a find_next() scan, a cascade, or a block sweep.
  event.cancelled = true;
}

TaskHandle Simulator::every(Duration period, Callback cb, const char* label,
                            bool immediate) {
  assert(period > Duration::zero());
  auto task = std::make_shared<PeriodicTask>();
  task->callback = std::move(cb);
  task->period = period;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = now_ + (immediate ? Duration::zero() : period);
  event.periodic = task;
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  ++entry_count_;
  place(QueueEntry{event.when, next_sequence_++, slot});
  return TaskHandle{std::move(task)};
}

std::optional<Simulator::Tick> Simulator::find_next() {
  // Kernel-cancelled events scanned past here are dropped silently: no
  // time advance, no events_processed tick — the wheel's analog of the
  // heap's drop_cancelled_head(). (A flag-cancelled periodic task is
  // different — its already-armed fire still pops as a real event; see
  // fire_at().)

  // 1. Remainder of the cursor's own level-0 slot: the next same-tick
  // FIFO entry, including zero-delay events the firing callback just
  // appended.
  {
    const int index = static_cast<int>(cursor_ & (kSlots - 1));
    std::vector<QueueEntry>& slot = slots_[0][index];
    std::uint32_t& head = head0_[index];
    while (head < slot.size()) {
      if (!pool_[slot[head].slot].cancelled) return cursor_;
      release_slot(slot[head].slot);
      consume_entry();
      ++head;
    }
    if (!slot.empty()) {
      slot.clear();
      head = 0;
      occupied_[0].clear(index);
    }
  }
  // 2. Level-0 slots ahead in the current 256-tick block; each slot
  // resolves exactly one tick.
  {
    const int cur = static_cast<int>(cursor_ & (kSlots - 1));
    Bitmap& bits = occupied_[0];
    for (int index = bits.next_above(cur); index < kSlots;
         index = bits.next_above(index)) {
      std::vector<QueueEntry>& slot = slots_[0][index];
      std::uint32_t& head = head0_[index];
      while (head < slot.size() && pool_[slot[head].slot].cancelled) {
        release_slot(slot[head].slot);
        consume_entry();
        ++head;
      }
      if (head < slot.size()) {
        return (cursor_ >> kSlotBits << kSlotBits) | index;
      }
      slot.clear();
      head = 0;
      bits.clear(index);
    }
  }
  // 3. Higher levels: the first occupied slot ahead strictly precedes
  // every later slot and every higher level (disjoint ascending tick
  // ranges), so its minimum live tick is the global next. Cancelled
  // entries inside a mixed slot stay put — the cascade that empties
  // the slot releases them.
  for (int level = 1; level < kLevels; ++level) {
    const int cur =
        static_cast<int>((cursor_ >> (kSlotBits * level)) & (kSlots - 1));
    Bitmap& bits = occupied_[level];
    for (int index = bits.next_above(cur); index < kSlots;
         index = bits.next_above(index)) {
      std::vector<QueueEntry>& slot = slots_[level][index];
      Tick best = -1;
      for (const QueueEntry& entry : slot) {
        if (pool_[entry.slot].cancelled) continue;
        const Tick t = tick_of(entry.when);
        if (best < 0 || t < best) best = t;
      }
      if (best >= 0) return best;
      for (const QueueEntry& entry : slot) {
        release_slot(entry.slot);
        consume_entry();
      }
      slot.clear();
      bits.clear(index);
    }
  }
  // 4. Overflow calendar, in block order.
  while (!overflow_.empty()) {
    const auto it = overflow_.begin();
    Tick best = -1;
    for (const QueueEntry& entry : it->second) {
      if (pool_[entry.slot].cancelled) continue;
      const Tick t = tick_of(entry.when);
      if (best < 0 || t < best) best = t;
    }
    if (best >= 0) return best;
    for (const QueueEntry& entry : it->second) {
      release_slot(entry.slot);
      consume_entry();
    }
    overflow_.erase(it);
  }
  return std::nullopt;
}

void Simulator::sweep_level(int level, int from, int to) {
  Bitmap& bits = occupied_[level];
  for (int index = bits.next_above(from); index < to;
       index = bits.next_above(index)) {
    std::vector<QueueEntry>& slot = slots_[level][index];
    // Level-0 entries before the consumed-prefix head were already
    // released when they fired or were dropped.
    const std::size_t start = level == 0 ? head0_[index] : 0;
    for (std::size_t i = start; i < slot.size(); ++i) {
      assert(pool_[slot[i].slot].cancelled);
      release_slot(slot[i].slot);
      consume_entry();
    }
    slot.clear();
    if (level == 0) head0_[index] = 0;
    bits.clear(index);
  }
}

void Simulator::cascade(int level, int index) {
  std::vector<QueueEntry>& slot = slots_[level][index];
  if (slot.empty()) return;
  occupied_[level].clear(index);
  // Every entry here matches the (advanced) cursor on this level's
  // block bits, so place() re-files it strictly below `level` — never
  // back into this vector, so in-place iteration is safe. Iterating in
  // list order keeps same-tick entries in sequence order.
  for (const QueueEntry& entry : slot) {
    if (pool_[entry.slot].cancelled) {
      release_slot(entry.slot);
      consume_entry();
    } else {
      place(entry);
    }
  }
  slot.clear();
}

void Simulator::advance_cursor(Tick target) {
  const Tick old = cursor_;
  assert(target > old);
  if ((old >> kOverflowShift) != (target >> kOverflowShift)) {
    // Entering a new overflow block: anything still filed in the wheel
    // is earlier than the next live event, hence cancelled.
    for (int level = 0; level < kLevels; ++level) {
      sweep_level(level, -1, kSlots);
    }
    cursor_ = target;
    // Demote the target block's bucket. Earlier buckets were released
    // by find_next() (they held no live entries); later buckets wait.
    const Tick block = target >> kOverflowShift;
    while (!overflow_.empty() && overflow_.begin()->first <= block) {
      std::vector<QueueEntry> entries = std::move(overflow_.begin()->second);
      overflow_.erase(overflow_.begin());
      for (const QueueEntry& entry : entries) {
        if (pool_[entry.slot].cancelled || tick_of(entry.when) < target) {
          assert(pool_[entry.slot].cancelled);
          release_slot(entry.slot);
          consume_entry();
        } else {
          place(entry);
        }
      }
    }
    return;
  }
  // Highest level whose block changed; everything below it is being
  // left behind (stale cancelled leftovers), and at that level the
  // slot containing `target` becomes current and cascades down.
  int level = kLevels - 1;
  while (level > 0 &&
         (old >> (kSlotBits * level)) == (target >> (kSlotBits * level))) {
    --level;
  }
  if (level == 0) {
    cursor_ = target;
    return;
  }
  for (int l = 0; l < level; ++l) sweep_level(l, -1, kSlots);
  const int from = static_cast<int>((old >> (kSlotBits * level)) & (kSlots - 1));
  const int to =
      static_cast<int>((target >> (kSlotBits * level)) & (kSlots - 1));
  sweep_level(level, from, to);
  cursor_ = target;
  cascade(level, to);
}

void Simulator::fire_at(Tick target) {
  if (target != cursor_) advance_cursor(target);
  const int index = static_cast<int>(target & (kSlots - 1));
  std::vector<QueueEntry>& slot = slots_[0][index];
  std::uint32_t& head = head0_[index];
  // The head entry is live: find_next() released any cancelled prefix,
  // and cascade/demotion release cancelled entries instead of placing.
  assert(head < slot.size());
  const QueueEntry entry = slot[head];
  ++head;
  consume_entry();
  assert(entry.when >= now_);
  now_ = entry.when;
  ++processed_;
  Event& event = pool_[entry.slot];
  if (event.periodic != nullptr) {
    // Copy the shared_ptr: it keeps the task alive and reachable even
    // if the callback schedules enough events to reallocate the pool.
    std::shared_ptr<PeriodicTask> task = event.periodic;
    if (task->cancelled) {
      // The handle was cancelled after this fire was armed: the pending
      // fire still pops (advancing time and counting as processed) but
      // runs nothing and ends the chain.
      release_slot(entry.slot);
      return;
    }
    task->callback();
    if (task->cancelled) {
      release_slot(entry.slot);
      return;
    }
    // Re-arm the same slot. Refresh the reference (the callback may
    // have grown the pool) and take the next sequence only now, after
    // the callback ran — events the callback scheduled at now+period
    // fire before the next tick, matching FIFO expectations.
    Event& rearmed = pool_[entry.slot];
    rearmed.when = now_ + task->period;
    ++entry_count_;
    place(QueueEntry{rearmed.when, next_sequence_++, entry.slot});
    return;
  }
  // One-shot: free the slot before invoking, so cancel(own id) inside
  // the callback is a clean no-op (the generation already moved on)
  // and the slot is immediately reusable by whatever the callback
  // schedules.
  Callback cb = std::move(event.callback);
  release_slot(entry.slot);
  cb();
}

bool Simulator::queue_empty() const {
  // Cancelled-but-unreleased entries still count as occupancy; this is
  // a cheap conservative check used only by diagnostics.
  return entry_count_ == 0;
}

void Simulator::restore_clock(TimePoint now, std::uint64_t events_processed,
                              std::uint64_t sequence_counter) {
  // Only a kernel that has never scheduled or fired anything can be
  // re-aligned: the wheel cursor jumps forward, and any entry placed
  // before the jump would sit in a slot the cursor will never revisit.
  assert(entry_count_ == 0 && processed_ == 0 && pool_.empty());
  now_ = now;
  cursor_ = tick_of(now);
  processed_ = events_processed;
  next_sequence_ = sequence_counter;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_) {
    const std::optional<Tick> next = find_next();
    if (!next) break;
    fire_at(*next);
  }
}

void Simulator::run_until(TimePoint t) {
  stopped_ = false;
  const Tick limit = tick_of(t);
  while (!stopped_) {
    const std::optional<Tick> next = find_next();
    if (!next || *next > limit) break;
    fire_at(*next);
  }
  if (now_ < t) now_ = t;
}

}  // namespace simba::sim
