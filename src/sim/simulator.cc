#include "sim/simulator.h"

#include <cassert>

namespace simba::sim {

Simulator::Simulator(std::uint64_t seed)
    : seed_(seed), root_rng_(Rng{seed}.child("root")) {
  // Log lines carry virtual time while this simulator is alive.
  Log::set_time_source([this] { return now_; });
}

Simulator::~Simulator() { Log::clear_time_source(); }

std::uint32_t Simulator::allocate_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& event = pool_[slot];
  event.callback = nullptr;
  event.periodic.reset();
  event.label = "";
  event.cancelled = false;
  event.pending = false;
  // Bumping the generation invalidates every EventId issued for the
  // old occupant; skipping 0 keeps all ids nonzero (0 is the callers'
  // "no event" sentinel).
  if (++event.generation == 0) event.generation = 1;
  free_.push_back(slot);
}

EventId Simulator::at(TimePoint t, Callback cb, const char* label) {
  if (t < now_) t = now_;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = t;
  event.callback = std::move(cb);
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  queue_.push(QueueEntry{t, next_sequence_++, slot});
  return make_id(slot, event.generation);
}

EventId Simulator::after(Duration delay, Callback cb, const char* label) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return at(now_ + delay, std::move(cb), label);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= pool_.size()) return;
  Event& event = pool_[slot];
  if (!event.pending || event.generation != generation) return;
  // The heap entry still references this slot, so the slot is only
  // freed (and its generation bumped) when that entry pops.
  event.cancelled = true;
}

TaskHandle Simulator::every(Duration period, Callback cb, const char* label,
                            bool immediate) {
  assert(period > Duration::zero());
  auto task = std::make_shared<PeriodicTask>();
  task->callback = std::move(cb);
  task->period = period;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = now_ + (immediate ? Duration::zero() : period);
  event.periodic = task;
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  queue_.push(QueueEntry{event.when, next_sequence_++, slot});
  return TaskHandle{std::move(task)};
}

void Simulator::drop_cancelled_head() {
  // Kernel-cancelled events are dropped silently: no time advance, no
  // events_processed tick. (A flag-cancelled periodic task is
  // different — its already-scheduled fire still pops as a real event;
  // see step().)
  while (!queue_.empty()) {
    const std::uint32_t slot = queue_.top().slot;
    if (!pool_[slot].cancelled) break;
    queue_.pop();
    release_slot(slot);
  }
}

bool Simulator::queue_empty() const {
  // Cancelled events at the head still count as empty-in-effect; this is
  // a cheap conservative check used only by diagnostics.
  return queue_.empty();
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  assert(entry.when >= now_);
  now_ = entry.when;
  ++processed_;
  Event& event = pool_[entry.slot];
  if (event.periodic != nullptr) {
    // Copy the shared_ptr: it keeps the task alive and reachable even
    // if the callback schedules enough events to reallocate the pool.
    std::shared_ptr<PeriodicTask> task = event.periodic;
    if (task->cancelled) {
      // The handle was cancelled after this fire was armed: the pending
      // fire still pops (advancing time and counting as processed) but
      // runs nothing and ends the chain.
      release_slot(entry.slot);
      return true;
    }
    task->callback();
    if (task->cancelled) {
      release_slot(entry.slot);
      return true;
    }
    // Re-arm the same slot. Refresh the reference (the callback may
    // have grown the pool) and take the next sequence only now, after
    // the callback ran — events the callback scheduled at now+period
    // fire before the next tick, matching FIFO expectations.
    Event& rearmed = pool_[entry.slot];
    rearmed.when = now_ + task->period;
    queue_.push(QueueEntry{rearmed.when, next_sequence_++, entry.slot});
    return true;
  }
  // One-shot: free the slot before invoking, so cancel(own id) inside
  // the callback is a clean no-op (the generation already moved on)
  // and the slot is immediately reusable by whatever the callback
  // schedules.
  Callback cb = std::move(event.callback);
  release_slot(entry.slot);
  cb();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().when > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace simba::sim
