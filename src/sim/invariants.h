// End-to-end alert-conservation invariants (experiment E10).
//
// The checker follows every submitted alert through
//   submit -> (pessimistic) log -> ack -> deliver / explicit fail
// and, at the horizon, asserts the paper's dependability contract:
//
//   * conservation — submitted == delivered + explicitly-failed +
//     shed + coalesced + in-flight; an alert still in flight must be
//     *recoverable* (in the persistent log or an unread mailbox),
//     never vanished; shed (bounded-queue overflow) and coalesced
//     (folded into a digest alert) are explicit, traced outcomes, not
//     silent losses;
//   * no phantom deliveries — the user never sees an alert nobody sent;
//   * log-before-ack — an acknowledged primary-channel delivery was
//     already persisted when the ack went out, and the record never
//     disappears afterwards;
//   * duplicates only where permitted — repeat sightings are legal
//     exactly where the paper's timestamp-based duplicate detection
//     expects them (multi-channel fallback, at-least-once resends);
//     with duplicates disallowed any repeat sighting is a violation.
//
// One checker per world; the chaos fleet workload
// (src/fleet/chaos_workload.cc) feeds it and folds its report into the
// shard counters, so violations surface through the deterministic
// merged fleet report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/flat_map.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/trace.h"

namespace simba::sim {

class InvariantChecker {
 public:
  struct Options {
    /// Repeat sightings of one alert are legal (multi-channel fallback
    /// or chaos duplication in play). When false, any repeat sighting
    /// is an illegal duplicate.
    bool duplicates_allowed = true;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Options options) : options_(options) {}

  /// A source handed the alert to the delivery pipeline.
  void on_submitted(const std::string& id, TimePoint at);
  /// The pessimistic log persisted the alert.
  void on_logged(const std::string& id, TimePoint at);
  /// The source received an acknowledgement. `block` is the delivery
  /// block that succeeded (0 = primary IM leg); `logged` is whether the
  /// persistent log held the alert at that instant.
  void on_acked(const std::string& id, int block, bool logged, TimePoint at);
  /// The user saw the alert (every sighting, duplicates included).
  void on_delivered(const std::string& id, const std::string& channel,
                    TimePoint at);
  /// The source was told delivery failed (all blocks exhausted).
  void on_failed(const std::string& id, TimePoint at);
  /// A bounded queue dropped the alert with explicit accounting
  /// (MAB inbox bound, delivery-lane bound).
  void on_shed(const std::string& id, TimePoint at);
  /// Admission control folded the alert into a digest instead of
  /// delivering it individually.
  void on_coalesced(const std::string& id, TimePoint at);
  /// Horizon-time mark: the alert is neither delivered nor failed but
  /// still held somewhere recovery can reach (persistent log, unread
  /// mailbox) — in flight, not lost.
  void on_recoverable(const std::string& id);

  /// Submitted alerts with no terminal state yet — the set the caller
  /// sweeps at horizon to decide recoverability.
  std::vector<std::string> unresolved() const;

  struct Report {
    // Population, bucketed disjointly
    // (delivered > failed > shed > coalesced > in-flight).
    std::int64_t submitted = 0;
    std::int64_t delivered = 0;
    std::int64_t failed = 0;
    std::int64_t shed = 0;
    std::int64_t coalesced = 0;
    std::int64_t in_flight = 0;
    std::int64_t duplicate_sightings = 0;
    // Alerts recorded in more than one outcome class (e.g. delivered
    // *and* coalesced). Legal only where duplicates are: a crash after
    // routing but before the processed-mark can replay an alert into a
    // different outcome, exactly like a duplicate sighting.
    std::int64_t double_accounted = 0;
    std::int64_t acked = 0;
    std::int64_t logged = 0;

    // Violations — all must be zero for the contract to hold.
    std::int64_t phantom_deliveries = 0;  // seen/acked/failed, never sent
    std::int64_t ack_unlogged = 0;  // primary-leg ack before persistence
    std::int64_t log_vanished = 0;  // acked record later missing from log
    std::int64_t vanished = 0;      // no terminal state, not recoverable
    std::int64_t illegal_duplicates = 0;
    std::int64_t illegal_double_accounted = 0;
    std::int64_t conservation_gap = 0;  // submitted minus bucket sum

    /// Ids of the alerts behind the per-alert violation classes above
    /// (sorted, deduplicated). The trace-aware describe() prints each
    /// one's full lifecycle.
    std::vector<std::string> violating_ids;

    std::int64_t violations() const {
      return phantom_deliveries + ack_unlogged + log_vanished + vanished +
             illegal_duplicates + illegal_double_accounted +
             (conservation_gap != 0 ? 1 : 0);
    }
    bool ok() const { return violations() == 0; }

    /// Folds the report into a counter bag under `prefix` — the bridge
    /// into ShardResult counters and the merged fleet report.
    void export_to(Counters& counters,
                   const std::string& prefix = "invariant.") const;
    std::string describe() const;
    /// describe(), then — when the contract is broken and a trace is
    /// available — each violating alert's full lifecycle from it.
    std::string describe(const util::Trace* trace) const;
  };

  /// Evaluates the contract over everything recorded so far. `logged_now`
  /// results from a final log probe per acked id: an id acked as logged
  /// must still be present (pessimistic log records never vanish). Pass
  /// nullptr to skip that probe (no log in the world).
  using LoggedNowMap = util::FlatMap<std::string, bool>;
  Report check(const LoggedNowMap* logged_now = nullptr) const;

  /// Checkpoint state (sim/snapshot.h): the full per-alert bookkeeping,
  /// so a resumed run's horizon sweep sees exactly the history the
  /// uninterrupted run would.
  struct TrackState {
    std::string id;
    bool submitted = false;
    bool logged = false;
    bool acked = false;
    bool acked_logged = false;
    int ack_block = -1;
    bool failed = false;
    bool shed = false;
    int coalesces = 0;
    bool recoverable = false;
    int sightings = 0;
    TimePoint submitted_at{};
    TimePoint first_seen{};
  };
  struct State {
    bool duplicates_allowed = true;
    std::vector<TrackState> tracks;  // sorted by id
  };
  State save_state() const;
  void restore_state(const State& state);

 private:
  struct Track {
    bool submitted = false;
    bool logged = false;
    bool acked = false;
    bool acked_logged = false;  // log held the alert when the ack left
    int ack_block = -1;
    bool failed = false;
    bool shed = false;
    int coalesces = 0;
    bool recoverable = false;
    int sightings = 0;
    TimePoint submitted_at{};
    TimePoint first_seen{};
  };

  Track& track(const std::string& id) { return tracks_[id]; }

  Options options_;
  /// Per-alert bookkeeping. The per-event record path is a hash probe;
  /// every sweep that observes order (check(), unresolved(),
  /// save_state()) walks sorted_items() so violating-id dedup, horizon
  /// sweeps, and snapshot images stay byte-identical to the old
  /// sorted-map behaviour.
  util::FlatMap<std::string, Track> tracks_;
};

}  // namespace simba::sim
