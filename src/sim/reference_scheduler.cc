#include "sim/reference_scheduler.h"

#include <cassert>

namespace simba::sim {

std::uint32_t ReferenceScheduler::allocate_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void ReferenceScheduler::release_slot(std::uint32_t slot) {
  Event& event = pool_[slot];
  event.callback = nullptr;
  event.periodic.reset();
  event.label = "";
  event.cancelled = false;
  event.pending = false;
  if (++event.generation == 0) event.generation = 1;
  free_.push_back(slot);
}

EventId ReferenceScheduler::at(TimePoint t, Callback cb, const char* label) {
  if (t < now_) t = now_;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = t;
  event.callback = std::move(cb);
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  queue_.push(QueueEntry{t, next_sequence_++, slot});
  return make_id(slot, event.generation);
}

EventId ReferenceScheduler::after(Duration delay, Callback cb,
                                  const char* label) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return at(now_ + delay, std::move(cb), label);
}

void ReferenceScheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= pool_.size()) return;
  Event& event = pool_[slot];
  if (!event.pending || event.generation != generation) return;
  event.cancelled = true;
}

TaskHandle ReferenceScheduler::every(Duration period, Callback cb,
                                     const char* label, bool immediate) {
  assert(period > Duration::zero());
  auto task = std::make_shared<PeriodicTask>();
  task->callback = std::move(cb);
  task->period = period;
  const std::uint32_t slot = allocate_slot();
  Event& event = pool_[slot];
  event.when = now_ + (immediate ? Duration::zero() : period);
  event.periodic = task;
  event.label = label == nullptr ? "" : label;
  event.pending = true;
  queue_.push(QueueEntry{event.when, next_sequence_++, slot});
  return TaskHandle{std::move(task)};
}

void ReferenceScheduler::drop_cancelled_head() {
  while (!queue_.empty()) {
    const std::uint32_t slot = queue_.top().slot;
    if (!pool_[slot].cancelled) break;
    queue_.pop();
    release_slot(slot);
  }
}

bool ReferenceScheduler::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  assert(entry.when >= now_);
  now_ = entry.when;
  ++processed_;
  Event& event = pool_[entry.slot];
  if (event.periodic != nullptr) {
    std::shared_ptr<PeriodicTask> task = event.periodic;
    if (task->cancelled) {
      release_slot(entry.slot);
      return true;
    }
    task->callback();
    if (task->cancelled) {
      release_slot(entry.slot);
      return true;
    }
    Event& rearmed = pool_[entry.slot];
    rearmed.when = now_ + task->period;
    queue_.push(QueueEntry{rearmed.when, next_sequence_++, entry.slot});
    return true;
  }
  Callback cb = std::move(event.callback);
  release_slot(entry.slot);
  cb();
  return true;
}

void ReferenceScheduler::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void ReferenceScheduler::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().when > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace simba::sim
