#include "sim/invariants.h"

#include "util/strings.h"

namespace simba::sim {

void InvariantChecker::on_submitted(const std::string& id, TimePoint at) {
  Track& t = track(id);
  t.submitted = true;
  t.submitted_at = at;
}

void InvariantChecker::on_logged(const std::string& id, TimePoint) {
  track(id).logged = true;
}

void InvariantChecker::on_acked(const std::string& id, int block, bool logged,
                                TimePoint) {
  Track& t = track(id);
  if (!t.acked) {
    t.acked = true;
    t.ack_block = block;
    t.acked_logged = logged;
  }
  if (logged) t.logged = true;
}

void InvariantChecker::on_delivered(const std::string& id, const std::string&,
                                    TimePoint at) {
  Track& t = track(id);
  if (t.sightings == 0) t.first_seen = at;
  ++t.sightings;
}

void InvariantChecker::on_failed(const std::string& id, TimePoint) {
  track(id).failed = true;
}

void InvariantChecker::on_shed(const std::string& id, TimePoint) {
  track(id).shed = true;
}

void InvariantChecker::on_coalesced(const std::string& id, TimePoint) {
  ++track(id).coalesces;
}

void InvariantChecker::on_recoverable(const std::string& id) {
  track(id).recoverable = true;
}

std::vector<std::string> InvariantChecker::unresolved() const {
  std::vector<std::string> out;
  for (const auto& [id, t] : tracks_.sorted_items()) {
    if (t.submitted && t.sightings == 0 && !t.failed && !t.shed &&
        t.coalesces == 0) {
      out.push_back(id);
    }
  }
  return out;
}

InvariantChecker::Report InvariantChecker::check(
    const LoggedNowMap* logged_now) const {
  Report report;
  // The sorted_items() walk keeps violating_ids sorted; the
  // lambda dedupes an id hitting several violation classes.
  const auto violating = [&report](const std::string& id) {
    if (report.violating_ids.empty() || report.violating_ids.back() != id) {
      report.violating_ids.push_back(id);
    }
  };
  for (const auto& [id, t] : tracks_.sorted_items()) {
    if (!t.submitted) {
      // Someone saw, acked, or failed an alert nobody submitted.
      ++report.phantom_deliveries;
      violating(id);
      continue;
    }
    ++report.submitted;
    if (t.logged) ++report.logged;
    if (t.acked) {
      ++report.acked;
      // Log-before-ack: a primary-leg (block 0) acknowledgement without
      // a persisted record breaks the pessimistic-logging contract.
      if (t.ack_block == 0 && !t.acked_logged) {
        ++report.ack_unlogged;
        violating(id);
      }
      // And the record must still be there now: pessimistic-log records
      // of acked alerts never vanish (a torn append can only hit an
      // unsynced — hence unacked — record).
      if (t.ack_block == 0 && t.acked_logged && logged_now) {
        const auto it = logged_now->find(id);
        if (it != logged_now->end() && !it->second) {
          ++report.log_vanished;
          violating(id);
        }
      }
    }
    if (t.sightings > 1) {
      report.duplicate_sightings += t.sightings - 1;
      if (!options_.duplicates_allowed) {
        report.illegal_duplicates += t.sightings - 1;
        violating(id);
      }
    }
    // An alert landing in more than one outcome class (delivered and
    // coalesced, shed and coalesced, coalesced twice) is accounted
    // once by the disjoint buckets below, but the overlap itself is
    // tracked — and, where duplicates are banned, a violation.
    const int outcome_classes = (t.sightings > 0 ? 1 : 0) +
                                (t.shed ? 1 : 0) + t.coalesces;
    if (outcome_classes > 1) {
      report.double_accounted += outcome_classes - 1;
      if (!options_.duplicates_allowed) {
        report.illegal_double_accounted += outcome_classes - 1;
        violating(id);
      }
    }
    // Disjoint terminal buckets,
    // delivered > failed > shed > coalesced > in-flight.
    if (t.sightings > 0) {
      ++report.delivered;
    } else if (t.failed) {
      ++report.failed;
    } else if (t.shed) {
      ++report.shed;
    } else if (t.coalesces > 0) {
      ++report.coalesced;
    } else if (t.recoverable) {
      ++report.in_flight;
    } else {
      ++report.vanished;  // silently lost — the one unforgivable outcome
      violating(id);
    }
  }
  report.conservation_gap = report.submitted - report.delivered -
                            report.failed - report.shed - report.coalesced -
                            report.in_flight - report.vanished;
  return report;
}

void InvariantChecker::Report::export_to(Counters& counters,
                                         const std::string& prefix) const {
  counters.bump(prefix + "submitted", submitted);
  counters.bump(prefix + "delivered", delivered);
  counters.bump(prefix + "failed", failed);
  counters.bump(prefix + "shed", shed);
  counters.bump(prefix + "coalesced", coalesced);
  counters.bump(prefix + "in_flight", in_flight);
  counters.bump(prefix + "duplicate_sightings", duplicate_sightings);
  counters.bump(prefix + "double_accounted", double_accounted);
  counters.bump(prefix + "acked", acked);
  counters.bump(prefix + "logged", logged);
  counters.bump(prefix + "violations.phantom", phantom_deliveries);
  counters.bump(prefix + "violations.ack_unlogged", ack_unlogged);
  counters.bump(prefix + "violations.log_vanished", log_vanished);
  counters.bump(prefix + "violations.vanished", vanished);
  counters.bump(prefix + "violations.illegal_duplicates", illegal_duplicates);
  counters.bump(prefix + "violations.double_accounted",
                illegal_double_accounted);
  counters.bump(prefix + "violations.total", violations());
}

std::string InvariantChecker::Report::describe() const {
  std::string out = strformat(
      "conservation: %lld submitted = %lld delivered + %lld failed + %lld "
      "shed + %lld coalesced + %lld in-flight (+%lld vanished), %lld "
      "duplicate sightings, %lld double-accounted\n",
      static_cast<long long>(submitted), static_cast<long long>(delivered),
      static_cast<long long>(failed), static_cast<long long>(shed),
      static_cast<long long>(coalesced), static_cast<long long>(in_flight),
      static_cast<long long>(vanished),
      static_cast<long long>(duplicate_sightings),
      static_cast<long long>(double_accounted));
  if (ok()) {
    out += "invariants: OK\n";
  } else {
    out += strformat(
        "invariants: VIOLATED — phantom=%lld ack_unlogged=%lld "
        "log_vanished=%lld vanished=%lld illegal_duplicates=%lld "
        "double_accounted=%lld gap=%lld\n",
        static_cast<long long>(phantom_deliveries),
        static_cast<long long>(ack_unlogged),
        static_cast<long long>(log_vanished), static_cast<long long>(vanished),
        static_cast<long long>(illegal_duplicates),
        static_cast<long long>(illegal_double_accounted),
        static_cast<long long>(conservation_gap));
  }
  return out;
}

std::string InvariantChecker::Report::describe(
    const util::Trace* trace) const {
  std::string out = describe();
  if (ok() || trace == nullptr) return out;
  for (const std::string& id : violating_ids) {
    out += "--- trace for " + id + " ---\n";
    out += trace->describe(id);
  }
  return out;
}

InvariantChecker::State InvariantChecker::save_state() const {
  State state;
  state.duplicates_allowed = options_.duplicates_allowed;
  state.tracks.reserve(tracks_.size());
  for (const auto& [id, t] : tracks_.sorted_items()) {
    state.tracks.push_back(TrackState{
        id, t.submitted, t.logged, t.acked, t.acked_logged, t.ack_block,
        t.failed, t.shed, t.coalesces, t.recoverable, t.sightings,
        t.submitted_at, t.first_seen});
  }
  return state;
}

void InvariantChecker::restore_state(const State& state) {
  options_.duplicates_allowed = state.duplicates_allowed;
  tracks_.clear();
  for (const TrackState& s : state.tracks) {
    tracks_[s.id] =
        Track{s.submitted, s.logged,      s.acked,     s.acked_logged,
              s.ack_block, s.failed,      s.shed,      s.coalesces,
              s.recoverable, s.sightings, s.submitted_at, s.first_seen};
  }
}

}  // namespace simba::sim
