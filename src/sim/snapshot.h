// Versioned binary checkpoint images for deterministic crash-restart.
//
// A snapshot is the persistent half of a world: everything a real
// deployment would hold on disk or in long-lived server state (the
// pessimistic alert log, mailboxes, user sighting history, counters,
// RNG positions, the virtual clock). The volatile half — pending
// kernel events, in-flight bus messages, live delivery attempts — is
// deliberately NOT captured: a checkpoint models a process image that
// died, so restore is a *crash-restart* and recovery flows through the
// paper's own path (log replay on the next MAB start). DESIGN.md §15
// states the restore-equivalence invariant this format is proven by.
//
// Wire format (all integers little-endian, fixed width):
//
//   header:   magic u32 | version u32 | image_kind u32 | section_count u32
//   section:  section_id u32 | payload_len u64 | payload | crc32 u32
//
// Sections appear in a strict, image-kind-defined order; the reader
// verifies the id of every section it enters, so a reordered image is
// rejected, not misparsed. The CRC covers the payload bytes only and is
// checked before any payload parsing, so a bit flip can never steer the
// decoder. Every decode failure is a clean util::Status — malformed
// input must not be able to cause UB (tests/snapshot_test.cc fuzzes
// truncations, bit flips, version skew, and section reordering under
// ASan+UBSan).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace simba::sim {

/// "SMBA" — identifies any SIMBA snapshot image.
inline constexpr std::uint32_t kSnapshotMagic = 0x53'4d'42'41u;
/// Bumped on any incompatible layout change; readers reject mismatches.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `data`.
std::uint32_t snapshot_crc32(const unsigned char* data, std::size_t size);

/// Appends primitives into a growing image. Sections are length-prefixed
/// and CRC-stamped on end_section(); finish() patches the section count
/// and releases the buffer.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint32_t image_kind);

  void begin_section(std::uint32_t section_id);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Doubles travel as their IEEE-754 bit pattern — restore is
  /// bit-exact, never a parse/print round trip.
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view v);
  void time_point(TimePoint t) { i64(t.time_since_epoch().count()); }
  void dur(Duration d) { i64(d.count()); }

  std::size_t size() const { return buffer_.size(); }
  std::string finish();

 private:
  std::string buffer_;
  std::size_t payload_start_ = 0;  // current section's payload offset
  std::uint32_t section_count_ = 0;
  bool in_section_ = false;
};

/// Decodes an image produced by SnapshotWriter. Errors are sticky: the
/// first malformed read records a Status and every subsequent read
/// returns a zero value without touching the input, so decode code can
/// read a whole struct straight through and check status() once at the
/// end. All reads are bounds-checked against the section payload.
class SnapshotReader {
 public:
  /// Verifies the header (magic, version, image kind) immediately;
  /// check status() before trusting anything else.
  SnapshotReader(std::string_view image, std::uint32_t image_kind);

  /// Enters the next section, which must carry exactly `section_id`
  /// (strict ordering) and a valid CRC. Returns false if the image is
  /// already bad or the section is malformed.
  bool enter(std::uint32_t section_id);
  /// Leaves the current section; the payload must be fully consumed.
  bool leave();

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  TimePoint time_point() { return TimePoint{Duration{i64()}}; }
  Duration dur() { return Duration{i64()}; }

  bool ok() const { return error_.empty(); }
  Status status() const;
  /// ok() plus "every section consumed": the terminal check.
  Status finish();

 private:
  void fail(std::string message);
  bool need(std::size_t n);
  std::uint32_t raw_u32();
  std::uint64_t raw_u64();

  std::string_view image_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  std::uint32_t sections_left_ = 0;
  bool in_section_ = false;
  std::string error_;
};

// --- Codecs for the util building blocks -----------------------------------
// Core/fleet-level codecs live with their modules (src/fleet/resume.cc);
// these cover the types everything else is built from.

void put_rng(SnapshotWriter& w, const Rng::State& state);
Rng::State get_rng(SnapshotReader& r);

void put_counters(SnapshotWriter& w, const Counters& counters);
Counters get_counters(SnapshotReader& r);

void put_summary(SnapshotWriter& w, const Summary::State& state);
Summary::State get_summary(SnapshotReader& r);

void put_histogram(SnapshotWriter& w, const Histogram::State& state);
Histogram::State get_histogram(SnapshotReader& r);

}  // namespace simba::sim
