#include "sim/chaos.h"

#include <algorithm>

#include "util/strings.h"

namespace simba::sim {

const char* to_string(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kNetDuplicate: return "net.duplicate";
    case ChaosKind::kNetReorder: return "net.reorder";
    case ChaosKind::kNetDelaySpike: return "net.delay_spike";
    case ChaosKind::kNetLateLoss: return "net.late_loss";
    case ChaosKind::kLogTornAppend: return "log.torn_append";
    case ChaosKind::kMabKill: return "mab.kill";
    case ChaosKind::kMabHang: return "mab.hang";
    case ChaosKind::kMachineReboot: return "machine.reboot";
    case ChaosKind::kPowerOutage: return "machine.power_outage";
  }
  return "unknown";
}

ChaosScenario& ChaosScenario::add(ChaosClause clause) {
  clauses.push_back(clause);
  return *this;
}

ChaosScenario ChaosScenario::baseline() {
  ChaosScenario s;
  s.name = "baseline";
  return s;
}

ChaosScenario ChaosScenario::flaky_network() {
  ChaosScenario s;
  s.name = "flaky_network";
  s.add({ChaosKind::kNetDuplicate, 0.02});
  s.add({ChaosKind::kNetReorder, 0.10, seconds(2)});
  s.add({ChaosKind::kNetDelaySpike, 0.01, seconds(30)});
  s.add({ChaosKind::kNetLateLoss, 0.01});
  return s;
}

ChaosScenario ChaosScenario::dup_storm() {
  // Duplication-only: with no loss, hangs, or power faults in play,
  // every duplicate log-append at the MAB must come from a bus-level
  // duplicated message — the property the chaos-trace regression test
  // pins by matching duplicate-detection drops against bus spans.
  ChaosScenario s;
  s.name = "dup_storm";
  s.add({ChaosKind::kNetDuplicate, 0.25});
  return s;
}

ChaosScenario ChaosScenario::crashy_daemon() {
  ChaosScenario s;
  s.name = "crashy_daemon";
  s.add({ChaosKind::kMabKill, 6.0});
  s.add({ChaosKind::kMabHang, 4.0});
  s.add({ChaosKind::kMachineReboot, 1.0});
  return s;
}

ChaosScenario ChaosScenario::storm_crash() {
  // The overload companion: a MAB that keeps dying mid-storm. Kills
  // land while admission control is coalescing and queues are full, so
  // the recovery replay crosses shed/coalesce accounting — the
  // regression proving no alert is double-counted across a crash.
  ChaosScenario s;
  s.name = "storm_crash";
  s.add({ChaosKind::kMabKill, 9.0});
  s.add({ChaosKind::kMabHang, 3.0});
  return s;
}

ChaosScenario ChaosScenario::power_storms() {
  ChaosScenario s;
  s.name = "power_storms";
  s.add({ChaosKind::kPowerOutage, 4.0, minutes(5)});
  s.add({ChaosKind::kLogTornAppend, 0.5});
  return s;
}

ChaosScenario ChaosScenario::everything() {
  ChaosScenario s;
  s.name = "everything";
  s.add({ChaosKind::kNetDuplicate, 0.01});
  s.add({ChaosKind::kNetReorder, 0.05, seconds(2)});
  s.add({ChaosKind::kNetDelaySpike, 0.005, seconds(20)});
  s.add({ChaosKind::kNetLateLoss, 0.005});
  s.add({ChaosKind::kMabKill, 3.0});
  s.add({ChaosKind::kMabHang, 2.0});
  s.add({ChaosKind::kMachineReboot, 0.5});
  s.add({ChaosKind::kPowerOutage, 2.0, minutes(4)});
  s.add({ChaosKind::kLogTornAppend, 0.5});
  return s;
}

std::vector<ChaosScenario> ChaosScenario::presets() {
  return {baseline(),    flaky_network(), dup_storm(),  crashy_daemon(),
          storm_crash(), power_storms(),  everything()};
}

ChaosScenario ChaosScenario::preset(const std::string& name) {
  for (ChaosScenario& s : presets()) {
    if (s.name == name) return s;
  }
  return baseline();
}

std::string ChaosScenario::describe() const {
  std::string out = "scenario " + name + ":\n";
  for (const ChaosClause& c : clauses) {
    out += strformat("  %-20s rate=%g", to_string(c.kind), c.rate);
    if (c.magnitude > Duration::zero()) {
      out += " magnitude=" + format_duration(c.magnitude);
    }
    if (c.window_end > kTimeZero) {
      out += strformat(" window=[%s, %s)", format_time(c.window_start).c_str(),
                       format_time(c.window_end).c_str());
    }
    out += "\n";
  }
  if (clauses.empty()) out += "  (no faults — control)\n";
  return out;
}

namespace {

// Poisson event times at `per_day` events/day over [start, end),
// clipped to the clause window. One child stream per clause keeps the
// schedules independent of each other and of clause order... almost:
// two clauses of the same kind share a stream name, so we salt with
// the clause index.
std::vector<TimePoint> poisson_times(Rng& rng, double per_day,
                                     TimePoint start, TimePoint end) {
  std::vector<TimePoint> times;
  if (per_day <= 0.0 || end <= start) return times;
  const Duration mean_gap{
      static_cast<std::int64_t>(86400.0 / per_day * 1e6)};
  TimePoint t = start;
  while (true) {
    t += rng.exponential_duration(mean_gap);
    if (t >= end) break;
    times.push_back(t);
  }
  return times;
}

NetChaosAxis make_axis(const ChaosClause& clause, TimePoint window_end,
                       Duration default_magnitude, double sigma) {
  NetChaosAxis axis;
  axis.probability = std::clamp(clause.rate, 0.0, 1.0);
  axis.magnitude = clause.magnitude > Duration::zero() ? clause.magnitude
                                                       : default_magnitude;
  axis.sigma = sigma;
  axis.window_start = clause.window_start;
  axis.window_end = window_end;
  return axis;
}

}  // namespace

ChaosPlan::ChaosPlan(std::uint64_t seed, const ChaosScenario& scenario,
                     Duration horizon)
    : scenario_(scenario), horizon_(horizon) {
  const TimePoint horizon_end = kTimeZero + horizon;
  const Rng root = Rng(seed).child("chaos." + scenario.name);
  for (std::size_t i = 0; i < scenario_.clauses.size(); ++i) {
    const ChaosClause& clause = scenario_.clauses[i];
    const TimePoint end =
        clause.window_end > kTimeZero ? std::min(clause.window_end, horizon_end)
                                      : horizon_end;
    Rng rng = root.child(std::string(to_string(clause.kind)) + "#" +
                         std::to_string(i));
    switch (clause.kind) {
      case ChaosKind::kNetDuplicate:
        net_.duplicate = make_axis(clause, end, Duration::zero(), 1.0);
        break;
      case ChaosKind::kNetReorder:
        net_.reorder = make_axis(clause, end, seconds(2), 1.0);
        break;
      case ChaosKind::kNetDelaySpike:
        net_.delay_spike = make_axis(clause, end, seconds(30), 1.0);
        break;
      case ChaosKind::kNetLateLoss:
        net_.late_loss = make_axis(clause, end, Duration::zero(), 1.0);
        break;
      case ChaosKind::kLogTornAppend:
        log_.torn_append_probability = std::clamp(clause.rate, 0.0, 1.0);
        break;
      case ChaosKind::kMabKill:
        for (TimePoint t :
             poisson_times(rng, clause.rate, clause.window_start, end)) {
          host_.mab_kills.push_back(t);
        }
        break;
      case ChaosKind::kMabHang:
        for (TimePoint t :
             poisson_times(rng, clause.rate, clause.window_start, end)) {
          host_.mab_hangs.push_back(t);
        }
        break;
      case ChaosKind::kMachineReboot:
        for (TimePoint t :
             poisson_times(rng, clause.rate, clause.window_start, end)) {
          host_.reboots.push_back(t);
        }
        break;
      case ChaosKind::kPowerOutage: {
        const Duration median =
            clause.magnitude > Duration::zero() ? clause.magnitude : minutes(5);
        for (TimePoint t :
             poisson_times(rng, clause.rate, clause.window_start, end)) {
          host_.power_plan.add(t, rng.lognormal_duration(median, 0.8));
        }
        break;
      }
    }
  }
  std::sort(host_.mab_kills.begin(), host_.mab_kills.end());
  std::sort(host_.mab_hangs.begin(), host_.mab_hangs.end());
  std::sort(host_.reboots.begin(), host_.reboots.end());
}

std::string ChaosPlan::describe() const {
  std::string out = scenario_.describe();
  out += strformat(
      "plan over %s: %zu kills, %zu hangs, %zu reboots, %zu power outages\n",
      format_duration(horizon_).c_str(), host_.mab_kills.size(),
      host_.mab_hangs.size(), host_.reboots.size(),
      host_.power_plan.outages().size());
  return out;
}

}  // namespace simba::sim
