#include "sim/fault.h"

#include <algorithm>

#include "util/strings.h"

namespace simba::sim {

void OutagePlan::add(TimePoint start, Duration length) {
  if (length <= Duration::zero()) return;
  outages_.push_back(Outage{start, start + length});
  normalized_ = false;
}

void OutagePlan::normalize() const {
  if (normalized_) return;
  std::sort(outages_.begin(), outages_.end(),
            [](const Outage& a, const Outage& b) { return a.start < b.start; });
  std::vector<Outage> merged;
  for (const auto& o : outages_) {
    if (!merged.empty() && o.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, o.end);
    } else {
      merged.push_back(o);
    }
  }
  outages_ = std::move(merged);
  normalized_ = true;
}

bool OutagePlan::down_at(TimePoint t) const {
  normalize();
  // First outage starting after t; the previous one may cover t.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](TimePoint tp, const Outage& o) { return tp < o.start; });
  if (it == outages_.begin()) return false;
  --it;
  return t < it->end;
}

TimePoint OutagePlan::up_again_at(TimePoint t) const {
  normalize();
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](TimePoint tp, const Outage& o) { return tp < o.start; });
  if (it == outages_.begin()) return t;
  --it;
  return t < it->end ? it->end : t;
}

const std::vector<Outage>& OutagePlan::outages() const {
  normalize();
  return outages_;
}

Duration OutagePlan::total_downtime(TimePoint horizon) const {
  normalize();
  Duration total{0};
  for (const auto& o : outages_) {
    if (o.start >= horizon) break;
    total += std::min(o.end, horizon) - o.start;
  }
  return total;
}

OutagePlan OutagePlan::generate(Rng& rng, Duration horizon, Duration mtbf,
                                Duration down_median, double down_sigma) {
  OutagePlan plan;
  TimePoint t{};
  const TimePoint end{horizon};
  while (true) {
    t += rng.exponential_duration(mtbf);
    if (t >= end) break;
    const Duration down = rng.lognormal_duration(down_median, down_sigma);
    plan.add(t, down);
    t += down;
  }
  return plan;
}

std::string OutagePlan::describe() const {
  normalize();
  std::string out;
  for (const auto& o : outages_) {
    out += strformat("  down %s .. %s (%s)\n", format_time(o.start).c_str(),
                     format_time(o.end).c_str(),
                     format_duration(o.length()).c_str());
  }
  if (out.empty()) out = "  (no outages)\n";
  return out;
}

}  // namespace simba::sim
