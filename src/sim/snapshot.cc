#include "sim/snapshot.h"

#include <cassert>
#include <cstring>
#include <utility>
#include <vector>

namespace simba::sim {
namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t snapshot_crc32(const unsigned char* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- SnapshotWriter --------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::uint32_t image_kind) {
  u32(kSnapshotMagic);
  u32(kSnapshotVersion);
  u32(image_kind);
  u32(0);  // section count, patched by finish()
}

void SnapshotWriter::begin_section(std::uint32_t section_id) {
  assert(!in_section_);
  in_section_ = true;
  u32(section_id);
  u64(0);  // payload length, patched by end_section()
  payload_start_ = buffer_.size();
}

void SnapshotWriter::end_section() {
  assert(in_section_);
  in_section_ = false;
  const std::uint64_t length = buffer_.size() - payload_start_;
  for (int i = 0; i < 8; ++i) {
    buffer_[payload_start_ - 8 + i] =
        static_cast<char>((length >> (8 * i)) & 0xFFu);
  }
  const std::uint32_t crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(buffer_.data()) + payload_start_,
      static_cast<std::size_t>(length));
  u32(crc);
  ++section_count_;
}

void SnapshotWriter::u8(std::uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void SnapshotWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void SnapshotWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void SnapshotWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void SnapshotWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void SnapshotWriter::boolean(bool v) { u8(v ? 1 : 0); }

void SnapshotWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.append(v.data(), v.size());
}

std::string SnapshotWriter::finish() {
  assert(!in_section_);
  // Patch the section count at header offset 12.
  for (int i = 0; i < 4; ++i) {
    buffer_[12 + i] = static_cast<char>((section_count_ >> (8 * i)) & 0xFFu);
  }
  return std::move(buffer_);
}

// --- SnapshotReader --------------------------------------------------------

SnapshotReader::SnapshotReader(std::string_view image, std::uint32_t image_kind)
    : image_(image) {
  // The header lives outside any section; borrow the bounds machinery
  // by treating the whole image as readable for these four fields.
  section_end_ = image_.size();
  const std::uint32_t magic = u32();
  if (ok() && magic != kSnapshotMagic) {
    fail("bad magic: not a SIMBA snapshot image");
  }
  const std::uint32_t version = u32();
  if (ok() && version != kSnapshotVersion) {
    fail("snapshot version skew: image has v" + std::to_string(version) +
         ", reader expects v" + std::to_string(kSnapshotVersion));
  }
  const std::uint32_t kind = u32();
  if (ok() && kind != image_kind) {
    fail("snapshot image kind mismatch: image has kind " +
         std::to_string(kind) + ", expected " + std::to_string(image_kind));
  }
  sections_left_ = u32();
  section_end_ = 0;  // no section entered yet
}

bool SnapshotReader::enter(std::uint32_t section_id) {
  if (!ok()) return false;
  assert(!in_section_);
  if (sections_left_ == 0) {
    fail("section " + std::to_string(section_id) +
         ": image has no sections left");
    return false;
  }
  // Section header is read against the raw remainder of the image.
  section_end_ = image_.size();
  const std::uint32_t id = raw_u32();
  const std::uint64_t length = raw_u64();
  if (!ok()) return false;
  if (id != section_id) {
    fail("section out of order: expected id " + std::to_string(section_id) +
         ", found id " + std::to_string(id));
    return false;
  }
  if (length > image_.size() - pos_ ||
      image_.size() - pos_ - static_cast<std::size_t>(length) < 4) {
    fail("section " + std::to_string(id) +
         ": payload length overruns the image");
    return false;
  }
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(image_[pos_ + length])) |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(image_[pos_ + length + 1]))
          << 8 |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(image_[pos_ + length + 2]))
          << 16 |
      static_cast<std::uint32_t>(
          static_cast<unsigned char>(image_[pos_ + length + 3]))
          << 24;
  const std::uint32_t actual_crc = snapshot_crc32(
      reinterpret_cast<const unsigned char*>(image_.data()) + pos_,
      static_cast<std::size_t>(length));
  if (stored_crc != actual_crc) {
    fail("section " + std::to_string(id) + ": CRC mismatch");
    return false;
  }
  in_section_ = true;
  section_end_ = pos_ + static_cast<std::size_t>(length);
  --sections_left_;
  return true;
}

bool SnapshotReader::leave() {
  if (!ok()) return false;
  assert(in_section_);
  if (pos_ != section_end_) {
    fail("section payload not fully consumed (" +
         std::to_string(section_end_ - pos_) + " bytes left)");
    return false;
  }
  in_section_ = false;
  pos_ += 4;  // skip the already-verified CRC
  section_end_ = 0;
  return true;
}

std::uint8_t SnapshotReader::u8() {
  if (!need(1)) return 0;
  return static_cast<std::uint8_t>(image_[pos_++]);
}

std::uint32_t SnapshotReader::u32() {
  if (!need(4)) return 0;
  return raw_u32();
}

std::uint64_t SnapshotReader::u64() {
  if (!need(8)) return 0;
  return raw_u64();
}

std::int64_t SnapshotReader::i64() { return static_cast<std::int64_t>(u64()); }

double SnapshotReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool SnapshotReader::boolean() { return u8() != 0; }

std::string SnapshotReader::str() {
  const std::uint32_t length = u32();
  if (!ok()) return {};
  if (!need(length)) return {};
  std::string out(image_.substr(pos_, length));
  pos_ += length;
  return out;
}

Status SnapshotReader::status() const {
  if (ok()) return Status::success();
  return Status::failure("snapshot decode: " + error_);
}

Status SnapshotReader::finish() {
  if (ok() && in_section_) fail("finish() inside an open section");
  if (ok() && sections_left_ != 0) {
    fail(std::to_string(sections_left_) + " declared sections never read");
  }
  if (ok() && pos_ != image_.size()) {
    fail("trailing bytes after the last section");
  }
  return status();
}

void SnapshotReader::fail(std::string message) {
  if (error_.empty()) {
    error_ = std::move(message) + " (offset " + std::to_string(pos_) + ")";
  }
}

bool SnapshotReader::need(std::size_t n) {
  if (!ok()) return false;
  if (section_end_ < pos_ || section_end_ - pos_ < n) {
    fail("truncated: need " + std::to_string(n) + " bytes");
    return false;
  }
  return true;
}

std::uint32_t SnapshotReader::raw_u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(image_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::raw_u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(image_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

// --- util codecs -----------------------------------------------------------

void put_rng(SnapshotWriter& w, const Rng::State& state) {
  for (std::uint64_t word : state.s) w.u64(word);
  w.u64(state.seed);
}

Rng::State get_rng(SnapshotReader& r) {
  Rng::State state;
  for (std::uint64_t& word : state.s) word = r.u64();
  state.seed = r.u64();
  return state;
}

void put_counters(SnapshotWriter& w, const Counters& counters) {
  const auto sorted = counters.all();
  w.u64(sorted.size());
  for (const auto& [name, value] : sorted) {
    w.str(name);
    w.i64(value);
  }
}

Counters get_counters(SnapshotReader& r) {
  Counters counters;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::string name = r.str();
    const std::int64_t value = r.i64();
    if (r.ok()) counters.bump(name, value);
  }
  return counters;
}

void put_summary(SnapshotWriter& w, const Summary::State& state) {
  w.u64(state.samples.size());
  for (double sample : state.samples) w.f64(sample);
  w.boolean(state.sorted);
  w.f64(state.mean);
  w.f64(state.m2);
  w.f64(state.sum);
  w.f64(state.min);
  w.f64(state.max);
}

Summary::State get_summary(SnapshotReader& r) {
  Summary::State state;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    state.samples.push_back(r.f64());
  }
  state.sorted = r.boolean();
  state.mean = r.f64();
  state.m2 = r.f64();
  state.sum = r.f64();
  state.min = r.f64();
  state.max = r.f64();
  return state;
}

void put_histogram(SnapshotWriter& w, const Histogram::State& state) {
  w.u64(state.boundaries.size());
  for (double b : state.boundaries) w.f64(b);
  w.u64(state.counts.size());
  for (std::uint64_t c : state.counts) w.u64(c);
  w.u64(state.total);
}

Histogram::State get_histogram(SnapshotReader& r) {
  Histogram::State state;
  const std::uint64_t boundaries = r.u64();
  for (std::uint64_t i = 0; i < boundaries && r.ok(); ++i) {
    state.boundaries.push_back(r.f64());
  }
  const std::uint64_t counts = r.u64();
  for (std::uint64_t i = 0; i < counts && r.ok(); ++i) {
    state.counts.push_back(r.u64());
  }
  state.total = r.u64();
  return state;
}

}  // namespace simba::sim
