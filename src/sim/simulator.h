// Discrete-event simulation kernel.
//
// The paper's evaluation ran for a month of wall-clock time against live
// services; this reproduction runs the same component graph on virtual
// time. The kernel is deliberately single-threaded and deterministic:
// events at equal times fire in scheduling order, and all randomness
// comes from named child streams of the simulator's seed.
//
// The kernel is allocation-light (DESIGN.md §12): events live in a
// slab pool with a free list, and EventIds pack (generation, slot) so
// cancel() is an O(1) slot check with no side index. Labels are
// `const char*` — string literals or pointers interned via
// util::StringInterner — so scheduling never copies a label.
//
// Event ordering (DESIGN.md §13) is a hierarchical timing wheel: four
// levels of 256 slots covering 2^32 ticks (~71.6 virtual minutes of
// microseconds), with a calendar-queue overflow for far-future events.
// Placement is by *absolute* tick position relative to the wheel
// cursor, so two events with the same fire tick always share one slot
// list and append order equals sequence order — the exact
// (when, sequence) FIFO tie-break of the original binary heap, proven
// equivalent by tests/scheduler_diff_test.cc against the retained
// sim::ReferenceScheduler.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/time.h"

namespace simba::sim {

using Callback = std::function<void()>;

/// Identifies a scheduled event for cancellation. Packs the pool slot
/// index (low 32 bits) and the slot's generation at scheduling time
/// (high 32 bits). Generations start at 1 and skip 0 on wrap, so the
/// id 0 is never issued — callers use 0 as a "no event" sentinel.
using EventId = std::uint64_t;

/// Shared state of one periodic task (see Simulator::every). Owned
/// jointly by the pooled event that re-arms it and by every TaskHandle
/// copy; the cancelled flag is how handles stop the chain.
struct PeriodicTask {
  Callback callback;
  Duration period{};
  bool cancelled = false;
};

/// Handle to a periodic task. Copyable; copies share the task. The
/// task runs until cancel() is called — destruction alone does NOT
/// cancel (so handles can be passed around freely); owners that must
/// not outlive their callbacks cancel in their destructors, or wrap
/// the handle in a ScopedTask which does it for them.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::shared_ptr<PeriodicTask> task)
      : task_(std::move(task)) {}
  void cancel() {
    if (task_) task_->cancelled = true;
  }
  bool active() const { return task_ && !task_->cancelled; }

 private:
  std::shared_ptr<PeriodicTask> task_;
};

/// RAII owner of a periodic task: cancels in its destructor. Move-only,
/// so exactly one owner exists. Use whenever the callback captures
/// state whose lifetime ends with the owner — e.g. fleet shard worlds,
/// whose samplers must not fire after the shard is torn down.
class ScopedTask {
 public:
  ScopedTask() = default;
  explicit ScopedTask(TaskHandle handle) : handle_(std::move(handle)) {}
  ScopedTask(ScopedTask&& other) noexcept
      : handle_(std::exchange(other.handle_, TaskHandle{})) {}
  ScopedTask& operator=(ScopedTask&& other) noexcept {
    if (this != &other) {
      handle_.cancel();
      handle_ = std::exchange(other.handle_, TaskHandle{});
    }
    return *this;
  }
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;
  ~ScopedTask() { handle_.cancel(); }

  void cancel() { handle_.cancel(); }
  bool active() const { return handle_.active(); }

 private:
  TaskHandle handle_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Which event-ordering structure this kernel uses; recorded in the
  /// BENCH_*.json baselines so heap-era and wheel-era runs are
  /// distinguishable in the perf trajectory.
  static constexpr const char* kScheduler = "wheel";

  TimePoint now() const { return now_; }
  std::uint64_t seed() const { return seed_; }

  /// Independent deterministic stream for a named component.
  Rng make_rng(std::string_view name) const { return root_rng_.child(name); }

  /// Schedules `cb` at absolute time `t` (clamped to now). Returns an
  /// id usable with cancel(). `label` must outlive the event — pass a
  /// string literal, or intern runtime-built labels through
  /// util::StringInterner; the kernel stores only the pointer.
  EventId at(TimePoint t, Callback cb, const char* label = "");

  /// Schedules `cb` after `delay` (clamped to zero).
  EventId after(Duration delay, Callback cb, const char* label = "");

  /// Cancels a pending event; no-op if already fired or cancelled.
  /// O(1): decodes the slot from the id and checks the generation, so
  /// a stale id (slot since recycled) can never cancel the new
  /// occupant.
  void cancel(EventId id);

  /// Schedules `cb` every `period`, first firing after `period` (or
  /// immediately at now+0 if `immediate`). The task stops when the
  /// returned handle is cancelled. The kernel re-arms the same pool
  /// slot after each fire, so a steady-state periodic task allocates
  /// nothing per tick.
  TaskHandle every(Duration period, Callback cb, const char* label = "",
                   bool immediate = false);

  /// Runs until the event queue is empty or stop() is called.
  void run();
  /// Runs until virtual time would exceed `t`; leaves later events queued
  /// and sets now to exactly `t`.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Requests that the run loop return after the current event.
  void stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return processed_; }
  bool queue_empty() const;

  /// Next tie-break sequence number; carried across crash-restarts so
  /// a resumed run's FIFO ordering stays monotonic with its past.
  std::uint64_t sequence_counter() const { return next_sequence_; }

  /// Crash-restart support (sim/snapshot.h): re-aligns a *fresh* kernel
  /// (nothing scheduled, nothing fired yet — asserted) to a
  /// checkpointed clock. Pending events are deliberately NOT carried: a
  /// checkpoint models a process image that died, so components re-arm
  /// their own timers when they start, and the pessimistic log replays
  /// whatever the crash dropped — the paper's own restart path.
  void restore_clock(TimePoint now, std::uint64_t events_processed,
                     std::uint64_t sequence_counter);

  /// Pool introspection for tests and bench_kernel: total slots ever
  /// created, and slots currently on the free list.
  std::size_t pool_slots() const { return pool_.size(); }
  std::size_t pool_free() const { return free_.size(); }

 private:
  friend class KernelTestPeer;  // tests/sim_test.cc: generation-wrap seams

  /// One pool slot. A slot is `pending` from scheduling until its wheel
  /// entry is consumed (even while cancelled — the entry still
  /// references it); release bumps the generation so stale EventIds
  /// miss.
  struct Event {
    Callback callback;                       // one-shot payload
    std::shared_ptr<PeriodicTask> periodic;  // periodic payload, else null
    TimePoint when{};
    const char* label = "";
    std::uint32_t generation = 1;
    bool cancelled = false;
    bool pending = false;
  };
  /// Wheel entry: plain value type, no indirection. At most one live
  /// entry per pending slot (a periodic slot re-arms only after its
  /// previous entry was consumed). Within a slot list, entries are
  /// always in ascending `sequence` order — the FIFO tie-break.
  struct QueueEntry {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal times
    std::uint32_t slot;
  };

  // --- Timing wheel geometry ------------------------------------------------
  // Level L slot s holds entries whose tick matches the wheel cursor on
  // all bit-groups above L and differs first in group L, with
  // s == (tick >> 8L) & 255. Level 0 therefore resolves exact ticks
  // (one tick per slot within the current 256-tick block); ticks whose
  // top 32 bits exceed the cursor's live in the overflow calendar.
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;            // 256
  static constexpr int kLevels = 4;                        // 2^32 tick span
  static constexpr int kOverflowShift = kSlotBits * kLevels;

  using Tick = std::int64_t;  // microseconds, TimePoint::time_since_epoch

  /// 256-slot occupancy bitmap: O(1) next-occupied-slot via ctz.
  struct Bitmap {
    std::array<std::uint64_t, kSlots / 64> words{};
    void set(int i) { words[i >> 6] |= 1ull << (i & 63); }
    void clear(int i) { words[i >> 6] &= ~(1ull << (i & 63)); }
    /// Smallest set index strictly greater than `i` (pass -1 to scan
    /// from 0), or kSlots when none.
    int next_above(int i) const;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static Tick tick_of(TimePoint t) { return t.time_since_epoch().count(); }

  std::uint32_t allocate_slot();
  void release_slot(std::uint32_t slot);

  /// Files `entry` into the wheel level/slot (or overflow bucket)
  /// determined by its tick relative to the wheel cursor. Requires
  /// entry.when >= cursor (guaranteed: `at` clamps to now >= cursor).
  void place(const QueueEntry& entry);

  /// Finds the earliest live (non-cancelled) entry without moving the
  /// wheel cursor, releasing kernel-cancelled entries it scans past —
  /// the wheel's analog of the heap's drop_cancelled_head(). Returns
  /// the entry's tick, or nullopt when nothing remains.
  std::optional<Tick> find_next();

  /// Advances the wheel cursor to `target` (the tick find_next
  /// returned): sweeps stale cancelled leftovers from blocks being
  /// left behind, cascades the higher-level slot (or demotes the
  /// overflow bucket) that becomes current, then consumes and runs the
  /// first live entry of the level-0 slot.
  void fire_at(Tick target);
  void advance_cursor(Tick target);
  /// Releases every entry in level `level` slots with index in
  /// (`from`, `to`) exclusive; all must be cancelled (they are strictly
  /// earlier than the next live event).
  void sweep_level(int level, int from, int to);
  /// Empties one higher-level slot, re-placing live entries relative to
  /// the (already advanced) cursor and releasing cancelled ones.
  void cascade(int level, int index);
  /// Consumes one entry (fired or cancelled-dropped) for bookkeeping.
  void consume_entry() { --entry_count_; }

  TimePoint now_{};
  std::uint64_t seed_;
  Rng root_rng_;

  std::vector<Event> pool_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;

  // --- Wheel state ----------------------------------------------------------
  /// Tick of the last fired event; placement is relative to this.
  /// Invariant whenever user code runs: cursor_ <= now_, and every
  /// queued entry has tick >= cursor_.
  Tick cursor_ = 0;
  std::array<std::array<std::vector<QueueEntry>, kSlots>, kLevels> slots_;
  std::array<Bitmap, kLevels> occupied_;
  /// Consumed prefix per level-0 slot: entries [0, head0_[s]) of
  /// slots_[0][s] have fired or been dropped. Index-based so callbacks
  /// can append same-tick (zero-delay) events to the slot mid-drain.
  std::array<std::uint32_t, kSlots> head0_{};
  /// Calendar-queue overflow: 2^32-tick buckets keyed by tick >> 32,
  /// demoted into the wheel when the cursor enters their block.
  std::map<Tick, std::vector<QueueEntry>> overflow_;
  /// Entries currently filed (live + cancelled-but-unreleased), for
  /// queue_empty() diagnostics.
  std::size_t entry_count_ = 0;
};

}  // namespace simba::sim
