// Discrete-event simulation kernel.
//
// The paper's evaluation ran for a month of wall-clock time against live
// services; this reproduction runs the same component graph on virtual
// time. The kernel is deliberately single-threaded and deterministic:
// events at equal times fire in scheduling order, and all randomness
// comes from named child streams of the simulator's seed.
//
// The kernel is allocation-light (DESIGN.md §12): events live in a
// slab pool with a free list, the binary heap orders plain 24-byte
// entries, and EventIds pack (generation, slot) so cancel() is an O(1)
// slot check with no side index. Labels are `const char*` — string
// literals or pointers interned via util::StringInterner — so
// scheduling never copies a label.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <utility>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/time.h"

namespace simba::sim {

using Callback = std::function<void()>;

/// Identifies a scheduled event for cancellation. Packs the pool slot
/// index (low 32 bits) and the slot's generation at scheduling time
/// (high 32 bits). Generations start at 1 and skip 0 on wrap, so the
/// id 0 is never issued — callers use 0 as a "no event" sentinel.
using EventId = std::uint64_t;

/// Shared state of one periodic task (see Simulator::every). Owned
/// jointly by the pooled event that re-arms it and by every TaskHandle
/// copy; the cancelled flag is how handles stop the chain.
struct PeriodicTask {
  Callback callback;
  Duration period{};
  bool cancelled = false;
};

/// Handle to a periodic task. Copyable; copies share the task. The
/// task runs until cancel() is called — destruction alone does NOT
/// cancel (so handles can be passed around freely); owners that must
/// not outlive their callbacks cancel in their destructors, or wrap
/// the handle in a ScopedTask which does it for them.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::shared_ptr<PeriodicTask> task)
      : task_(std::move(task)) {}
  void cancel() {
    if (task_) task_->cancelled = true;
  }
  bool active() const { return task_ && !task_->cancelled; }

 private:
  std::shared_ptr<PeriodicTask> task_;
};

/// RAII owner of a periodic task: cancels in its destructor. Move-only,
/// so exactly one owner exists. Use whenever the callback captures
/// state whose lifetime ends with the owner — e.g. fleet shard worlds,
/// whose samplers must not fire after the shard is torn down.
class ScopedTask {
 public:
  ScopedTask() = default;
  explicit ScopedTask(TaskHandle handle) : handle_(std::move(handle)) {}
  ScopedTask(ScopedTask&& other) noexcept
      : handle_(std::exchange(other.handle_, TaskHandle{})) {}
  ScopedTask& operator=(ScopedTask&& other) noexcept {
    if (this != &other) {
      handle_.cancel();
      handle_ = std::exchange(other.handle_, TaskHandle{});
    }
    return *this;
  }
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;
  ~ScopedTask() { handle_.cancel(); }

  void cancel() { handle_.cancel(); }
  bool active() const { return handle_.active(); }

 private:
  TaskHandle handle_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  std::uint64_t seed() const { return seed_; }

  /// Independent deterministic stream for a named component.
  Rng make_rng(std::string_view name) const { return root_rng_.child(name); }

  /// Schedules `cb` at absolute time `t` (clamped to now). Returns an
  /// id usable with cancel(). `label` must outlive the event — pass a
  /// string literal, or intern runtime-built labels through
  /// util::StringInterner; the kernel stores only the pointer.
  EventId at(TimePoint t, Callback cb, const char* label = "");

  /// Schedules `cb` after `delay` (clamped to zero).
  EventId after(Duration delay, Callback cb, const char* label = "");

  /// Cancels a pending event; no-op if already fired or cancelled.
  /// O(1): decodes the slot from the id and checks the generation, so
  /// a stale id (slot since recycled) can never cancel the new
  /// occupant.
  void cancel(EventId id);

  /// Schedules `cb` every `period`, first firing after `period` (or
  /// immediately at now+0 if `immediate`). The task stops when the
  /// returned handle is cancelled. The kernel re-arms the same pool
  /// slot after each fire, so a steady-state periodic task allocates
  /// nothing per tick.
  TaskHandle every(Duration period, Callback cb, const char* label = "",
                   bool immediate = false);

  /// Runs until the event queue is empty or stop() is called.
  void run();
  /// Runs until virtual time would exceed `t`; leaves later events queued
  /// and sets now to exactly `t`.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Requests that the run loop return after the current event.
  void stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return processed_; }
  bool queue_empty() const;

  /// Pool introspection for tests and bench_kernel: total slots ever
  /// created, and slots currently on the free list.
  std::size_t pool_slots() const { return pool_.size(); }
  std::size_t pool_free() const { return free_.size(); }

 private:
  /// One pool slot. A slot is `pending` from scheduling until its heap
  /// entry pops (even while cancelled — the entry still references
  /// it); release bumps the generation so stale EventIds miss.
  struct Event {
    Callback callback;                       // one-shot payload
    std::shared_ptr<PeriodicTask> periodic;  // periodic payload, else null
    TimePoint when{};
    const char* label = "";
    std::uint32_t generation = 1;
    bool cancelled = false;
    bool pending = false;
  };
  /// Heap entry: plain value type, no indirection. At most one live
  /// entry per pending slot (a periodic slot re-pushes only after its
  /// previous entry popped).
  struct QueueEntry {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal times
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  std::uint32_t allocate_slot();
  void release_slot(std::uint32_t slot);

  /// Pops and runs one event; returns false when nothing remains.
  bool step();
  void drop_cancelled_head();

  TimePoint now_{};
  std::uint64_t seed_;
  Rng root_rng_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Event> pool_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace simba::sim
