// Discrete-event simulation kernel.
//
// The paper's evaluation ran for a month of wall-clock time against live
// services; this reproduction runs the same component graph on virtual
// time. The kernel is deliberately single-threaded and deterministic:
// events at equal times fire in scheduling order, and all randomness
// comes from named child streams of the simulator's seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/time.h"

namespace simba::sim {

using Callback = std::function<void()>;

/// Identifies a scheduled event for cancellation. 0 is never issued.
using EventId = std::uint64_t;

/// Handle to a periodic task. Copyable; copies share the task. The
/// task runs until cancel() is called — destruction alone does NOT
/// cancel (so handles can be passed around freely); owners that must
/// not outlive their callbacks cancel in their destructors, or wrap
/// the handle in a ScopedTask which does it for them.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool active() const { return cancelled_ && !*cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

/// RAII owner of a periodic task: cancels in its destructor. Move-only,
/// so exactly one owner exists. Use whenever the callback captures
/// state whose lifetime ends with the owner — e.g. fleet shard worlds,
/// whose samplers must not fire after the shard is torn down.
class ScopedTask {
 public:
  ScopedTask() = default;
  explicit ScopedTask(TaskHandle handle) : handle_(std::move(handle)) {}
  ScopedTask(ScopedTask&& other) noexcept
      : handle_(std::exchange(other.handle_, TaskHandle{})) {}
  ScopedTask& operator=(ScopedTask&& other) noexcept {
    if (this != &other) {
      handle_.cancel();
      handle_ = std::exchange(other.handle_, TaskHandle{});
    }
    return *this;
  }
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;
  ~ScopedTask() { handle_.cancel(); }

  void cancel() { handle_.cancel(); }
  bool active() const { return handle_.active(); }

 private:
  TaskHandle handle_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  std::uint64_t seed() const { return seed_; }

  /// Independent deterministic stream for a named component.
  Rng make_rng(std::string_view name) const { return root_rng_.child(name); }

  /// Schedules `cb` at absolute time `t` (clamped to now). Returns an
  /// id usable with cancel(). `label` shows up in trace logging.
  EventId at(TimePoint t, Callback cb, std::string label = {});

  /// Schedules `cb` after `delay` (clamped to zero).
  EventId after(Duration delay, Callback cb, std::string label = {});

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Schedules `cb` every `period`, first firing after `period` (or
  /// immediately at now+0 if `immediate`). The task stops when the
  /// returned handle is cancelled.
  TaskHandle every(Duration period, Callback cb, std::string label = {},
                   bool immediate = false);

  /// Runs until the event queue is empty or stop() is called.
  void run();
  /// Runs until virtual time would exceed `t`; leaves later events queued
  /// and sets now to exactly `t`.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Requests that the run loop return after the current event.
  void stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return processed_; }
  bool queue_empty() const;

 private:
  struct Event {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal times
    EventId id;
    Callback callback;
    std::string label;
    bool cancelled = false;
  };
  struct Later {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->sequence > b->sequence;
    }
  };

  /// Pops and runs one event; returns false when nothing remains.
  bool step();
  void drop_cancelled_head();

  TimePoint now_{};
  std::uint64_t seed_;
  Rng root_rng_;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>,
                      Later>
      queue_;
  // simba-lint: ordered — lookup/erase by id only, never iterated.
  std::unordered_map<EventId, std::weak_ptr<Event>> index_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace simba::sim
