// Deterministic chaos injection (experiment E10).
//
// The paper's dependability claim is an end-to-end conservation
// property: pessimistic logging, the MDC watchdog, and delivery-mode
// fallback together mean no subscribed alert is ever silently lost,
// even while clients hang, links drop, and machines reboot. A
// ChaosScenario states an adversarial fault mix declaratively (fault
// kinds x rates x time windows); a ChaosPlan turns one scenario plus
// one seed into concrete per-component fault schedules, so a chaos run
// is exactly as reproducible as a fault-free one — same seed, same
// faults, same trace — and the fleet runner can sweep scenario x seed
// matrices whose merged reports are bit-identical per thread count.
//
// The plan feeds three layers:
//   * net::MessageBus    — duplicate / reorder / delay-spike / late-loss
//                          message faults (NetChaosConfig);
//   * core::AlertLog     — torn appends on power loss, the window
//                          between append and ack that pessimistic
//                          logging exists to protect (LogChaosConfig);
//   * core::MabHost      — scripted process kills, hangs, machine
//                          reboots, and power outages (HostChaosConfig).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "util/rng.h"
#include "util/time.h"

namespace simba::sim {

/// One fault axis a scenario can turn on.
enum class ChaosKind {
  kNetDuplicate,   // rate: per-message duplication probability
  kNetReorder,     // rate: probability; magnitude: extra delay spread
  kNetDelaySpike,  // rate: probability; magnitude: log-normal median
  kNetLateLoss,    // rate: probability the message dies at arrival time
  kLogTornAppend,  // rate: probability an unsynced append is torn on
                   // power loss (only bites when power faults exist)
  kMabKill,        // rate: abrupt process deaths per day
  kMabHang,        // rate: process hangs per day
  kMachineReboot,  // rate: forced machine reboots per day
  kPowerOutage,    // rate: outages per day; magnitude: outage median
};

const char* to_string(ChaosKind kind);

/// One clause of a scenario: a kind, an intensity, and the window it is
/// active in. window_end == kTimeZero means "until the horizon".
struct ChaosClause {
  ChaosKind kind;
  double rate = 0.0;
  Duration magnitude{};  // kind-specific size; zero picks a default
  TimePoint window_start = kTimeZero;
  TimePoint window_end = kTimeZero;
};

/// A named, declarative fault mix. Scenarios carry no randomness —
/// the same scenario under different seeds yields different concrete
/// schedules of the same statistical shape.
struct ChaosScenario {
  std::string name = "baseline";
  std::vector<ChaosClause> clauses;

  bool empty() const { return clauses.empty(); }
  ChaosScenario& add(ChaosClause clause);

  /// Preset library used by the chaos matrix (tests/chaos_test.cc) and
  /// bench_chaos_sweep. baseline() is the fault-free control.
  static ChaosScenario baseline();
  static ChaosScenario flaky_network();
  /// Duplication only, at a heavy rate — isolates duplicate-detection
  /// (every MAB duplicate drop must trace back to a bus duplicate).
  static ChaosScenario dup_storm();
  static ChaosScenario crashy_daemon();
  /// MAB kills/hangs at storm-grade frequency — pairs with the storm
  /// workload to exercise shed/coalesce accounting across recovery
  /// replays.
  static ChaosScenario storm_crash();
  static ChaosScenario power_storms();
  static ChaosScenario everything();
  static std::vector<ChaosScenario> presets();
  /// Preset by name, or baseline() for an unknown name.
  static ChaosScenario preset(const std::string& name);

  std::string describe() const;
};

/// One windowed per-message fault probability.
struct NetChaosAxis {
  double probability = 0.0;
  Duration magnitude{};
  double sigma = 1.0;  // tail shape for the delay-spike log-normal
  TimePoint window_start = kTimeZero;
  TimePoint window_end = kTimeZero;

  bool active_at(TimePoint t) const {
    return probability > 0.0 && t >= window_start && t < window_end;
  }
};

/// Message-level faults for net::MessageBus (which owns the Rng that
/// actually rolls the dice, so decisions stay inside the world's own
/// deterministic stream).
struct NetChaosConfig {
  NetChaosAxis duplicate;
  NetChaosAxis reorder;
  NetChaosAxis delay_spike;
  NetChaosAxis late_loss;

  bool any() const {
    return duplicate.probability > 0.0 || reorder.probability > 0.0 ||
           delay_spike.probability > 0.0 || late_loss.probability > 0.0;
  }
};

/// Crash-window model for core::AlertLog.
struct LogChaosConfig {
  /// Probability, per append still inside its synchronous-write window
  /// at the instant power dies, that the append is torn from the log.
  double torn_append_probability = 0.0;
};

/// Scripted process/machine fault schedule for core::MabHost. All
/// times are precomputed from the plan seed, so they are independent
/// of event interleaving.
struct HostChaosConfig {
  std::vector<TimePoint> mab_kills;
  std::vector<TimePoint> mab_hangs;
  std::vector<TimePoint> reboots;
  OutagePlan power_plan;

  bool any() const {
    return !mab_kills.empty() || !mab_hangs.empty() || !reboots.empty() ||
           !power_plan.outages().empty();
  }
};

/// The concrete, seed-derived realization of a scenario over one
/// world's horizon. Construction consumes no randomness from anything
/// but its own child streams of `seed`, so two worlds with the same
/// (seed, scenario, horizon) get identical fault schedules regardless
/// of what else they simulate.
class ChaosPlan {
 public:
  ChaosPlan(std::uint64_t seed, const ChaosScenario& scenario,
            Duration horizon);

  const ChaosScenario& scenario() const { return scenario_; }
  Duration horizon() const { return horizon_; }
  const NetChaosConfig& net() const { return net_; }
  const LogChaosConfig& log() const { return log_; }
  const HostChaosConfig& host() const { return host_; }

  std::string describe() const;

 private:
  ChaosScenario scenario_;
  Duration horizon_;
  NetChaosConfig net_;
  LogChaosConfig log_;
  HostChaosConfig host_;
};

}  // namespace simba::sim
