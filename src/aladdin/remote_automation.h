// Email-based remote home automation (Section 2.3: "In addition to
// supporting secure, email-based remote home automation, Aladdin
// generates alerts when any critical sensor fires...").
//
// The home gateway polls its mailbox for command messages of the form
//
//     Subject: ALADDIN <secret> SET <device> ON|OFF
//
// from an allow-listed sender, actuates the device by transmitting the
// command frame on the powerline (where command modules listen), and
// emails a confirmation back. Security per the era: sender allow-list
// plus a shared secret in the subject line.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "aladdin/home_network.h"
#include "email/email_server.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace simba::aladdin {

class RemoteAutomation {
 public:
  RemoteAutomation(sim::Simulator& sim, email::EmailServer& mail,
                   HomeNetwork& network, std::string gateway_mailbox,
                   std::string secret);
  ~RemoteAutomation() { poll_task_.cancel(); }

  /// Senders allowed to issue commands (the homeowner's addresses).
  void authorize(const std::string& sender_address);

  /// Devices that may be actuated; commands for others are rejected.
  void register_device(const std::string& device_id);

  /// Observes every actuation, for scenarios/tests.
  void set_on_actuate(std::function<void(const std::string& device, bool on)>
                          callback) {
    on_actuate_ = std::move(callback);
  }

  void start(Duration poll_interval = seconds(30));

  const Counters& stats() const { return stats_; }

 private:
  void poll();
  void handle(const email::Email& mail);
  void confirm(const std::string& to, const std::string& body);

  sim::Simulator& sim_;
  email::EmailServer& mail_;
  HomeNetwork& network_;
  std::string mailbox_;
  std::string secret_;
  std::set<std::string> authorized_;
  std::set<std::string> devices_;
  std::size_t cursor_ = 0;
  std::function<void(const std::string&, bool)> on_actuate_;
  sim::TaskHandle poll_task_;
  Counters stats_;
};

}  // namespace simba::aladdin
