// Aladdin home networking substrate (Section 2.3 and the Section 5
// end-to-end scenario).
//
// "Aladdin integrates diverse devices and sensors attached to
// heterogeneous in-home networks including powerline, phoneline, RF
// (Radio Frequency) and IR (InfraRed), and connects them to the
// Internet through a home gateway machine."
//
// Media latencies matter: the paper's disarm scenario takes 11 seconds
// end-to-end, dominated by X10-style powerline signaling and the
// polling monitor, not by the Internet leg.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::aladdin {

enum class Medium { kPowerline, kPhoneline, kRf, kIr };

const char* to_string(Medium medium);

struct MediumModel {
  Duration base_latency;
  Duration jitter;
  double loss_probability;
};

/// A frame on a home-network medium.
struct HomeSignal {
  std::string source_id;  // device that transmitted
  std::string payload;    // e.g. "DISARM", "ON", "OFF", "HEARTBEAT"
  Medium medium = Medium::kRf;
  TimePoint transmitted_at{};
};

/// The house's four network segments. Listeners receive frames after a
/// per-medium latency; lossy media drop some frames.
class HomeNetwork {
 public:
  explicit HomeNetwork(sim::Simulator& sim);

  /// Defaults chosen to reproduce the paper's timing shape:
  /// powerline ~ X10 signaling (slow, ~2.5 s/frame), phoneline fast
  /// Ethernet, RF sub-second, IR line-of-sight fast but lossy.
  void set_model(Medium medium, MediumModel model);
  const MediumModel& model(Medium medium) const;

  using ListenerId = std::uint64_t;
  ListenerId listen(Medium medium,
                    std::function<void(const HomeSignal&)> callback);
  void unlisten(ListenerId id);

  /// Transmits a frame; delivery to every listener on that medium is
  /// scheduled independently (shared-medium broadcast).
  void transmit(HomeSignal signal);

  const Counters& stats() const { return stats_; }

 private:
  struct Listener {
    ListenerId id;
    Medium medium;
    std::function<void(const HomeSignal&)> callback;
  };

  sim::Simulator& sim_;
  Rng rng_;
  std::map<Medium, MediumModel> models_;
  std::vector<Listener> listeners_;
  ListenerId next_listener_ = 1;
  Counters stats_;
};

}  // namespace simba::aladdin
