#include "aladdin/monitor.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::aladdin {

PowerlineMonitor::PowerlineMonitor(sim::Simulator& sim, HomeNetwork& network,
                                   sss::SssServer& local_store,
                                   Duration poll_interval)
    : sim_(sim), network_(network), store_(local_store) {
  store_.define_type("sensor");
  store_.define_type("device");
  listener_ = network_.listen(Medium::kPowerline,
                              [this](const HomeSignal& signal) {
                                buffer_.push_back(signal);
                              });
  poll_task_ = sim_.every(poll_interval, [this] { poll(); }, "plmon.poll");
}

PowerlineMonitor::~PowerlineMonitor() {
  network_.unlisten(listener_);
  poll_task_.cancel();
}

void PowerlineMonitor::register_device(const std::string& id,
                                       DeviceConfig config) {
  store_.define_type(config.sss_type);
  devices_[id] = std::move(config);
}

void PowerlineMonitor::poll() {
  if (buffer_.empty()) return;
  auto pending = std::move(buffer_);
  buffer_.clear();
  for (const auto& signal : pending) apply(signal);
}

void PowerlineMonitor::apply(const HomeSignal& signal) {
  const auto it = devices_.find(signal.source_id);
  if (it == devices_.end()) {
    stats_.bump("frames.unknown_device");
    SIMBA_LOG_DEBUG("plmon",
                    "frame from unregistered device " + signal.source_id);
    return;
  }
  const DeviceConfig& config = it->second;
  const std::string name = variable_name(signal.source_id);
  stats_.bump("frames.applied");
  if (!store_.read(name).ok()) {
    store_.create(config.sss_type, name, signal.payload,
                  config.refresh_period, config.max_missed_refreshes);
    return;
  }
  if (signal.payload == "HEARTBEAT") {
    store_.refresh(name);
  } else {
    store_.write(name, signal.payload);
  }
}

HomeGatewayServer::HomeGatewayServer(sim::Simulator& sim,
                                     sss::SssServer& gateway_store)
    : sim_(sim), store_(gateway_store) {
  store_.define_type("sensor");
  subscription_ = store_.subscribe_type(
      "sensor", [this](const sss::Event& event) { on_event(event); });
}

HomeGatewayServer::~HomeGatewayServer() { store_.unsubscribe(subscription_); }

void HomeGatewayServer::declare_critical(const std::string& device_id,
                                         const std::string& friendly_name) {
  critical_["device." + device_id] = friendly_name;
}

void HomeGatewayServer::on_event(const sss::Event& event) {
  const auto it = critical_.find(event.variable.name);
  if (it == critical_.end()) {
    stats_.bump("events.non_critical");
    return;
  }
  // Refreshes are keep-alives, not state changes.
  if (event.kind == sss::EventKind::kRefreshed) return;

  core::Alert alert;
  alert.source = "aladdin";
  alert.created_at = sim_.now();
  alert.id = strformat("aladdin-%llu",
                       static_cast<unsigned long long>(next_alert_++));
  const std::string& friendly = it->second;
  switch (event.kind) {
    case sss::EventKind::kCreated:
    case sss::EventKind::kUpdated:
      // "Basement Water Sensor ON" style. The payload is the state.
      alert.native_category = "Sensor " + event.variable.value;
      alert.subject = friendly + " Sensor " + event.variable.value;
      alert.body = "Aladdin: " + friendly + " sensor reported " +
                   event.variable.value + " at " + format_time(event.at);
      alert.high_importance = event.variable.value == "ON";
      break;
    case sss::EventKind::kTimedOut:
      // "Garage Door Sensor Broken" — missing supervision refreshes.
      alert.native_category = "Sensor Broken";
      alert.subject = friendly + " Sensor Broken";
      alert.body = "Aladdin: no supervision heartbeat from " + friendly +
                   " sensor; battery may be dead.";
      alert.high_importance = true;
      break;
    case sss::EventKind::kRefreshed:
    case sss::EventKind::kDeleted:
      return;
  }
  alert.attributes["device"] = event.variable.name;
  alert.attributes["state"] = event.variable.value;
  stats_.bump("alerts_generated");
  log_info("aladdin.gateway", "alert: " + alert.subject);
  if (sink_) sink_(alert);
}

}  // namespace simba::aladdin
