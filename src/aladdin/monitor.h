// Powerline monitor and Aladdin home gateway server.
//
// Section 5 scenario: "A powerline monitor process running on a PC
// picked up the signal and converted it into an update on the local SSS
// server, which replicated the update to other PCs through a multicast
// over the phoneline Ethernet. The SSS server running on the home
// gateway machine fired an event to the Aladdin home server, which then
// sent out an IM alert."
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "aladdin/home_network.h"
#include "core/alert.h"
#include "sim/simulator.h"
#include "sss/sss.h"

namespace simba::aladdin {

/// Converts powerline frames into writes on the local SSS server.
/// Frames are buffered and applied at poll ticks (the monitor is a
/// polling process; its interval is part of the 11-second budget).
class PowerlineMonitor {
 public:
  struct DeviceConfig {
    std::string sss_type = "sensor";
    /// SSS soft-state parameters for this device's variable. A zero
    /// refresh period disables timeout tracking (mains-powered device).
    Duration refresh_period{};
    int max_missed_refreshes = 2;
  };

  PowerlineMonitor(sim::Simulator& sim, HomeNetwork& network,
                   sss::SssServer& local_store,
                   Duration poll_interval = seconds(1.5));
  ~PowerlineMonitor();

  /// Devices must be registered so the monitor knows the soft-state
  /// parameters; frames from unknown devices are counted and dropped.
  void register_device(const std::string& id, DeviceConfig config);

  const Counters& stats() const { return stats_; }

 private:
  void poll();
  void apply(const HomeSignal& signal);
  std::string variable_name(const std::string& device_id) const {
    return "device." + device_id;
  }

  sim::Simulator& sim_;
  HomeNetwork& network_;
  sss::SssServer& store_;
  // Stays ordered (poll() walks devices in id order); std::less<> lets
  // string_view probes avoid a key allocation.
  std::map<std::string, DeviceConfig, std::less<>> devices_;
  std::vector<HomeSignal> buffer_;
  HomeNetwork::ListenerId listener_;
  sim::TaskHandle poll_task_;
  Counters stats_;
};

/// The Aladdin home server on the gateway machine: watches the gateway
/// SSS for sensor events and turns critical ones into alerts.
///
/// "Aladdin does not support content-based event subscriptions [so] all
/// state changes of any sensor declared as critical will trigger
/// alerts" — the filtering happens later, in MyAlertBuddy (Section 4.2,
/// alert filtering).
class HomeGatewayServer {
 public:
  HomeGatewayServer(sim::Simulator& sim, sss::SssServer& gateway_store);
  ~HomeGatewayServer();

  /// Marks a device critical and gives it a friendly name for the
  /// alert text ("Basement Water" -> "Basement Water Sensor ON").
  void declare_critical(const std::string& device_id,
                        const std::string& friendly_name);

  void set_alert_sink(core::AlertSink sink) { sink_ = std::move(sink); }

  const Counters& stats() const { return stats_; }

 private:
  void on_event(const sss::Event& event);

  sim::Simulator& sim_;
  sss::SssServer& store_;
  std::map<std::string, std::string> critical_;  // variable name -> friendly
  sss::SubscriptionId subscription_ = 0;
  core::AlertSink sink_;
  std::uint64_t next_alert_ = 1;
  Counters stats_;
};

}  // namespace simba::aladdin
