#include "aladdin/home_network.h"

#include "util/log.h"

namespace simba::aladdin {

const char* to_string(Medium medium) {
  switch (medium) {
    case Medium::kPowerline: return "powerline";
    case Medium::kPhoneline: return "phoneline";
    case Medium::kRf: return "rf";
    case Medium::kIr: return "ir";
  }
  return "?";
}

HomeNetwork::HomeNetwork(sim::Simulator& sim)
    : sim_(sim), rng_(sim.make_rng("aladdin.network")) {
  // X10-style powerline: one frame takes seconds; occasionally mangled
  // by appliance noise.
  models_[Medium::kPowerline] = {seconds(2.2), seconds(0.8), 0.02};
  // Phoneline Ethernet (HomePNA): fast and reliable.
  models_[Medium::kPhoneline] = {millis(4), millis(4), 0.001};
  // RF (keyfob remotes, sensor radios): fast, some collisions.
  models_[Medium::kRf] = {millis(150), millis(150), 0.01};
  // IR: near-instant but line-of-sight, lossiest.
  models_[Medium::kIr] = {millis(40), millis(20), 0.05};
}

void HomeNetwork::set_model(Medium medium, MediumModel model) {
  models_[medium] = model;
}

const MediumModel& HomeNetwork::model(Medium medium) const {
  return models_.at(medium);
}

HomeNetwork::ListenerId HomeNetwork::listen(
    Medium medium, std::function<void(const HomeSignal&)> callback) {
  listeners_.push_back(Listener{next_listener_, medium, std::move(callback)});
  return next_listener_++;
}

void HomeNetwork::unlisten(ListenerId id) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->id == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void HomeNetwork::transmit(HomeSignal signal) {
  signal.transmitted_at = sim_.now();
  const MediumModel& model = models_.at(signal.medium);
  stats_.bump(std::string("tx.") + to_string(signal.medium));
  for (const auto& listener : listeners_) {
    if (listener.medium != signal.medium) continue;
    if (rng_.chance(model.loss_probability)) {
      stats_.bump(std::string("lost.") + to_string(signal.medium));
      continue;
    }
    const Duration latency =
        model.base_latency +
        rng_.uniform_duration(Duration::zero(), model.jitter);
    const ListenerId id = listener.id;
    sim_.after(
        latency,
        [this, id, signal] {
          // The listener may have unsubscribed while the frame was in
          // flight; look it up again.
          for (const auto& l : listeners_) {
            if (l.id == id) {
              l.callback(signal);
              return;
            }
          }
        },
        "aladdin.deliver");
  }
}

}  // namespace simba::aladdin
