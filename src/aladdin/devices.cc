#include "aladdin/devices.h"

namespace simba::aladdin {

Sensor::Sensor(sim::Simulator& sim, HomeNetwork& network, std::string id,
               Medium medium)
    : sim_(sim), network_(network), id_(std::move(id)), medium_(medium) {}

void Sensor::set_state(bool on) {
  on_ = on;
  transmit(on ? "ON" : "OFF");
}

void Sensor::start_heartbeat(Duration period) {
  stop_heartbeat();
  heartbeat_task_ = sim_.every(
      period, [this] { transmit("HEARTBEAT"); },
      (heartbeat_label_ = "sensor." + id_ + ".hb").c_str());
}

void Sensor::stop_heartbeat() { heartbeat_task_.cancel(); }

void Sensor::set_battery_dead(bool dead) { battery_dead_ = dead; }

void Sensor::transmit(const std::string& payload) {
  if (battery_dead_) return;
  HomeSignal signal;
  signal.source_id = id_;
  signal.payload = payload;
  signal.medium = medium_;
  network_.transmit(std::move(signal));
}

RemoteControl::RemoteControl(sim::Simulator& sim, HomeNetwork& network,
                             std::string id)
    : sim_(sim), network_(network), id_(std::move(id)) {}

void RemoteControl::press(const std::string& button) {
  HomeSignal signal;
  signal.source_id = id_;
  signal.payload = button;
  signal.medium = Medium::kRf;
  network_.transmit(std::move(signal));
}

Transceiver::Transceiver(sim::Simulator& sim, HomeNetwork& network,
                         Medium from, Medium to, Duration conversion_delay)
    : sim_(sim),
      network_(network),
      to_(to),
      conversion_delay_(conversion_delay) {
  listener_ = network_.listen(from, [this](const HomeSignal& signal) {
    sim_.after(
        conversion_delay_,
        [this, signal] {
          HomeSignal converted = signal;
          converted.medium = to_;
          network_.transmit(std::move(converted));
        },
        "transceiver.convert");
  });
}

Transceiver::~Transceiver() { network_.unlisten(listener_); }

}  // namespace simba::aladdin
