#include "aladdin/remote_automation.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::aladdin {

RemoteAutomation::RemoteAutomation(sim::Simulator& sim,
                                   email::EmailServer& mail,
                                   HomeNetwork& network,
                                   std::string gateway_mailbox,
                                   std::string secret)
    : sim_(sim),
      mail_(mail),
      network_(network),
      mailbox_(std::move(gateway_mailbox)),
      secret_(std::move(secret)) {
  mail_.create_mailbox(mailbox_);
}

void RemoteAutomation::authorize(const std::string& sender_address) {
  authorized_.insert(to_lower(sender_address));
}

void RemoteAutomation::register_device(const std::string& device_id) {
  devices_.insert(device_id);
}

void RemoteAutomation::start(Duration poll_interval) {
  poll_task_.cancel();
  poll_task_ = sim_.every(poll_interval, [this] { poll(); },
                          "aladdin.automation.poll");
}

void RemoteAutomation::poll() {
  const auto& box = mail_.mailbox(mailbox_);
  while (cursor_ < box.size()) handle(box[cursor_++]);
}

void RemoteAutomation::handle(const email::Email& mail) {
  // Expected subject: ALADDIN <secret> SET <device> ON|OFF
  const auto words = split_trimmed(mail.subject, ' ');
  if (words.size() < 1 || !iequals(words[0], "ALADDIN")) {
    stats_.bump("ignored.not_a_command");
    return;
  }
  const auto [display, sender] = parse_email_from(mail.from);
  if (authorized_.count(to_lower(sender)) == 0) {
    stats_.bump("rejected.unauthorized");
    log_warn("aladdin.automation", "command from unauthorized " + sender);
    return;
  }
  if (words.size() != 5 || !iequals(words[2], "SET")) {
    stats_.bump("rejected.malformed");
    confirm(mail.from, "Could not parse command: " + mail.subject);
    return;
  }
  if (words[1] != secret_) {
    stats_.bump("rejected.bad_secret");
    log_warn("aladdin.automation", "bad secret from " + sender);
    return;
  }
  const std::string& device = words[3];
  if (devices_.count(device) == 0) {
    stats_.bump("rejected.unknown_device");
    confirm(mail.from, "No such device: " + device);
    return;
  }
  const bool on = iequals(words[4], "ON");
  if (!on && !iequals(words[4], "OFF")) {
    stats_.bump("rejected.malformed");
    confirm(mail.from, "Bad state (want ON or OFF): " + words[4]);
    return;
  }
  stats_.bump("accepted");
  log_info("aladdin.automation",
           "actuating " + device + (on ? " ON" : " OFF"));
  // The command module rides the powerline, like everything in-home.
  HomeSignal frame;
  frame.source_id = device;
  frame.payload = on ? "ON" : "OFF";
  frame.medium = Medium::kPowerline;
  network_.transmit(std::move(frame));
  if (on_actuate_) on_actuate_(device, on);
  confirm(mail.from,
          "Done: " + device + " is now " + (on ? "ON" : "OFF") + ".");
}

void RemoteAutomation::confirm(const std::string& to,
                               const std::string& body) {
  email::Email reply;
  reply.from = mailbox_;
  reply.to = parse_email_from(to).second;
  reply.subject = "Aladdin home automation";
  reply.body = body;
  if (mail_.submit(std::move(reply)).ok()) stats_.bump("confirmations");
}

}  // namespace simba::aladdin
