// Aladdin devices: sensors, remote controls, and the transceivers that
// bridge media (Section 5: "The RF signal was received by a powerline
// transceiver and converted into a powerline signal").
#pragma once

#include <functional>
#include <string>

#include "aladdin/home_network.h"
#include "sim/simulator.h"

namespace simba::aladdin {

/// A binary home sensor (water sensor, door sensor, motion...). State
/// changes are transmitted on its medium; a battery-powered sensor also
/// emits periodic supervision heartbeats, whose absence is how Aladdin
/// detects "Garage Door Sensor Broken".
class Sensor {
 public:
  Sensor(sim::Simulator& sim, HomeNetwork& network, std::string id,
         Medium medium);

  const std::string& id() const { return id_; }
  bool on() const { return on_; }
  bool battery_dead() const { return battery_dead_; }

  /// Flips the sensed state and transmits "ON"/"OFF" (unless dead).
  void set_state(bool on);

  /// Emits "HEARTBEAT" every `period` while the battery lasts.
  void start_heartbeat(Duration period);
  void stop_heartbeat();

  /// Battery death: the sensor goes silent (no state changes, no
  /// heartbeats) — upstream only notices via missing refreshes.
  void set_battery_dead(bool dead);

 private:
  void transmit(const std::string& payload);

  sim::Simulator& sim_;
  HomeNetwork& network_;
  std::string id_;
  Medium medium_;
  bool on_ = false;
  bool battery_dead_ = false;
  sim::TaskHandle heartbeat_task_;
  /// Stable storage for the "sensor.<id>.hb" event label.
  std::string heartbeat_label_;
};

/// An RF keyfob remote control (the disarm scenario's trigger).
class RemoteControl {
 public:
  RemoteControl(sim::Simulator& sim, HomeNetwork& network, std::string id);

  /// Presses a button: transmits the payload on RF.
  void press(const std::string& button);

 private:
  sim::Simulator& sim_;
  HomeNetwork& network_;
  std::string id_;
};

/// Bridges frames from one medium onto another with a conversion
/// delay (RF -> powerline in the paper's scenario).
class Transceiver {
 public:
  Transceiver(sim::Simulator& sim, HomeNetwork& network, Medium from,
              Medium to, Duration conversion_delay = millis(250));
  ~Transceiver();

 private:
  sim::Simulator& sim_;
  HomeNetwork& network_;
  Medium to_;
  Duration conversion_delay_;
  HomeNetwork::ListenerId listener_;
};

}  // namespace simba::aladdin
