// IM Manager: drives the simulated GUI IM client through its
// automation interface and keeps it signed in and responsive.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "automation/manager.h"
#include "im/im_client.h"

namespace simba::automation {

class ImManager : public CommunicationManager {
 public:
  ImManager(sim::Simulator& sim, gui::Desktop& desktop, im::ImClientApp& client);

  im::ImClientApp& client() { return client_; }

  /// Launches the client (if needed), signs in, arms the monkey thread.
  void start(std::function<void(Status)> done = nullptr);

  /// Sanity check, per the paper: process running and pointers valid;
  /// client still logged on (re-login if the server dropped us — the
  /// "simple re-logon attempts worked" cases); server reachable (ping /
  /// "can launch IM sessions, obtain the status of the buddies"). Hangs
  /// and stale pointers are unfixable in place and escalate to restart
  /// when `auto_restart` is set (default).
  void sanity_check(std::function<void(SanityReport)> done) override;

  void set_auto_restart(bool v) { auto_restart_ = v; }

  void restart() override;

  /// Robust send: absorbs one AutomationError by restarting the client
  /// and retrying once. Success means the IM service accepted delivery
  /// to an online recipient.
  void send_im(const std::string& to_user, const std::string& body,
               util::FlatMap<std::string, std::string> headers,
               std::function<void(Status)> done);

  /// Unread sweep for self-stabilization ("unprocessed ... IMs due to
  /// potential loss of new-IM events"). Never throws; automation
  /// errors are absorbed and reported in stats.
  std::vector<im::ImMessage> fetch_unread_safe();

  void set_on_new_message(std::function<void()> handler);

 private:
  void login_after_restart(std::function<void(Status)> done);

  im::ImClientApp& client_;
  bool auto_restart_ = true;
};

}  // namespace simba::automation
