#include "automation/im_manager.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::automation {

ImManager::ImManager(sim::Simulator& sim, gui::Desktop& desktop,
                     im::ImClientApp& client)
    : CommunicationManager(sim, desktop, client, "im_manager." + client.user()),
      client_(client) {
  // Client-specific caption/button pairs shipped with the Manager.
  add_caption_pair("signed in from another location", "OK");
  add_caption_pair("service unavailable", "Retry");
}

void ImManager::start(std::function<void(Status)> done) {
  if (!client_.running()) client_.launch();
  refresh_pointer();
  start_monkey();
  client_.login([this, done = std::move(done)](Status status) {
    if (!status.ok()) {
      log_warn(name(), "initial login failed: " + status.error());
    }
    if (done) done(std::move(status));
  });
}

void ImManager::restart() {
  CommunicationManager::restart();
  // A restarted IM client is signed out; sign back in (fire-and-forget:
  // the next sanity check verifies).
  try {
    client_.login(nullptr);
  } catch (const gui::AutomationError& e) {
    stats().bump("automation_errors");
    log_warn(name(), std::string("login after restart threw: ") + e.what());
  }
}

void ImManager::sanity_check(std::function<void(SanityReport)> done) {
  stats().bump("sanity_checks");
  auto finish = [this, done = std::move(done)](SanityReport report) {
    if (report.needs_restart && auto_restart_) {
      restart();
      stats().bump("restarts_from_sanity");
      report.detail += " (restarted)";
    }
    if (done) done(std::move(report));
  };

  // Step 1: process and pointer checks (cheap, synchronous).
  if (client_.state() == gui::ProcessState::kHung) {
    stats().bump("hung_detected");
    finish({.healthy = false,
            .fixed_in_place = false,
            .needs_restart = true,
            .detail = "client hung"});
    return;
  }
  if (!client_.running()) {
    stats().bump("dead_detected");
    finish({.healthy = false,
            .fixed_in_place = false,
            .needs_restart = true,
            .detail = "client not running"});
    return;
  }
  if (!pointer_valid()) {
    // The process restarted behind our back; re-capturing pointers is
    // an in-place fix.
    refresh_pointer();
    stats().bump("pointers_refreshed");
  }

  // A modal dialog makes every automation call fail; that is a dialog
  // problem, not a login problem. Sweep first; if something unknown is
  // still blocking, report it rather than misdiagnosing a logout.
  if (desktop_.any_blocking(app_.name())) {
    if (monkey_active()) monkey_sweep();
    if (desktop_.any_blocking(app_.name())) {
      stats().bump("blocked_by_dialog");
      finish({.healthy = false,
              .detail = "blocked by unhandled modal dialog"});
      return;
    }
  }

  // Step 2: application-specific checks (may throw AutomationError).
  try {
    if (!client_.is_logged_in()) {
      // "If it has been logged out ... it will be re-logged in."
      stats().bump("logged_out_detected");
      client_.login([this, finish](Status status) {
        if (status.ok()) {
          stats().bump("relogin_fixes");
          finish({.healthy = true,
                  .fixed_in_place = true,
                  .needs_restart = false,
                  .detail = "re-logon worked"});
        } else {
          // Service unreachable: restart will not help; record an
          // unhealthy period (an IM downtime from the outside).
          stats().bump("relogin_failures");
          finish({.healthy = false,
                  .fixed_in_place = false,
                  .needs_restart = false,
                  .detail = "re-logon failed: " + status.error()});
        }
      });
      return;
    }
    // Logged in per the client; verify the session end-to-end.
    client_.verify_connection([this, finish](Status status) {
      if (status.ok()) {
        finish({.healthy = true, .detail = "ok"});
        return;
      }
      if (contains(status.error(), "timed out")) {
        // Unreachable service (or one lost packet): re-logging-in will
        // not help and would inflate the re-logon count; report
        // unhealthy and let the next check decide.
        stats().bump("verify_timeouts");
        finish({.healthy = false,
                .detail = "service unreachable: " + status.error()});
        return;
      }
      // Session invalid: the server dropped us. Re-login once.
      try {
        client_.login([this, finish](Status login_status) {
          if (login_status.ok()) {
            stats().bump("relogin_fixes");
            finish({.healthy = true,
                    .fixed_in_place = true,
                    .needs_restart = false,
                    .detail = "session refreshed by re-logon"});
          } else {
            stats().bump("relogin_failures");
            finish({.healthy = false,
                    .detail = "service unreachable: " + login_status.error()});
          }
        });
      } catch (const gui::AutomationError& e) {
        stats().bump("automation_errors");
        finish({.healthy = false,
                .needs_restart = true,
                .detail = std::string("automation error: ") + e.what()});
      }
    });
  } catch (const gui::AutomationError& e) {
    stats().bump("automation_errors");
    finish({.healthy = false,
            .needs_restart = true,
            .detail = std::string("automation error: ") + e.what()});
  }
}

void ImManager::send_im(const std::string& to_user, const std::string& body,
                        util::FlatMap<std::string, std::string> headers,
                        std::function<void(Status)> done) {
  try {
    // `done` is passed by copy: if the client throws mid-call we still
    // need it for the retry path below.
    client_.send_im(to_user, body, headers, done);
  } catch (const gui::AutomationError& e) {
    stats().bump("automation_errors");
    log_warn(name(), std::string("send threw: ") + e.what() + "; restarting");
    restart();
    // One retry after the restart; login is in flight, so give it a
    // moment before the attempt.
    sim_.after(seconds(2), [this, to_user, body, headers, done]() mutable {
      try {
        client_.send_im(to_user, body, std::move(headers), done);
      } catch (const gui::AutomationError& e2) {
        stats().bump("automation_errors");
        if (done) {
          done(Status::failure(std::string("send failed twice: ") + e2.what()));
        }
      }
    });
  }
}

std::vector<im::ImMessage> ImManager::fetch_unread_safe() {
  try {
    return client_.fetch_unread();
  } catch (const gui::AutomationError&) {
    stats().bump("automation_errors");
    return {};
  }
}

void ImManager::set_on_new_message(std::function<void()> handler) {
  client_.set_new_message_event(std::move(handler));
}

}  // namespace simba::automation
