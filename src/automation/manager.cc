#include "automation/manager.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::automation {

void CaptionRegistry::add(std::string caption_substring, std::string button) {
  pairs_.emplace_back(std::move(caption_substring), std::move(button));
}

bool CaptionRegistry::known(const std::string& caption) const {
  for (const auto& [sub, button] : pairs_) {
    if (icontains(caption, sub)) return true;
  }
  return false;
}

CommunicationManager::CommunicationManager(sim::Simulator& sim,
                                           gui::Desktop& desktop,
                                           gui::ClientApp& app,
                                           std::string name)
    : sim_(sim), desktop_(desktop), app_(app), name_(std::move(name)) {
  // System-generic pairs every Manager ships with (Section 4.1.1: "some
  // of the caption-button pairs are system-generic").
  captions_.add("error", "OK");
  captions_.add("warning", "OK");
  captions_.add("update available", "Later");
  captions_.add("connection lost", "OK");
}

CommunicationManager::~CommunicationManager() { monkey_task_.cancel(); }

void CommunicationManager::restart() {
  stats_.bump("restarts");
  log_info(name_, "shutdown/restart of " + app_.name());
  app_.kill();
  app_.launch();
  refresh_pointer();
}

void CommunicationManager::add_caption_pair(
    const std::string& caption_substring, const std::string& button) {
  captions_.add(caption_substring, button);
  log_info(name_, "caption pair added: \"" + caption_substring + "\" -> [" +
                      button + "]");
}

void CommunicationManager::start_monkey(Duration interval) {
  stop_monkey();
  if (monkey_label_.empty()) monkey_label_ = name_ + ".monkey";
  monkey_task_ = sim_.every(
      interval, [this] { monkey_sweep(); }, monkey_label_.c_str());
}

void CommunicationManager::stop_monkey() { monkey_task_.cancel(); }

int CommunicationManager::monkey_sweep() {
  int clicked = 0;
  // Keep clicking until nothing matches: a click may dismiss one of
  // several dialogs. Each pass snapshots the dialog list — click()
  // invalidates the live view (and references into it).
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<gui::DialogBox> snapshot = desktop_.dialogs();
    for (const auto& box : snapshot) {
      const std::string caption = box.caption;
      for (const auto& [sub, button] : captions_.pairs()) {
        if (!icontains(caption, sub)) continue;
        if (desktop_.click(sub, button)) {
          stats_.bump("dialogs_clicked");
          SIMBA_LOG_DEBUG(name_, "monkey clicked \"" + caption + "\"");
          clicked++;
          progress = true;
        }
        break;
      }
      if (progress) break;  // dialog list changed; rescan
    }
  }
  return clicked;
}

std::vector<std::string> CommunicationManager::unknown_dialog_captions() const {
  std::vector<std::string> out;
  for (const auto& box : desktop_.dialogs()) {
    if (!captions_.known(box.caption)) out.push_back(box.caption);
  }
  return out;
}

}  // namespace simba::automation
