#include "automation/email_manager.h"

#include "util/log.h"

namespace simba::automation {

EmailManager::EmailManager(sim::Simulator& sim, gui::Desktop& desktop,
                           email::EmailClientApp& client)
    : CommunicationManager(sim, desktop, client,
                           "email_manager." + client.mailbox_address()),
      client_(client) {
  add_caption_pair("out of office", "Cancel");
  add_caption_pair("mailbox is full", "OK");
  add_caption_pair("send/receive error", "OK");
}

void EmailManager::start() {
  if (!client_.running()) client_.launch();
  refresh_pointer();
  start_monkey();
}

void EmailManager::sanity_check(std::function<void(SanityReport)> done) {
  stats().bump("sanity_checks");
  auto finish = [this, done = std::move(done)](SanityReport report) {
    if (report.needs_restart && auto_restart_) {
      restart();
      stats().bump("restarts_from_sanity");
      report.detail += " (restarted)";
    }
    if (done) done(std::move(report));
  };

  if (client_.state() == gui::ProcessState::kHung) {
    stats().bump("hung_detected");
    finish({.healthy = false, .needs_restart = true, .detail = "client hung"});
    return;
  }
  if (!client_.running()) {
    stats().bump("dead_detected");
    finish({.healthy = false,
            .needs_restart = true,
            .detail = "client not running"});
    return;
  }
  if (!pointer_valid()) {
    refresh_pointer();
    stats().bump("pointers_refreshed");
  }
  if (desktop_.any_blocking(app_.name())) {
    if (monkey_active()) monkey_sweep();
    if (desktop_.any_blocking(app_.name())) {
      stats().bump("blocked_by_dialog");
      finish({.healthy = false,
              .detail = "blocked by unhandled modal dialog"});
      return;
    }
  }
  try {
    const Status status = client_.verify_connection();
    if (status.ok()) {
      finish({.healthy = true, .detail = "ok"});
    } else {
      finish({.healthy = false, .detail = status.error()});
    }
  } catch (const gui::AutomationError& e) {
    stats().bump("automation_errors");
    finish({.healthy = false,
            .needs_restart = true,
            .detail = std::string("automation error: ") + e.what()});
  }
}

Status EmailManager::send_email(email::Email mail) {
  try {
    return client_.send_email(mail);
  } catch (const gui::AutomationError& e) {
    stats().bump("automation_errors");
    log_warn(name(), std::string("send threw: ") + e.what() + "; restarting");
    restart();
    try {
      return client_.send_email(std::move(mail));
    } catch (const gui::AutomationError& e2) {
      stats().bump("automation_errors");
      return Status::failure(std::string("send failed twice: ") + e2.what());
    }
  }
}

std::vector<email::Email> EmailManager::fetch_unread_safe() {
  try {
    return client_.fetch_unread();
  } catch (const gui::AutomationError&) {
    stats().bump("automation_errors");
    return {};
  }
}

void EmailManager::set_on_new_mail(std::function<void()> handler) {
  client_.set_new_mail_event(std::move(handler));
}

}  // namespace simba::automation
