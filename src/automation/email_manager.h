// Email Manager: drives the simulated GUI email client and keeps it
// healthy. Email is SIMBA's fallback channel, so robustness here is
// what makes "falls back to the next backup block" actually work.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "automation/manager.h"
#include "email/email_client.h"

namespace simba::automation {

class EmailManager : public CommunicationManager {
 public:
  EmailManager(sim::Simulator& sim, gui::Desktop& desktop,
               email::EmailClientApp& client);

  email::EmailClientApp& client() { return client_; }

  /// Launches the client and arms the monkey thread.
  void start();

  /// Process/pointer checks plus relay reachability. Synchronous (the
  /// email client checks its relay locally) but delivered through the
  /// same async signature as the IM manager.
  void sanity_check(std::function<void(SanityReport)> done) override;

  void set_auto_restart(bool v) { auto_restart_ = v; }

  /// Robust send: absorbs one AutomationError with restart + retry.
  Status send_email(email::Email mail);

  /// Unread sweep for self-stabilization; never throws.
  std::vector<email::Email> fetch_unread_safe();

  void set_on_new_mail(std::function<void()> handler);

 private:
  email::EmailClientApp& client_;
  bool auto_restart_ = true;
};

}  // namespace simba::automation
