// Exception-handling automation (Section 4.1.1) — the paper's central
// implementation contribution.
//
// Automation interfaces "model the normal use of software by human
// beings [but] do not model and simulate human operations in case of
// exceptions". Communication Managers wrap each flaky GUI client with
// the three APIs the paper defines:
//
//   1. Sanity Checking API — is the process alive, are our pointers
//      valid, is it logged on, can it reach its server; fix what a
//      human would fix by "clicking around" (re-logon), report what
//      cannot be fixed in place.
//   2. Shutdown/Restart API — kill and relaunch the client, refreshing
//      all automation pointers to the new instance.
//   3. Dialog-box Handling API — the "monkey thread": every sweep it
//      looks for dialog boxes with matching captions and clicks the
//      appropriate buttons. Caption/button pairs are system-generic,
//      client-specific, and user-extensible (the paper's two unknown
//      dialog boxes were fixed by adding their pairs).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gui/client_app.h"
#include "gui/desktop.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace simba::automation {

/// Caption-substring -> button registry for the monkey thread.
class CaptionRegistry {
 public:
  void add(std::string caption_substring, std::string button);
  bool known(const std::string& caption) const;
  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

/// Outcome of one sanity check.
struct SanityReport {
  bool healthy = false;        // everything checked out (possibly after a fix)
  bool fixed_in_place = false; // a re-logon or similar repaired it
  bool needs_restart = false;  // unfixable without Shutdown/Restart
  std::string detail;
};

/// Base Communication Manager: dialog handling and restart plumbing are
/// shared; sanity checking is client-specific.
class CommunicationManager {
 public:
  CommunicationManager(sim::Simulator& sim, gui::Desktop& desktop,
                       gui::ClientApp& app, std::string name);
  virtual ~CommunicationManager();

  CommunicationManager(const CommunicationManager&) = delete;
  CommunicationManager& operator=(const CommunicationManager&) = delete;

  const std::string& name() const { return name_; }

  // --- API 1: Sanity Checking ---------------------------------------------
  /// Asynchronous: some checks require a server round-trip.
  virtual void sanity_check(std::function<void(SanityReport)> done) = 0;

  // --- API 2: Shutdown/Restart --------------------------------------------
  /// Terminates the running instance (works on hung processes),
  /// relaunches, and refreshes automation pointers. Subclasses layer
  /// re-login on top.
  virtual void restart();

  /// True when our captured automation pointer still refers to the
  /// live client instance.
  bool pointer_valid() const { return pointer_.valid(); }

  // --- API 3: Dialog-box Handling -----------------------------------------
  /// Registers an additional caption/button pair ("each Manager
  /// provides an API for specifying additional caption-button pairs").
  void add_caption_pair(const std::string& caption_substring,
                        const std::string& button);

  /// Starts the monkey thread: a periodic sweep (paper: every 20 s)
  /// clicking known dialogs on the whole desktop.
  void start_monkey(Duration interval = seconds(20));
  void stop_monkey();
  bool monkey_active() const { return monkey_task_.active(); }
  /// One sweep; returns how many dialogs were dismissed. Public so
  /// self-stabilization can force an immediate sweep.
  int monkey_sweep();

  /// Dialogs currently on screen that no registered pair can dismiss —
  /// the paper's "previously unknown dialog boxes".
  std::vector<std::string> unknown_dialog_captions() const;

  gui::ClientApp& app() { return app_; }
  const Counters& stats() const { return stats_; }
  Counters& stats() { return stats_; }

 protected:
  void refresh_pointer() { pointer_ = gui::AutomationPointer(app_); }

  sim::Simulator& sim_;
  gui::Desktop& desktop_;
  gui::ClientApp& app_;
  std::string name_;
  /// Stable storage for the "<name>.monkey" event label.
  std::string monkey_label_;
  gui::AutomationPointer pointer_;
  CaptionRegistry captions_;
  sim::TaskHandle monkey_task_;
  Counters stats_;
};

}  // namespace simba::automation
