#include "assistant/assistant.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::assistant {

DesktopAssistant::DesktopAssistant(sim::Simulator& sim,
                                   email::EmailServer& mail,
                                   std::string mailbox,
                                   Duration idle_threshold)
    : sim_(sim),
      mail_(mail),
      mailbox_(std::move(mailbox)),
      idle_threshold_(idle_threshold),
      last_activity_(sim.now()) {
  mail_.create_mailbox(mailbox_);
}

void DesktopAssistant::record_user_activity() {
  last_activity_ = sim_.now();
  // The user is at the machine: everything delivered so far is theirs
  // to see; the assistant must not re-alert it.
  mail_cursor_ = mail_.mailbox(mailbox_).size();
}

void DesktopAssistant::add_reminder(TimePoint when, const std::string& subject,
                                    bool high_importance) {
  sim_.at(
      when,
      [this, subject, high_importance] {
        fire_reminder(subject, high_importance);
      },
      "assistant.reminder");
}

void DesktopAssistant::start(Duration check_interval) {
  stop();
  sweep_task_ = sim_.every(check_interval, [this] { sweep_mailbox(); },
                           "assistant.sweep");
}

void DesktopAssistant::stop() { sweep_task_.cancel(); }

void DesktopAssistant::sweep_mailbox() {
  const auto& box = mail_.mailbox(mailbox_);
  if (!user_away()) {
    // User present: they are reading their own mail.
    mail_cursor_ = box.size();
    return;
  }
  while (mail_cursor_ < box.size()) {
    const email::Email& m = box[mail_cursor_++];
    if (!m.high_importance) continue;
    stats_.bump("important_emails_seen");
    emit("Important Email", "Important email from " + m.from,
         "Subject: " + m.subject, /*high_importance=*/true);
  }
}

void DesktopAssistant::fire_reminder(const std::string& subject,
                                     bool high_importance) {
  stats_.bump("reminders_fired");
  if (!user_away()) {
    // The reminder popped on screen and the user is there to see it.
    stats_.bump("reminders_seen_locally");
    return;
  }
  if (!high_importance) return;
  emit("Reminder", "Reminder: " + subject,
       "Calendar reminder fired while you were away.", true);
}

void DesktopAssistant::emit(const std::string& category,
                            const std::string& subject,
                            const std::string& body, bool high_importance) {
  core::Alert alert;
  alert.source = "desktop.assistant";
  alert.native_category = category;
  alert.subject = subject;
  alert.body = body;
  alert.high_importance = high_importance;
  alert.created_at = sim_.now();
  alert.id = strformat("assistant-%llu",
                       static_cast<unsigned long long>(next_alert_++));
  stats_.bump("alerts_generated");
  log_info("assistant", "alert: " + subject);
  if (sink_) sink_(alert);
}

}  // namespace simba::assistant
