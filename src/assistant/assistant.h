// SIMBA Desktop Assistant (Section 2.5).
//
// "runs on a user's primary machine and remains inactive until the idle
// time of interactive activities exceeds a user-specified threshold and
// the software determines that the user has not processed emails from
// other places. Currently, the Assistant software generates alerts when
// high-importance emails come in and when high-importance reminders pop
// up."
#pragma once

#include <string>
#include <vector>

#include "core/alert.h"
#include "email/email_server.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace simba::assistant {

class DesktopAssistant {
 public:
  DesktopAssistant(sim::Simulator& sim, email::EmailServer& mail,
                   std::string mailbox, Duration idle_threshold = minutes(15));

  /// Scenario scripts call this whenever the user touches the machine.
  /// Activity also implies the user has seen everything currently in
  /// the mailbox ("has processed emails").
  void record_user_activity();

  Duration idle_time() const { return sim_.now() - last_activity_; }
  bool user_away() const { return idle_time() >= idle_threshold_; }

  /// Calendar reminder that will pop at `when`.
  void add_reminder(TimePoint when, const std::string& subject,
                    bool high_importance = true);

  void set_alert_sink(core::AlertSink sink) { sink_ = std::move(sink); }

  /// Starts watching the mailbox (sweep every `check_interval`).
  void start(Duration check_interval = seconds(30));
  void stop();

  const Counters& stats() const { return stats_; }

 private:
  void sweep_mailbox();
  void fire_reminder(const std::string& subject, bool high_importance);
  void emit(const std::string& category, const std::string& subject,
            const std::string& body, bool high_importance);

  sim::Simulator& sim_;
  email::EmailServer& mail_;
  std::string mailbox_;
  Duration idle_threshold_;
  TimePoint last_activity_{};
  std::size_t mail_cursor_ = 0;
  core::AlertSink sink_;
  sim::TaskHandle sweep_task_;
  std::uint64_t next_alert_ = 1;
  Counters stats_;
};

}  // namespace simba::assistant
