// Alert Classifier (Section 4.2, "Alert classification"): "the user
// customizes the classifier by specifying the list of accepted alert
// sources, and how to extract category-related keywords from the
// alerts. For example, the keywords in alerts from Yahoo! and
// Alerts.com appear as part of the email sender name, while the
// keywords in MSN Mobile alerts and desktop assistant alerts reside in
// the email subject field." The classifier also "helps the user
// maintain a list of all the subscribed alert services, and the
// information about how to unsubscribe them."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/alert.h"
#include "util/stats.h"

namespace simba::core {

/// Where a source embeds its category keyword.
enum class KeywordLocation {
  kNativeCategory,  // structured SIMBA-library alerts carry it directly
  kSenderName,      // Yahoo!/Alerts.com style: in the email sender
  kSubject,         // MSN Mobile / desktop assistant style
  kBody,
};

struct SourceRule {
  /// Matches Alert::source (exact, case-insensitive). For alerts
  /// ingested from plain email, source is the sender address.
  std::string source;
  KeywordLocation location = KeywordLocation::kNativeCategory;
  /// Recognizable keywords for this source, used when the location is
  /// a free-text field; the first one found (case-insensitive) wins.
  /// Ignored for kNativeCategory (the field value is the keyword).
  std::vector<std::string> keywords;
  /// "information about how to unsubscribe" (a URL or instructions).
  std::string unsubscribe_info;
};

class AlertClassifier {
 public:
  void add_rule(SourceRule rule);
  bool accepts(const std::string& source) const;
  const SourceRule* rule_for(const std::string& source) const;

  /// Extracts the category keyword, or nullopt when the source is not
  /// accepted or no keyword matches.
  std::optional<std::string> classify(const Alert& alert) const;

  /// The maintained service list (Section 4.2).
  struct ServiceInfo {
    std::string source;
    std::string unsubscribe_info;
  };
  std::vector<ServiceInfo> services() const;

  /// All rules, for persistence (core/config_xml.h).
  const std::vector<SourceRule>& rules() const { return rules_; }

  const Counters& stats() const { return stats_; }

 private:
  /// Case-folded copies of a rule's match keys, computed once in
  /// add_rule so the per-alert hot path (rule_for's linear scan,
  /// classify's keyword search) compares pre-lowered strings instead
  /// of re-folding both sides on every probe.
  struct FoldedKeys {
    std::string source;
    std::vector<std::string> keywords;
  };

  std::vector<SourceRule> rules_;
  std::vector<FoldedKeys> folded_;  // index-aligned with rules_
  mutable Counters stats_;
};

}  // namespace simba::core
