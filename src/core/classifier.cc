#include "core/classifier.h"

#include "util/strings.h"

namespace simba::core {

void AlertClassifier::add_rule(SourceRule rule) {
  FoldedKeys folded;
  folded.source = to_lower(rule.source);
  folded.keywords.reserve(rule.keywords.size());
  for (const auto& keyword : rule.keywords) {
    folded.keywords.push_back(to_lower(keyword));
  }
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (iequals(rules_[i].source, rule.source)) {
      folded_[i] = std::move(folded);
      rules_[i] = std::move(rule);
      return;
    }
  }
  folded_.push_back(std::move(folded));
  rules_.push_back(std::move(rule));
}

bool AlertClassifier::accepts(const std::string& source) const {
  return rule_for(source) != nullptr;
}

const SourceRule* AlertClassifier::rule_for(const std::string& source) const {
  // One fold of the probe (SSO for typical short source names), then
  // plain equality against the pre-folded rule keys: the scan itself
  // is memcmp-speed and allocation-free.
  const std::string folded_source = to_lower(source);
  for (std::size_t i = 0; i < folded_.size(); ++i) {
    if (folded_[i].source == folded_source) return &rules_[i];
  }
  return nullptr;
}

std::optional<std::string> AlertClassifier::classify(const Alert& alert) const {
  const SourceRule* rule = rule_for(alert.source);
  if (rule == nullptr) {
    stats_.bump("rejected_source");
    return std::nullopt;
  }
  const FoldedKeys& folded = folded_[static_cast<std::size_t>(rule - rules_.data())];
  const std::string* field = nullptr;
  switch (rule->location) {
    case KeywordLocation::kNativeCategory:
      if (alert.native_category.empty()) {
        stats_.bump("no_keyword");
        return std::nullopt;
      }
      stats_.bump("classified");
      return alert.native_category;
    case KeywordLocation::kSenderName: {
      // For email-ingested alerts the sender is the source itself;
      // sources like Yahoo! encode the category there, e.g.
      // "Yahoo! Alerts - Stocks <alerts@yahoo.example>". Fall back to
      // the explicit attribute when present.
      const auto it = alert.attributes.find("email_from");
      field = it != alert.attributes.end() ? &it->second : &alert.source;
      break;
    }
    case KeywordLocation::kSubject:
      field = &alert.subject;
      break;
    case KeywordLocation::kBody:
      field = &alert.body;
      break;
  }
  // Fold the searched field once; each keyword probe is then a plain
  // substring search over pre-lowered text.
  const std::string folded_field = to_lower(*field);
  for (std::size_t k = 0; k < folded.keywords.size(); ++k) {
    if (contains(folded_field, folded.keywords[k])) {
      stats_.bump("classified");
      return rule->keywords[k];
    }
  }
  stats_.bump("no_keyword");
  return std::nullopt;
}

std::vector<AlertClassifier::ServiceInfo> AlertClassifier::services() const {
  std::vector<ServiceInfo> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) {
    out.push_back(ServiceInfo{rule.source, rule.unsubscribe_info});
  }
  return out;
}

}  // namespace simba::core
