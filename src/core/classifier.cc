#include "core/classifier.h"

#include "util/strings.h"

namespace simba::core {

void AlertClassifier::add_rule(SourceRule rule) {
  for (auto& existing : rules_) {
    if (iequals(existing.source, rule.source)) {
      existing = std::move(rule);
      return;
    }
  }
  rules_.push_back(std::move(rule));
}

bool AlertClassifier::accepts(const std::string& source) const {
  return rule_for(source) != nullptr;
}

const SourceRule* AlertClassifier::rule_for(const std::string& source) const {
  for (const auto& rule : rules_) {
    if (iequals(rule.source, source)) return &rule;
  }
  return nullptr;
}

std::optional<std::string> AlertClassifier::classify(const Alert& alert) const {
  const SourceRule* rule = rule_for(alert.source);
  if (rule == nullptr) {
    stats_.bump("rejected_source");
    return std::nullopt;
  }
  const std::string* field = nullptr;
  switch (rule->location) {
    case KeywordLocation::kNativeCategory:
      if (alert.native_category.empty()) {
        stats_.bump("no_keyword");
        return std::nullopt;
      }
      stats_.bump("classified");
      return alert.native_category;
    case KeywordLocation::kSenderName: {
      // For email-ingested alerts the sender is the source itself;
      // sources like Yahoo! encode the category there, e.g.
      // "Yahoo! Alerts - Stocks <alerts@yahoo.example>". Fall back to
      // the explicit attribute when present.
      const auto it = alert.attributes.find("email_from");
      field = it != alert.attributes.end() ? &it->second : &alert.source;
      break;
    }
    case KeywordLocation::kSubject:
      field = &alert.subject;
      break;
    case KeywordLocation::kBody:
      field = &alert.body;
      break;
  }
  for (const auto& keyword : rule->keywords) {
    if (icontains(*field, keyword)) {
      stats_.bump("classified");
      return keyword;
    }
  }
  stats_.bump("no_keyword");
  return std::nullopt;
}

std::vector<AlertClassifier::ServiceInfo> AlertClassifier::services() const {
  std::vector<ServiceInfo> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) {
    out.push_back(ServiceInfo{rule.source, rule.unsubscribe_info});
  }
  return out;
}

}  // namespace simba::core
