#include "core/mab.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::core {

const UserProfile* MabConfig::profile_for(const std::string& user) const {
  if (user == profile.user()) return &profile;
  const auto it = shared_profiles.find(user);
  return it == shared_profiles.end() ? nullptr : &it->second;
}

MyAlertBuddy::MyAlertBuddy(sim::Simulator& sim, MabConfig& config,
                           AlertLog& log, DigestStore& digest,
                           AlertCoalescer& coalescer,
                           automation::ImManager& im,
                           automation::EmailManager& email, MabOptions options,
                           Rng rng)
    : sim_(sim),
      config_(config),
      log_(log),
      digest_(digest),
      coalescer_(coalescer),
      im_(im),
      email_(email),
      options_(std::move(options)),
      rng_(std::move(rng)),
      engine_(std::make_unique<DeliveryEngine>(sim, &im, &email,
                                               options_.overload.engine)),
      started_at_(sim.now()),
      last_progress_(sim.now()),
      user_bucket_(options_.overload.per_user, sim.now()),
      source_buckets_(options_.overload.per_source) {
  engine_->set_trace(options_.trace);
}

void MyAlertBuddy::trace_event(const std::string& alert_id, const char* stage,
                               std::string detail) {
  if (options_.trace == nullptr) return;
  options_.trace->emit(alert_id, "mab", stage, sim_.now(), std::move(detail));
}

MyAlertBuddy::~MyAlertBuddy() {
  *alive_ = false;
  sweep_task_.cancel();
  sanity_task_.cancel();
  stabilization_task_.cancel();
  if (hang_event_ != 0) sim_.cancel(hang_event_);
  if (digest_event_ != 0) sim_.cancel(digest_event_);
  // Unhook our callbacks from the (longer-lived) managers.
  im_.set_on_new_message(nullptr);
  email_.set_on_new_mail(nullptr);
}

void MyAlertBuddy::start() {
  log_info("mab", "MyAlertBuddy starting");

  // Windows open when the previous incarnation died flush now: their
  // scheduled flush events died with that incarnation's alive token,
  // and the folded alerts must not wait for the next storm.
  if (coalescer_.open_windows() > 0) {
    stats_.bump("coalesce.restart_flushes");
    flush_coalescer(/*all=*/true, "restart");
  }

  // Recovery scan before accepting new alerts.
  if (options_.pessimistic_logging) {
    const auto pending = log_.unprocessed();
    if (!pending.empty()) {
      stats_.bump("recovery_replays", static_cast<std::int64_t>(pending.size()));
      log_info("mab", strformat("recovering %zu unprocessed alert(s)",
                                pending.size()));
      for (const auto& alert : pending) {
        trace_event(alert.id, "recovery_replay",
                    "restart scan found unprocessed alert");
        process_alert(alert);
      }
    }
  }

  im_.set_on_new_message([this] { pump_im(); });
  email_.set_on_new_mail([this] { pump_email(); });

  sweep_task_ = sim_.every(
      options_.pump_sweep_interval,
      [this] {
        pump_im();
        pump_email();
      },
      "mab.sweep");
  sanity_task_ =
      sim_.every(options_.sanity_interval, [this] { sanity_tick(); },
                 "mab.sanity");
  if (options_.self_stabilization) {
    stabilization_task_ = sim_.every(options_.dialog_check_interval,
                                     [this] { stabilization_tick(); },
                                     "mab.stabilize");
  }
  if (options_.mean_time_to_hang > Duration::zero()) {
    hang_event_ =
        sim_.after(rng_.exponential_duration(options_.mean_time_to_hang),
                   [this] { force_hang(); }, "mab.hang");
  }
  if (options_.digest_enabled) {
    digest_event_ = sim_.at(
        next_occurrence(sim_.now(), options_.digest_time),
        [this] {
          digest_event_ = 0;
          send_digest("daily");
          // This incarnation may be gone tomorrow; the next one
          // reschedules in its own start(). Re-arm only if still alive.
          if (running()) {
            digest_event_ = sim_.at(
                next_occurrence(sim_.now(), options_.digest_time),
                [this] {
                  digest_event_ = 0;
                  send_digest("daily");
                },
                "mab.digest");
          }
        },
        "mab.digest");
  }
}

bool MyAlertBuddy::are_you_working() {
  if (!running_ || hung_) return false;
  progress();
  return true;
}

void MyAlertBuddy::force_hang() {
  if (!running_) return;
  hung_ = true;
  stats_.bump("hangs");
  log_warn("mab", "MyAlertBuddy hung");
  // A hung process does no further work; its timers keep firing but
  // every entry point below checks running().
}

void MyAlertBuddy::request_shutdown(const std::string& reason) {
  if (!running_) return;
  running_ = false;
  stats_.bump("graceful_shutdowns");
  log_info("mab", "graceful shutdown: " + reason);
  sweep_task_.cancel();
  sanity_task_.cancel();
  stabilization_task_.cancel();
  if (on_terminated_) on_terminated_(reason, /*expected=*/true);
}

void MyAlertBuddy::fail_with(const std::string& reason) {
  if (!running_) return;
  running_ = false;
  stats_.bump("failures");
  log_warn("mab", "terminating on unhandled anomaly: " + reason);
  sweep_task_.cancel();
  sanity_task_.cancel();
  stabilization_task_.cancel();
  if (on_terminated_) on_terminated_(reason, /*expected=*/false);
}

double MyAlertBuddy::memory_mb() const {
  const double hours = to_seconds(sim_.now() - started_at_) / 3600.0;
  return options_.base_memory_mb + options_.leak_mb_per_hour * hours +
         options_.leak_mb_per_alert * static_cast<double>(alerts_processed_);
}

// ---------------------------------------------------------------------------
// Pumps
// ---------------------------------------------------------------------------

void MyAlertBuddy::pump_im() {
  if (!running()) return;
  // Resource exhaustion wedges the process whether or not the
  // self-stabilization checks (which would have rejuvenated first at
  // the soft limit) are enabled.
  if (memory_mb() > options_.memory_hard_limit_mb) {
    force_hang();
    return;
  }
  progress();
  std::vector<im::ImMessage> messages;
  try {
    // Deliberately the raw automation call: an exception here is the
    // paper's dominant MAB-restart trigger ("Most of them were
    // triggered by IM exceptions").
    messages = im_.client().fetch_unread();
  } catch (const gui::AutomationError& e) {
    fail_with(std::string("IM exception: ") + e.what());
    return;
  }
  for (const auto& message : messages) {
    if (!running()) return;  // terminated mid-batch; rest is lost
    if (engine_->handle_incoming(message)) continue;
    const auto kind = message.headers.find(wire::kKind);
    if (kind != message.headers.end() && kind->second == wire::kKindCommand) {
      handle_command(message.body, message.from_user);
      continue;
    }
    if (kind != message.headers.end() && kind->second == wire::kKindAlert) {
      handle_alert_im(message);
      continue;
    }
    // A plain human IM or a remote command typed by the user.
    if (icontains(message.body, "SIMBA ")) {
      handle_command(message.body, message.from_user);
    } else {
      stats_.bump("im.ignored");
    }
  }
}

void MyAlertBuddy::pump_email() {
  if (!running()) return;
  progress();
  std::vector<email::Email> mails;
  try {
    mails = email_.client().fetch_unread();
  } catch (const gui::AutomationError& e) {
    fail_with(std::string("email exception: ") + e.what());
    return;
  }
  for (const auto& mail : mails) {
    if (!running()) return;
    if (icontains(mail.subject, "SIMBA REJUVENATE") ||
        icontains(mail.body, "SIMBA REJUVENATE")) {
      handle_command("SIMBA REJUVENATE", mail.from);
      continue;
    }
    Alert alert;
    if (mail.headers.count("alert_id") > 0) {
      // A SIMBA-library source falling back to the email channel.
      alert = alert_from_headers(mail.headers, mail.body);
      stats_.bump("email.simba_alerts");
    } else {
      // A legacy email-only alert service: "To existing alert services
      // that support only email delivery, MyAlertBuddy looks just like
      // any other regular human user." Yahoo-style services carry the
      // category keyword in the sender display name, so keep the full
      // From for the classifier while matching rules by address.
      const auto [display, address] = parse_email_from(mail.from);
      alert.source = address;
      alert.subject = mail.subject;
      alert.body = mail.body;
      alert.high_importance = mail.high_importance;
      alert.created_at = mail.submitted_at;
      alert.id = "em-" + std::to_string(mail.id);
      alert.attributes["email_from"] = mail.from;
      stats_.bump("email.legacy_alerts");
    }
    trace_event(alert.id, "receive",
                mail.headers.count("alert_id") > 0 ? "email.simba"
                                                   : "email.legacy");
    if (alert_observer_) alert_observer_(alert, sim_.now());
    if (options_.pessimistic_logging) {
      if (!log_.append(alert, sim_.now())) {
        stats_.bump("duplicates_suppressed");
        trace_event(alert.id, "duplicate_drop", "already logged (email)");
        continue;
      }
    }
    process_after_delay(alert);
  }
}

// ---------------------------------------------------------------------------
// Alert path
// ---------------------------------------------------------------------------

void MyAlertBuddy::handle_alert_im(const im::ImMessage& message) {
  const Alert alert = alert_from_headers(message.headers, message.body);
  stats_.bump("im.alerts_received");
  if (traced()) trace_event(alert.id, "receive", "im from " + message.from_user);
  if (alert_observer_) alert_observer_(alert, sim_.now());
  const bool wants_ack = message.headers.count(wire::kRequiresAck) > 0;

  if (options_.pessimistic_logging) {
    const bool fresh = log_.append(alert, sim_.now());
    // Save to the log file *before* sending the acknowledgement; the
    // disk write costs latency (this is the E2 measurement).
    sim_.after(
        log_.write_latency(),
        [this, alive = alive_, alert, fresh, wants_ack,
         from = message.from_user] {
          if (!*alive) return;
          if (!running()) return;  // crashed during the write
          if (wants_ack) send_ack(from, alert.id);
          if (fresh) {
            process_after_delay(alert);
          } else {
            // A resend of something we already acked (the sender never
            // got our ack, or got it late). Ack again, process once.
            stats_.bump("duplicates_suppressed");
            trace_event(alert.id, "duplicate_drop",
                        "already logged; re-acked");
          }
        },
        "mab.log_write");
  } else {
    // Ablation: ack immediately. A crash before processing now loses
    // the alert — the sender has its ack and will not resend.
    if (wants_ack) send_ack(message.from_user, alert.id);
    process_after_delay(alert);
  }
}

void MyAlertBuddy::send_ack(const std::string& to_user,
                            const std::string& alert_id) {
  util::FlatMap<std::string, std::string> headers;
  headers[wire::kKind] = wire::kKindAck;
  headers[wire::kAckFor] = alert_id;
  im_.send_im(to_user, "ACK " + alert_id, std::move(headers),
              [this, alive = alive_](Status status) {
                if (!*alive) return;
                if (!status.ok()) stats_.bump("acks.send_failed");
              });
  stats_.bump("acks.sent");
  if (traced()) trace_event(alert_id, "ack_send", "to " + to_user);
}

void MyAlertBuddy::process_after_delay(const Alert& alert) {
  // Processing (classification, routing, automation calls) costs time
  // beyond the ack; deferred so the sender's ack is not held up by it.
  if (options_.processing_delay <= Duration::zero()) {
    process_alert(alert);
    return;
  }
  const std::size_t bound = options_.overload.inbox_bound;
  if (bound != 0 && static_cast<std::size_t>(inbox_pending_) >= bound) {
    // Inbox full. The alert is logged and acked; shedding here is a
    // deliberate, accounted drop — marked processed so the recovery
    // scan does not resurrect it.
    stats_.bump("inbox.shed");
    if (traced()) {
      trace_event(alert.id, "shed",
                  strformat("inbox full (%d queued)", inbox_pending_));
    }
    if (options_.pessimistic_logging) log_.mark_processed(alert.id, sim_.now());
    if (shed_observer_) shed_observer_(alert.id, sim_.now());
    return;
  }
  ++inbox_pending_;
  sim_.after(
      options_.processing_delay,
      [this, alive = alive_, alert] {
        if (!*alive) return;
        --inbox_pending_;
        if (running()) process_alert(alert);
      },
      "mab.process");
}

void MyAlertBuddy::process_alert(const Alert& alert) {
  progress();
  ++alerts_processed_;
  stats_.bump("alerts_processed");

  const auto keyword = config_.classifier.classify(alert);
  if (!keyword) {
    stats_.bump("alerts_unclassified");
    trace_event(alert.id, "classify", "unclassified; dropped");
    if (options_.pessimistic_logging) log_.mark_processed(alert.id, sim_.now());
    return;
  }
  if (traced()) trace_event(alert.id, "classify", "keyword " + *keyword);
  // Aggregation: keyword -> personal category; unmapped keywords fall
  // back to the default category or to the keyword itself.
  std::string category = config_.categories.category_for(*keyword)
                             .value_or(options_.default_category.empty()
                                           ? *keyword
                                           : options_.default_category);
  if (traced()) trace_event(alert.id, "aggregate", "category " + category);
  // Admission control: over-limit alerts coalesce into a digest (or
  // shed, both accounted and traced) instead of entering the delivery
  // path. High-importance alerts always bypass the limiters.
  if (!admit(alert, category)) {
    if (options_.pessimistic_logging) log_.mark_processed(alert.id, sim_.now());
    return;
  }
  // Filtering: a disabled category retains the alert for the digest
  // ("temporarily blocks unwanted alerts, which ... may be useful in
  // the future"); a closed delivery window defers routing until the
  // window next opens.
  if (!config_.categories.category_enabled(category)) {
    stats_.bump("alerts_filtered");
    trace_event(alert.id, "filter", "category disabled; retained for digest");
    digest_.add(alert, category, sim_.now());
    if (options_.pessimistic_logging) log_.mark_processed(alert.id, sim_.now());
    return;
  }
  const auto window = config_.categories.window_for(category);
  if (window.has_value() && !window->contains(sim_.now())) {
    stats_.bump("alerts_deferred");
    trace_event(alert.id, "filter", "delivery window closed; deferred");
    const TimePoint open_at = next_occurrence(sim_.now(), window->start);
    // Deliberately NOT marked processed: if this incarnation dies
    // before the window opens, the recovery scan replays the alert and
    // it is re-deferred.
    sim_.at(
        open_at,
        [this, alive = alive_, alert, category] {
          if (!*alive || !running()) return;
          stats_.bump("alerts_deferred_delivered");
          route(alert, category);
          if (options_.pessimistic_logging) {
            log_.mark_processed(alert.id, sim_.now());
          }
        },
        "mab.deferred_route");
    return;
  }
  trace_event(alert.id, "filter", "pass");
  route(alert, category);
  if (options_.pessimistic_logging) log_.mark_processed(alert.id, sim_.now());
}

bool MyAlertBuddy::admit(const Alert& alert, const std::string& category) {
  if (!user_bucket_.enabled() && !source_buckets_.enabled()) return true;
  if (alert.high_importance) {
    stats_.bump("admission.critical_bypass");
    return true;
  }
  const TimePoint now = sim_.now();
  // Check every limiter before taking from any: an alert blocked by
  // one bucket must not burn tokens in another.
  if (user_bucket_.can_take(now) && source_buckets_.can_take(alert.source, now)) {
    user_bucket_.try_take(now);
    source_buckets_.try_take(alert.source, now);
    stats_.bump("admission.admitted");
    return true;
  }
  stats_.bump("admission.over_limit");
  if (options_.overload.coalesce_enabled) {
    coalesce(alert, category);
    return false;
  }
  // No coalescing configured: shed with explicit accounting.
  stats_.bump("admission.shed");
  trace_event(alert.id, "shed", "over admission limit");
  if (shed_observer_) shed_observer_(alert.id, sim_.now());
  return false;
}

void MyAlertBuddy::coalesce(const Alert& alert, const std::string& category) {
  const auto result = coalescer_.add(alert, category, sim_.now());
  if (result == AlertCoalescer::FoldResult::kDuplicate) {
    // Already folded (a recovery replay of an alert whose coalesce
    // outlived the crash in the host-owned coalescer). Never counted
    // twice.
    stats_.bump("coalesce.duplicates");
    trace_event(alert.id, "coalesce", "already folded; duplicate");
    return;
  }
  stats_.bump("coalesce.folded");
  if (traced()) {
    trace_event(alert.id, "coalesce", "folded into " + category + " window");
  }
  if (coalesce_observer_) coalesce_observer_(alert.id, sim_.now());
  if (result == AlertCoalescer::FoldResult::kBatchFull) {
    flush_coalescer(/*all=*/false, "batch full");
  } else if (result == AlertCoalescer::FoldResult::kOpenedWindow) {
    sim_.after(
        coalescer_.options().window,
        [this, alive = alive_] {
          if (!*alive || !running()) return;
          flush_coalescer(/*all=*/false, "window closed");
        },
        "mab.coalesce_flush");
  }
}

void MyAlertBuddy::flush_coalescer(bool all, const char* trigger) {
  const auto digests = all ? coalescer_.flush_all(sim_.now())
                           : coalescer_.flush_due(sim_.now());
  for (const auto& digest : digests) {
    if (traced()) {
      trace_event(digest.alert_id(), "digest",
                  strformat("%zu %s alert(s) coalesced (%s)", digest.count,
                            digest.category.c_str(), trigger));
      // Representative trace links: the folded alerts' lifecycles
      // point at the digest that carried them, and vice versa.
      for (const auto& rep : digest.representative_ids) {
        trace_event(rep, "digest_link", "carried by " + digest.alert_id());
        trace_event(digest.alert_id(), "digest_link", "represents " + rep);
      }
    }
    emit_coalesced_digest(digest);
  }
}

void MyAlertBuddy::emit_coalesced_digest(const AlertCoalescer::Digest& digest) {
  Alert alert;
  alert.source = "simba.coalescer";
  alert.native_category = digest.category;
  alert.subject = digest.subject();
  alert.body = digest.body();
  alert.created_at = sim_.now();
  alert.id = digest.alert_id();
  stats_.bump("coalesce.digests_emitted");
  route(alert, digest.category);
}

void MyAlertBuddy::route(const Alert& alert, const std::string& category) {
  const auto subscriptions = config_.subscriptions.for_category(category);
  if (subscriptions.empty()) {
    stats_.bump("alerts_unsubscribed");
    if (traced()) {
      trace_event(alert.id, "route", "no subscription for " + category);
    }
    return;
  }
  for (const auto& sub : subscriptions) {
    const UserProfile* profile = config_.profile_for(sub.user);
    if (profile == nullptr) {
      stats_.bump("routing.unknown_user");
      if (traced()) trace_event(alert.id, "route", "unknown user " + sub.user);
      continue;
    }
    const DeliveryMode* mode = profile->mode(sub.mode_name);
    if (mode == nullptr) {
      stats_.bump("routing.unknown_mode");
      if (traced()) {
        trace_event(alert.id, "route",
                    "unknown mode " + sub.mode_name + " for " + sub.user);
      }
      continue;
    }
    stats_.bump("routing.dispatched");
    if (traced()) {
      trace_event(alert.id, "route",
                  "dispatch " + sub.mode_name + " for " + sub.user);
    }
    DeliveryPriority priority = DeliveryPriority::kNormal;
    if (alert.high_importance) {
      priority = DeliveryPriority::kCritical;
    } else if (is_digest_alert_id(alert.id)) {
      priority = DeliveryPriority::kDigest;
    }
    engine_->deliver(
        alert, profile->addresses(), *mode,
        [this, alive = alive_,
         alert_id = alert.id](const DeliveryOutcome& outcome) {
          if (!*alive) return;
          if (outcome.shed) {
            stats_.bump("routing.shed");
            if (shed_observer_) shed_observer_(alert_id, sim_.now());
            return;
          }
          stats_.bump(outcome.delivered ? "routing.delivered"
                                        : "routing.undeliverable");
        },
        priority);
  }
}

void MyAlertBuddy::send_digest(const char* trigger) {
  if (digest_.empty()) return;
  // Digest goes to the owner's first enabled email address; without
  // one the alerts stay retained for a later attempt.
  const Address* target = nullptr;
  for (const Address* address :
       config_.profile.addresses().of_type(CommType::kEmail)) {
    if (address->enabled) {
      target = address;
      break;
    }
  }
  if (target == nullptr) {
    stats_.bump("digest.no_email_address");
    return;
  }
  email::Email mail;
  mail.to = target->value;
  mail.subject = strformat("SIMBA digest: %zu filtered alert(s)",
                           digest_.size());
  mail.body = digest_.render_body();
  mail.headers["simba_digest"] = trigger;
  const Status status = email_.send_email(std::move(mail));
  if (status.ok()) {
    stats_.bump("digest.sent");
    log_info("mab", strformat("digest (%s) sent with %zu alert(s)", trigger,
                              digest_.size()));
    digest_.drain();
  } else {
    // Keep everything retained; tomorrow's digest retries.
    stats_.bump("digest.send_failed");
  }
}

// ---------------------------------------------------------------------------
// Commands (remote administration, Section 4.2.1 kind 3 + Section 3.3)
// ---------------------------------------------------------------------------

void MyAlertBuddy::handle_command(const std::string& text,
                                  const std::string& from_user) {
  stats_.bump("commands");
  log_info("mab", "command from " + from_user + ": " + text);
  const std::string upper = to_lower(text);
  if (icontains(text, "SIMBA REJUVENATE")) {
    request_shutdown("remote rejuvenation command");
    return;
  }
  if (icontains(text, "SIMBA DIGEST")) {
    send_digest("on demand");
    stats_.bump("commands.digest");
    return;
  }
  // "SIMBA DISABLE ADDRESS <friendly name>" / ENABLE
  auto address_command = [&](const char* verb, bool enabled) -> bool {
    const std::string needle = std::string("simba ") + verb + " address ";
    const std::size_t pos = upper.find(needle);
    if (pos == std::string::npos) return false;
    const std::string name(trim(text.substr(pos + needle.size())));
    const Status status =
        config_.profile.addresses().set_enabled(name, enabled);
    stats_.bump(status.ok() ? "commands.address_toggled"
                            : "commands.failed");
    return true;
  };
  if (address_command("disable", false)) return;
  if (address_command("enable", true)) return;
  // "SIMBA DISABLE CATEGORY <name>" / ENABLE
  auto category_command = [&](const char* verb, bool enabled) -> bool {
    const std::string needle = std::string("simba ") + verb + " category ";
    const std::size_t pos = upper.find(needle);
    if (pos == std::string::npos) return false;
    const std::string name(trim(text.substr(pos + needle.size())));
    config_.categories.set_category_enabled(name, enabled);
    stats_.bump("commands.category_toggled");
    return true;
  };
  if (category_command("disable", false)) return;
  if (category_command("enable", true)) return;
  stats_.bump("commands.unknown");
}

// ---------------------------------------------------------------------------
// Self-stabilization and sanity
// ---------------------------------------------------------------------------

void MyAlertBuddy::sanity_tick() {
  if (!running()) return;
  progress();
  // Direct health probe against the IM client; a throwing undocumented
  // interface here is unhandleable and terminates MAB (paper: the
  // dominant cause of the 36 MDC restarts).
  try {
    (void)im_.client().is_logged_in();
  } catch (const gui::AutomationError& e) {
    fail_with(std::string("IM exception in health probe: ") + e.what());
    return;
  }
  // These callbacks ride manager-internal RPCs and can land after this
  // incarnation is gone; the alive token guards them.
  im_.sanity_check(
      [this, alive = alive_](const automation::SanityReport& report) {
        if (!*alive) return;
        if (!report.healthy) stats_.bump("sanity.im_unhealthy");
      });
  email_.sanity_check(
      [this, alive = alive_](const automation::SanityReport& report) {
        if (!*alive) return;
        if (!report.healthy) stats_.bump("sanity.email_unhealthy");
      });
}

void MyAlertBuddy::stabilization_tick() {
  if (!running()) return;
  progress();
  // Invariant 1: no unprocessed dialog boxes. The managers' monkey
  // threads click known ones; unknown captions are invariant violations
  // we cannot rectify in place (and a restart will not clear a
  // system-owned modal) — they are counted and left for the operator,
  // exactly the paper's two unrecovered dialog failures.
  const auto unknown_im = im_.unknown_dialog_captions();
  const auto unknown_email = email_.unknown_dialog_captions();
  if (!unknown_im.empty() || !unknown_email.empty()) {
    stats_.bump("stabilize.unknown_dialogs_pending");
  }
  // The check delegates clearing to the dialog-handling API; with the
  // monkey mechanism disabled (E8 ablation) nothing can click.
  if (im_.monkey_active()) im_.monkey_sweep();
  if (email_.monkey_active()) email_.monkey_sweep();

  // Invariant 2: no unprocessed IMs/emails sitting in client windows
  // because a new-message event was lost.
  if (im_.client().unread_count() > 0) {
    stats_.bump("stabilize.unprocessed_ims");
    pump_im();
  }
  if (email_.client().unread_count() > 0) {
    stats_.bump("stabilize.unprocessed_emails");
    pump_email();
  }

  // Invariant 3: resource consumption. Our own bloat is rectified by
  // graceful rejuvenation; a bloated client is restarted through the
  // Shutdown/Restart API.
  if (memory_mb() > options_.memory_soft_limit_mb) {
    stats_.bump("stabilize.memory_rejuvenation");
    request_shutdown("self-stabilization: memory over soft limit");
    return;
  }
  if (im_.client().memory_mb() > options_.memory_soft_limit_mb) {
    stats_.bump("stabilize.im_client_rejuvenated");
    im_.restart();
  }
  if (email_.client().memory_mb() > options_.memory_soft_limit_mb) {
    stats_.bump("stabilize.email_client_rejuvenated");
    email_.restart();
  }
  // Hard limit: past this the process wedges instead of recovering —
  // what happens when self-stabilization is ablated away.
  if (memory_mb() > options_.memory_hard_limit_mb) force_hang();
}

}  // namespace simba::core
