// Pessimistic logging for MyAlertBuddy (Section 4.2.1).
//
// "Upon receiving an IM, MyAlertBuddy instructs the SIMBA library to
// save a copy to a log file before sending the acknowledgement. After
// processing the IM, MyAlertBuddy marks the saved copy as 'Processed'.
// Every time MyAlertBuddy is restarted, it first checks the log file
// for unprocessed IMs before accepting new alerts."
//
// The log models a disk file: it survives MAB restarts (it is owned by
// the host machine, not the MAB incarnation) and each append costs a
// synchronous write latency — the difference between the paper's <1 s
// one-way IM time and the ~1.5 s acknowledged time (experiments E1/E2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alert.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/trace.h"

namespace simba::core {

class AlertLog {
 public:
  explicit AlertLog(Duration write_latency = millis(250))
      : write_latency_(write_latency) {}

  /// Synchronous-write cost the caller must spend before acking.
  Duration write_latency() const { return write_latency_; }

  /// Records an alert as Received. Idempotent per alert id: a resent
  /// alert refreshes nothing and reports whether it was already known
  /// (duplicate suppression at the MAB).
  /// Returns true if this is the first time the alert id is seen.
  bool append(const Alert& alert, TimePoint now);

  void mark_processed(const std::string& alert_id, TimePoint now);

  /// Crash-window model (sim/chaos.h): power dies at `now`. Appends
  /// still inside their synchronous-write window (received less than
  /// write_latency ago, not yet processed) may be torn from the disk
  /// with probability `torn_probability` each. Exactly the window
  /// pessimistic logging protects: a torn record can never have been
  /// acked, because the ack only goes out after the write completes —
  /// so the source still holds the alert and will fail over. Returns
  /// the ids torn (counted under "torn_appends").
  std::vector<std::string> power_loss(TimePoint now, Rng& rng,
                                      double torn_probability);

  bool contains(const std::string& alert_id) const;
  bool processed(const std::string& alert_id) const;

  /// Unprocessed alerts in arrival order — the restart recovery scan.
  std::vector<Alert> unprocessed() const;

  std::size_t size() const { return records_.size(); }
  const Counters& stats() const { return stats_; }

  /// Arms lifecycle tracing (null disables it). A fresh append emits a
  /// span covering its synchronous-write window; duplicates, processed
  /// marks, and torn records emit instant events.
  void set_trace(util::Trace* trace) { trace_ = trace; }

  /// Checkpoint state (sim/snapshot.h). The log *is* the paper's
  /// persistence story, so it is carried verbatim across a
  /// crash-restart: records in arrival order plus the counter bag; the
  /// id index is rebuilt on restore.
  struct SavedRecord {
    Alert alert;
    TimePoint received_at{};
    TimePoint processed_at{};
    bool processed = false;
  };
  struct State {
    std::vector<SavedRecord> records;
    Counters stats;
  };
  State save_state() const;
  void restore_state(State state);

 private:
  struct Record {
    Alert alert;
    TimePoint received_at{};
    TimePoint processed_at{};
    bool processed = false;
  };

  Duration write_latency_;
  std::vector<Record> records_;  // arrival order
  /// alert id -> records_ slot. Lookup-only (rebuilt on truncation and
  /// restore); the per-alert dedup probe is a flat-map hash hit.
  util::FlatMap<std::string, std::size_t> index_;
  Counters stats_;
  util::Trace* trace_ = nullptr;
};

}  // namespace simba::core
