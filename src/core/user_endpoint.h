// The human end of the pipeline: the user's own devices and habits.
//
// Delivery-mode dependability is only meaningful against a model of
// when the user actually *sees* a message (the paper's dependability is
// "the overall user experience"): IMs pop up while she is at her desk
// and signed in; SMS reaches her phone within carrier time unless it is
// off; email is read at the next mailbox check. This model is what
// experiment E7 scores strategies against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "email/email_server.h"
#include "gui/client_app.h"
#include "gui/desktop.h"
#include "im/im_client.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sms/sms.h"
#include "util/flat_map.h"
#include "util/stats.h"

namespace simba::core {

struct UserEndpointOptions {
  std::string name = "user";
  std::string im_account;      // default: "<name>"
  std::string phone_number;    // default: "4255550100"
  std::string email_account;   // default: "<name>@home.example.net"
  /// Windows when the user is away from the desktop (IMs not seen, no
  /// acks until return).
  sim::OutagePlan away_plan;
  /// Windows when the phone is off / out of coverage.
  sim::OutagePlan phone_outage_plan;
  /// Windows when the user's IM client is signed out entirely.
  sim::OutagePlan im_offline_plan;
  /// How often the user checks email while at the desk.
  Duration email_check_interval = minutes(30);
  /// Reaction time from an IM popping up to the user acknowledging it.
  Duration ack_reaction_mean = seconds(8);
};

/// Tracks, per alert id, when the user first saw it and on which
/// channel; sends application-level acknowledgements for IMs that
/// request one.
class UserEndpoint {
 public:
  UserEndpoint(sim::Simulator& sim, net::MessageBus& bus,
               im::ImServer& im_server, email::EmailServer& email_server,
               sms::SmsGateway& sms_gateway, UserEndpointOptions options);
  ~UserEndpoint() {
    email_task_.cancel();
    presence_task_.cancel();
  }

  void start();

  const std::string& im_account() const { return options_.im_account; }
  const std::string& email_account() const { return options_.email_account; }
  /// The privacy-sensitive SMS address (Section 1).
  std::string sms_address() const {
    return gateway_.email_address(options_.phone_number);
  }

  bool at_desk() const { return !options_.away_plan.down_at(sim_.now()); }

  /// First time the user saw the alert on any channel.
  std::optional<TimePoint> first_seen(const std::string& alert_id) const;
  /// Channel the first sighting came on ("im", "sms", "email").
  std::optional<std::string> first_seen_channel(
      const std::string& alert_id) const;
  /// Total sightings (duplicate deliveries the user had to discard —
  /// detected via the timestamps the paper mentions).
  int sightings(const std::string& alert_id) const;
  std::size_t alerts_seen() const { return seen_.size(); }

  sms::Phone& phone() { return *phone_; }
  const Counters& stats() const { return stats_; }

  /// Fires on every sighting, duplicates included — the live feed the
  /// invariant checker (sim/invariants.h) consumes to prove no phantom
  /// or silently-lost deliveries.
  using SightingObserver = std::function<void(
      const std::string& alert_id, const std::string& channel, TimePoint at)>;
  void set_sighting_observer(SightingObserver observer) {
    sighting_observer_ = std::move(observer);
  }

  /// Checkpoint state (sim/snapshot.h): what the user has already seen
  /// (drives duplicate detection and delivery scoring) plus the mailbox
  /// read cursor, which must travel with the email server's mailboxes
  /// so a restored user neither re-reads nor skips mail.
  struct SightingState {
    std::string alert_id;
    TimePoint first{};
    std::string channel;
    int count = 0;
  };
  struct State {
    std::vector<SightingState> sightings;  // sorted by alert id
    std::uint64_t email_cursor = 0;
    Counters stats;
  };
  State save_state() const;
  /// Call on a freshly constructed endpoint, before start().
  void restore_state(State state);

 private:
  struct Sighting {
    TimePoint first{};
    std::string channel;
    int count = 0;
  };

  void pump_im();
  void check_email();
  void record(const std::string& alert_id, const std::string& channel,
              TimePoint at);
  void maybe_ack(const im::ImMessage& message, TimePoint seen_at);
  void enforce_im_presence();

  sim::Simulator& sim_;
  im::ImServer& im_server_;
  email::EmailServer& email_server_;
  sms::SmsGateway& gateway_;
  UserEndpointOptions options_;
  Rng rng_;
  gui::Desktop desktop_;  // the user's own machine; kept fault-free
  std::unique_ptr<im::ImClientApp> im_client_;
  std::unique_ptr<sms::Phone> phone_;
  std::size_t email_cursor_ = 0;
  /// Per-alert sightings: record() is a hash probe; save_state
  /// serialises through sorted_items() so snapshot images keep the
  /// old sorted-map byte order.
  util::FlatMap<std::string, Sighting> seen_;
  SightingObserver sighting_observer_;
  sim::TaskHandle email_task_;
  sim::TaskHandle presence_task_;
  Counters stats_;
};

}  // namespace simba::core
