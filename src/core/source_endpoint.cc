#include "core/source_endpoint.h"

#include "util/log.h"

namespace simba::core {

SourceEndpoint::SourceEndpoint(sim::Simulator& sim, net::MessageBus& bus,
                               im::ImServer& im_server,
                               email::EmailServer& email_server,
                               SourceEndpointOptions options)
    : sim_(sim),
      im_server_(im_server),
      email_server_(email_server),
      options_(std::move(options)),
      desktop_(sim) {
  if (options_.im_account.empty()) options_.im_account = options_.name;
  if (options_.email_address.empty()) {
    options_.email_address = options_.name + "@svc.example.net";
  }
  im_server_.register_account(options_.im_account);
  email_server_.create_mailbox(options_.email_address);
  im_client_ = std::make_unique<im::ImClientApp>(
      sim_, desktop_, bus, im_server_.address(), options_.im_account,
      options_.im_client_profile, options_.im_client_config);
  email_client_ = std::make_unique<email::EmailClientApp>(
      sim_, desktop_, email_server_, options_.email_address,
      options_.email_client_profile, options_.email_client_config);
  im_manager_ =
      std::make_unique<automation::ImManager>(sim_, desktop_, *im_client_);
  email_manager_ = std::make_unique<automation::EmailManager>(sim_, desktop_,
                                                              *email_client_);
  engine_ = std::make_unique<DeliveryEngine>(sim_, im_manager_.get(),
                                             email_manager_.get());
}

void SourceEndpoint::start() {
  im_manager_->start();
  email_manager_->start();
  // Acks from the buddy arrive as IMs; route them into the engine.
  im_manager_->set_on_new_message([this] { pump_im(); });
  // Periodic sanity keeps the source's client signed in (sources run
  // the same SIMBA library, so they get the same protection).
  sanity_task_ = sim_.every(
      minutes(1),
      [this] {
        im_manager_->sanity_check(nullptr);
        email_manager_->sanity_check(nullptr);
        pump_im();  // sweep for acks whose events were lost
      },
      (sanity_label_ = "source." + options_.name + ".sanity").c_str());
}

void SourceEndpoint::set_target(const std::string& target_im,
                                const std::string& target_email) {
  target_ = AddressBook("target");
  target_.put(Address{"Buddy IM", CommType::kIm, target_im, true});
  target_.put(Address{"Buddy email", CommType::kEmail, target_email, true});
  mode_ = DeliveryMode("im-ack-then-email");
  DeliveryBlock& im_block = mode_.add_block(options_.im_block_timeout);
  im_block.actions.push_back(DeliveryAction{"Buddy IM", /*require_ack=*/true});
  DeliveryBlock& email_block = mode_.add_block(options_.email_block_timeout);
  email_block.actions.push_back(DeliveryAction{"Buddy email", false});
}

void SourceEndpoint::send_alert(const Alert& alert,
                                DeliveryEngine::DoneCallback done) {
  if (mode_.empty()) {
    log_warn("source." + options_.name, "no target configured; alert dropped");
    stats_.bump("alerts_dropped_no_target");
    if (done) {
      DeliveryOutcome outcome;
      outcome.detail = "no target";
      done(outcome);
    }
    return;
  }
  stats_.bump("alerts_sent");
  engine_->deliver(alert, target_, mode_,
                   [this, done = std::move(done)](const DeliveryOutcome& o) {
                     stats_.bump(o.delivered ? "alerts_delivered"
                                             : "alerts_undeliverable");
                     if (done) done(o);
                   });
}

AlertSink SourceEndpoint::sink() {
  return [this](const Alert& alert) { send_alert(alert); };
}

void SourceEndpoint::pump_im() {
  for (const auto& message : im_manager_->fetch_unread_safe()) {
    if (!engine_->handle_incoming(message)) stats_.bump("im.ignored");
  }
}

}  // namespace simba::core
