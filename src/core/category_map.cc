#include "core/category_map.h"

#include "util/strings.h"

namespace simba::core {

void CategoryMap::map_keyword(const std::string& keyword,
                              const std::string& personal_category) {
  keyword_to_category_[to_lower(keyword)] = personal_category;
}

std::optional<std::string> CategoryMap::category_for(
    const std::string& keyword) const {
  const auto it = keyword_to_category_.find(to_lower(keyword));
  if (it == keyword_to_category_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> CategoryMap::keywords_of(
    const std::string& category) const {
  std::vector<std::string> out;
  for (const auto& [keyword, cat] : keyword_to_category_) {
    if (cat == category) out.push_back(keyword);
  }
  return out;
}

void CategoryMap::set_category_enabled(const std::string& category,
                                       bool enabled) {
  if (enabled) {
    disabled_.erase(category);
  } else {
    disabled_[category] = true;
  }
}

bool CategoryMap::category_enabled(const std::string& category) const {
  return disabled_.count(category) == 0;
}

void CategoryMap::set_delivery_window(const std::string& category,
                                      DailyWindow window) {
  windows_[category] = window;
}

void CategoryMap::clear_delivery_window(const std::string& category) {
  windows_.erase(category);
}

std::vector<std::string> CategoryMap::disabled_categories() const {
  std::vector<std::string> out;
  for (const auto& [category, flag] : disabled_) out.push_back(category);
  return out;
}

std::optional<DailyWindow> CategoryMap::window_for(
    const std::string& category) const {
  const auto it = windows_.find(category);
  if (it == windows_.end()) return std::nullopt;
  return it->second;
}

bool CategoryMap::deliverable(const std::string& category, TimePoint t) const {
  if (!category_enabled(category)) return false;
  const auto it = windows_.find(category);
  if (it == windows_.end()) return true;
  return it->second.contains(t);
}

}  // namespace simba::core
