// The communication layer's delivery engine: executes a delivery mode
// for one alert against one address book.
//
// Semantics (Sections 3.2, 4.1): blocks are ordered fallback stages.
// Within a block, every action mapping to an *enabled* address is
// attempted (in parallel — multiple addresses per block exist "to
// accommodate communication delays and failures"). Action successes
// come in two strengths:
//
//   * STRONG — an IM with requireAck whose application-level
//     acknowledgement arrived, or an IM without requireAck that the
//     service accepted for an online recipient. A strong success
//     completes the block (and the delivery) immediately.
//   * WEAK — an email or SMS the relay accepted. Those channels give
//     no better signal (which is exactly why they are fallbacks). A
//     weak success completes the block immediately ONLY if the block
//     contains no ack-requiring action; otherwise it is remembered,
//     and if the awaited ack never arrives by the block timeout the
//     delivery completes on the weak success instead of falling back.
//
// If nothing succeeded before the block's timeout (or every action
// failed outright), the next block is tried. A block whose actions are
// all disabled fails immediately ("Any delivery block that contains
// [only] an SMS action will automatically fail and fall back").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "automation/email_manager.h"
#include "automation/im_manager.h"
#include "core/address_book.h"
#include "core/alert.h"
#include "core/delivery_mode.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/stats.h"
#include "util/trace.h"

namespace simba::core {

/// Header keys SIMBA stamps on IM/email traffic.
namespace wire {
inline constexpr char kKind[] = "simba_kind";       // alert | ack | command
inline constexpr char kKindAlert[] = "alert";
inline constexpr char kKindAck[] = "ack";
inline constexpr char kKindCommand[] = "command";
inline constexpr char kRequiresAck[] = "simba_requires_ack";
inline constexpr char kAckFor[] = "simba_ack_for";  // alert id being acked
}  // namespace wire

struct DeliveryOutcome {
  bool delivered = false;
  /// The delivery never ran: its priority lane was full and the engine
  /// dropped it with explicit accounting (never silently).
  bool shed = false;
  /// 0-based index of the block that succeeded; -1 if none.
  int block_used = -1;
  /// Total messages actually sent while delivering (the "irritability
  /// factor" metric of experiment E7).
  int messages_sent = 0;
  TimePoint completed_at{};
  std::string detail;
};

/// Dispatch priority under overload. Strict: a queued CRITICAL delivery
/// always dispatches before NORMAL, and NORMAL before DIGEST.
enum class DeliveryPriority { kCritical = 0, kNormal = 1, kDigest = 2 };

const char* to_string(DeliveryPriority priority);

struct DeliveryEngineOptions {
  /// Deliveries allowed to run concurrently. 0 = unlimited: every
  /// deliver() dispatches immediately and the lane machinery is
  /// bypassed entirely (the pre-overload behavior, event-for-event).
  int max_concurrent = 0;
  /// Queued deliveries each lane holds while waiting for a dispatch
  /// slot; one more is shed. 0 = unbounded lanes.
  std::size_t lane_bound = 0;
  /// Strict priority across CRITICAL/NORMAL/DIGEST lanes. When false
  /// every delivery shares one FIFO lane — the "defenses off"
  /// configuration bench_storm measures against.
  bool priority_lanes = true;
};

class DeliveryEngine {
 public:
  /// Either manager may be null; actions needing it then fail.
  DeliveryEngine(sim::Simulator& sim, automation::ImManager* im,
                 automation::EmailManager* email,
                 DeliveryEngineOptions options = {});
  ~DeliveryEngine();

  using DoneCallback = std::function<void(const DeliveryOutcome&)>;

  /// Starts an asynchronous delivery. `done` fires exactly once —
  /// immediately with outcome.shed set if the priority lane is full.
  void deliver(const Alert& alert, const AddressBook& addresses,
               const DeliveryMode& mode, DoneCallback done,
               DeliveryPriority priority = DeliveryPriority::kNormal);

  /// Feed incoming IMs here; returns true if the message was an
  /// acknowledgement this engine was waiting for (and consumed).
  bool handle_incoming(const im::ImMessage& message);

  /// Number of deliveries still in flight (dispatched, not queued).
  std::size_t in_flight() const { return deliveries_.size(); }

  /// Deliveries queued in lanes awaiting a dispatch slot.
  std::size_t queued() const;

  const Counters& stats() const { return stats_; }

  /// Arms lifecycle tracing (null disables it): per-block and
  /// per-action attempts, fallbacks, and skip reasons.
  void set_trace(util::Trace* trace) { trace_ = trace; }

 private:
  struct Delivery {
    std::uint64_t id;
    Alert alert;
    AddressBook addresses;  // snapshot: enable/disable state at send time
    DeliveryMode mode;
    DoneCallback done;
    DeliveryPriority priority = DeliveryPriority::kNormal;
    std::size_t block_index = 0;
    int messages_sent = 0;
    /// Actions still able to succeed in the current block.
    int actions_pending = 0;
    /// Ack-required IM sends accepted and now waiting for the ack.
    int acks_outstanding = 0;
    /// Whether the current block has any runnable ack-requiring action.
    bool block_awaits_ack = false;
    /// Weak (relay-accepted) successes recorded in the current block.
    int weak_successes = 0;
    sim::EventId block_timer = 0;
    TimePoint started_at{};
    TimePoint block_started_at{};
  };

  /// Moves the delivery into the running set and starts its first
  /// block. Counted as started only here, never at enqueue time.
  void dispatch(Delivery d);
  /// Dispatches queued deliveries while slots are free, highest
  /// priority lane first.
  void pump();
  void run_block(std::uint64_t delivery_id);
  void start_action(std::uint64_t delivery_id, const DeliveryAction& action,
                    std::size_t block_index);
  void action_failed(std::uint64_t delivery_id, std::size_t block_index,
                     const std::string& reason);
  void action_succeeded(std::uint64_t delivery_id, std::size_t block_index,
                        const std::string& how);
  void advance_block(std::uint64_t delivery_id);
  void finish(std::uint64_t delivery_id, bool delivered,
              const std::string& detail);
  /// True when lifecycle tracing is armed; detail-building call sites
  /// check this first so untraced runs skip the string construction.
  bool traced() const { return trace_ != nullptr; }
  /// Instant trace event on the delivery's alert (no-op untraced).
  void trace_event(const Delivery& d, const char* stage, std::string detail);

  sim::Simulator& sim_;
  automation::ImManager* im_;
  automation::EmailManager* email_;
  DeliveryEngineOptions options_;
  /// Engines die with their MAB incarnation while sends and timers may
  /// still be in flight; every async callback holds this token and
  /// bails out once the engine is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// In-flight deliveries and ack waiters are lookup-only flat maps:
  /// nothing observes their iteration order (the cancel sweeps erase by
  /// value predicate), and find/erase run per message on the hot path.
  util::FlatMap<std::uint64_t, Delivery> deliveries_;
  /// "<alert_id>|<address>" -> delivery id waiting for that ack.
  util::FlatMap<std::string, std::uint64_t> ack_waiters_;
  std::uint64_t next_delivery_ = 1;
  /// Priority lanes awaiting a dispatch slot (kCritical/kNormal/
  /// kDigest; only index 0 is used when priority_lanes is off).
  // simba-lint: bounded(options_.lane_bound, shed in deliver())
  std::deque<Delivery> lanes_[3];
  /// Deliveries currently holding one of max_concurrent slots.
  int active_ = 0;
  /// Re-entrancy guard: a run_block that finishes synchronously calls
  /// pump() from inside the outer pump loop.
  bool pumping_ = false;
  Counters stats_;
  util::Trace* trace_ = nullptr;
};

}  // namespace simba::core
