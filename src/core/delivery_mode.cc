#include "core/delivery_mode.h"

#include "util/strings.h"
#include "xml/xml.h"

namespace simba::core {

DeliveryBlock& DeliveryMode::add_block(Duration timeout) {
  blocks_.push_back(DeliveryBlock{timeout, {}});
  return blocks_.back();
}

void DeliveryMode::append_to(xml::Element& parent) const {
  xml::Element& root = parent.add_child("deliveryMode");
  root.set_attr("name", name_);
  for (const auto& block : blocks_) {
    xml::Element& b = root.add_child("block");
    b.set_attr("timeout",
               std::to_string(block.timeout.count() / 1'000'000) + "s");
    for (const auto& action : block.actions) {
      xml::Element& a = b.add_child("action");
      a.set_attr("address", action.address_name);
      if (action.require_ack) a.set_attr("requireAck", "true");
    }
  }
}

std::string DeliveryMode::to_xml() const {
  xml::Element holder("holder");
  append_to(holder);
  return holder.children()[0]->serialize();
}

Result<DeliveryMode> DeliveryMode::from_xml(const std::string& xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return make_error(doc.error());
  return from_element(doc.value().root());
}

Result<DeliveryMode> DeliveryMode::from_element(const xml::Element& root) {
  if (root.name() != "deliveryMode") {
    return make_error("expected <deliveryMode> root, got <" + root.name() +
                      ">");
  }
  DeliveryMode mode(root.attr_or("name", ""));
  for (const auto& child : root.children()) {
    if (child->name() != "block") continue;
    Duration timeout = seconds(30);
    const std::string raw_timeout = child->attr_or("timeout", "");
    if (!raw_timeout.empty()) {
      std::string digits = raw_timeout;
      if (!digits.empty() && (digits.back() == 's' || digits.back() == 'S')) {
        digits.pop_back();
      }
      try {
        const double secs = std::stod(digits);
        if (secs <= 0) return make_error("non-positive block timeout");
        timeout = seconds(secs);
      } catch (...) {
        return make_error("bad block timeout: " + raw_timeout);
      }
    }
    DeliveryBlock& block = mode.add_block(timeout);
    for (const auto& action_el : child->children()) {
      if (action_el->name() != "action") continue;
      DeliveryAction action;
      action.address_name = action_el->attr_or("address", "");
      if (action.address_name.empty()) {
        return make_error("<action> missing address attribute");
      }
      action.require_ack =
          iequals(action_el->attr_or("requireAck", "false"), "true");
      block.actions.push_back(std::move(action));
    }
    if (block.actions.empty()) {
      return make_error("<block> with no actions");
    }
  }
  if (mode.empty()) return make_error("<deliveryMode> with no blocks");
  return mode;
}

DeliveryMode DeliveryMode::sample_urgent_mode() {
  DeliveryMode mode("Urgent");
  DeliveryBlock& first = mode.add_block(seconds(45));
  first.actions.push_back(DeliveryAction{"MSN IM", /*require_ack=*/true});
  first.actions.push_back(DeliveryAction{"Cell SMS", /*require_ack=*/false});
  DeliveryBlock& second = mode.add_block(seconds(60));
  second.actions.push_back(DeliveryAction{"Work email", false});
  second.actions.push_back(DeliveryAction{"Home email", false});
  return mode;
}

}  // namespace simba::core
