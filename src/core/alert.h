// The alert: a one-way, user-subscribed notification (Section 1:
// "Alerts refer to the delivery of user-subscribed information to the
// user"). Every alert source in the system — information services, web
// store proxies, Aladdin, WISH, the desktop assistant — produces these,
// and SIMBA's job is to deliver them dependably.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/flat_map.h"
#include "util/time.h"

namespace simba::core {

struct Alert {
  /// Which service produced it ("yahoo.alerts", "aladdin", "wish", ...).
  std::string source;
  /// The source's own category label, before MyAlertBuddy re-classifies
  /// it ("Stocks", "Sensor ON", "Location", ...). For email-only legacy
  /// sources this keyword may live in the sender name or subject line
  /// instead; the Alert Classifier knows where to look per source.
  std::string native_category;
  std::string subject;
  std::string body;
  bool high_importance = false;
  TimePoint created_at{};
  /// Unique id assigned at creation; flows end-to-end through IM
  /// headers / email headers so experiments can trace delivery latency
  /// and detect duplicates.
  std::string id;
  /// Ordered: attributes serialise into wire headers in sorted order.
  // simba-lint: ordered
  std::map<std::string, std::string> attributes;
};

using AlertSink = std::function<void(const Alert&)>;

/// Builds the wire header map an alert travels with. The snapshot
/// codec serialises it via sorted_items(), so the golden wire bytes
/// match the old ordered map's image.
util::FlatMap<std::string, std::string> alert_headers(const Alert& alert);

/// Reconstructs an alert from wire headers + body (best effort).
Alert alert_from_headers(const util::FlatMap<std::string, std::string>& headers,
                         const std::string& body);

}  // namespace simba::core
