#include "core/rate_limit.h"

namespace simba::core {
namespace {

// Absorbs floating-point dust from repeated fractional refills so a
// bucket refilled in N small steps admits exactly when one refilled
// in a single step of the same total duration would.
constexpr double kSlack = 1e-9;

}  // namespace

bool TokenBucket::try_take(TimePoint now, double tokens) {
  if (!enabled()) return true;
  refill(now);
  if (tokens_ + kSlack < tokens) return false;
  tokens_ -= tokens;
  if (tokens_ < 0.0) tokens_ = 0.0;
  return true;
}

bool TokenBucket::can_take(TimePoint now, double tokens) {
  if (!enabled()) return true;
  refill(now);
  return tokens_ + kSlack >= tokens;
}

double TokenBucket::available(TimePoint now) {
  if (!enabled()) return config_.burst;
  refill(now);
  return tokens_;
}

void TokenBucket::refill(TimePoint now) {
  if (now <= last_refill_) return;
  tokens_ += to_seconds(now - last_refill_) * config_.rate_per_sec;
  if (tokens_ > config_.burst) tokens_ = config_.burst;
  last_refill_ = now;
}

bool KeyedTokenBuckets::can_take(const std::string& key, TimePoint now) {
  if (!enabled()) return true;
  return bucket(key, now).available(now) + kSlack >= 1.0;
}

bool KeyedTokenBuckets::try_take(const std::string& key, TimePoint now) {
  if (!enabled()) return true;
  return bucket(key, now).try_take(now);
}

TokenBucket& KeyedTokenBuckets::bucket(const std::string& key,
                                       TimePoint now) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    it = buckets_.emplace(key, TokenBucket(config_, now)).first;
  }
  return it->second;
}

}  // namespace simba::core
