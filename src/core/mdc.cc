#include "core/mdc.h"

#include "util/log.h"

namespace simba::core {

MasterDaemonController::MasterDaemonController(sim::Simulator& sim,
                                               Options options,
                                               std::function<bool()> probe,
                                               std::function<void()> restart,
                                               std::function<void()> reboot)
    : sim_(sim),
      options_(options),
      probe_(std::move(probe)),
      restart_(std::move(restart)),
      reboot_(std::move(reboot)) {}

void MasterDaemonController::start() {
  stop();
  daemon_up_ = true;
  consecutive_failures_ = 0;
  heartbeat_task_ = sim_.every(options_.check_interval,
                               [this] { heartbeat(); }, "mdc.heartbeat");
}

void MasterDaemonController::stop() {
  heartbeat_task_.cancel();
  if (pending_restart_ != 0) {
    sim_.cancel(pending_restart_);
    pending_restart_ = 0;
  }
}

void MasterDaemonController::heartbeat() {
  if (pending_restart_ != 0) return;  // restart already in flight
  stats_.bump("heartbeats");
  // The real MDC signals an event and waits response_timeout for the
  // reply event; in virtual time the probe answers immediately, so a
  // false reply stands in for the timeout having elapsed.
  if (probe_ && probe_()) {
    consecutive_failures_ = 0;
    daemon_up_ = true;
    return;
  }
  stats_.bump("missed_heartbeats");
  log_warn("mdc", "AreYouWorking() gave no reply; restarting MyAlertBuddy");
  schedule_restart("heartbeat timeout", /*expected=*/false);
}

void MasterDaemonController::notify_terminated(const std::string& reason,
                                               bool expected) {
  if (pending_restart_ != 0) return;
  stats_.bump(expected ? "terminations.expected" : "terminations.unexpected");
  log_info("mdc", "MyAlertBuddy terminated (" + reason + ")");
  schedule_restart(reason, expected);
}

void MasterDaemonController::schedule_restart(const std::string& cause,
                                              bool expected) {
  daemon_up_ = false;
  if (!expected) {
    ++consecutive_failures_;
    stats_.bump("restarts");  // the paper's "36 restarts ... by the MDC"
  } else {
    stats_.bump("rejuvenation_restarts");
  }
  if (!expected && consecutive_failures_ > options_.max_failed_restarts) {
    stats_.bump("reboots");
    log_warn("mdc", "restart threshold exceeded; rebooting machine");
    consecutive_failures_ = 0;
    pending_restart_ = 0;
    if (reboot_) reboot_();  // the host re-creates everything, us included
    return;
  }
  pending_restart_ = sim_.after(
      options_.restart_delay,
      [this, cause] {
        pending_restart_ = 0;
        log_info("mdc", "relaunching MyAlertBuddy after: " + cause);
        daemon_up_ = true;
        if (restart_) restart_();
      },
      "mdc.restart");
}

}  // namespace simba::core
