// Baseline delivery strategies the paper argues against (experiment
// E7):
//
//   * Email-only — "most of the alerts today are delivered as email
//     messages, which are not suitable for delivering time-critical,
//     high-importance alerts."
//   * Aladdin's static redundancy — "Aladdin by default sends all
//     alerts as two emails and two cell phone SMS messages. However,
//     such heavy use of redundancy has not worked well. For critical
//     alerts, there is still no guarantee that any of the four messages
//     can reach the user in time. For less critical alerts, four
//     messages per alert are irritating and cumbersome."
//
// Legacy services submit server-side (no GUI clients): the weakness
// being measured is the channel, not the sender.
#pragma once

#include <string>
#include <vector>

#include "core/alert.h"
#include "email/email_server.h"
#include "util/stats.h"

namespace simba::core {

class LegacyDeliverer {
 public:
  enum class Policy {
    kEmailOnly,
    kSmsOnly,
    kDoubleEmailDoubleSms,  // Aladdin's original default
  };

  LegacyDeliverer(email::EmailServer& email_server, std::string from_address,
                  Policy policy);

  /// The user's real addresses — which the user had to reveal to the
  /// service (the privacy problem MyAlertBuddy removes).
  void set_user_email(std::string address) { user_email_ = std::move(address); }
  void set_user_sms(std::string sms_email_address) {
    user_sms_ = std::move(sms_email_address);
  }

  /// Sends the alert per policy; returns the number of messages
  /// submitted (the irritation metric counts all of them).
  int send(const Alert& alert);

  const Counters& stats() const { return stats_; }

 private:
  void mail_to(const std::string& to, const Alert& alert);

  email::EmailServer& email_;
  std::string from_;
  Policy policy_;
  std::string user_email_;
  std::string user_sms_;
  Counters stats_;
};

const char* to_string(LegacyDeliverer::Policy policy);

}  // namespace simba::core
