#include "core/baseline.h"

namespace simba::core {

const char* to_string(LegacyDeliverer::Policy policy) {
  switch (policy) {
    case LegacyDeliverer::Policy::kEmailOnly: return "email-only";
    case LegacyDeliverer::Policy::kSmsOnly: return "sms-only";
    case LegacyDeliverer::Policy::kDoubleEmailDoubleSms:
      return "2-email+2-sms";
  }
  return "?";
}

LegacyDeliverer::LegacyDeliverer(email::EmailServer& email_server,
                                 std::string from_address, Policy policy)
    : email_(email_server), from_(std::move(from_address)), policy_(policy) {}

void LegacyDeliverer::mail_to(const std::string& to, const Alert& alert) {
  email::Email mail;
  mail.from = from_;
  mail.to = to;
  mail.subject = alert.subject;
  mail.body = alert.body;
  mail.high_importance = alert.high_importance;
  mail.headers = alert_headers(alert);
  if (email_.submit(std::move(mail)).ok()) {
    stats_.bump("submitted");
  } else {
    stats_.bump("submit_failed");
  }
}

int LegacyDeliverer::send(const Alert& alert) {
  int sent = 0;
  auto email_copy = [&] {
    if (user_email_.empty()) return;
    mail_to(user_email_, alert);
    ++sent;
  };
  auto sms_copy = [&] {
    if (user_sms_.empty()) return;
    mail_to(user_sms_, alert);
    ++sent;
  };
  switch (policy_) {
    case Policy::kEmailOnly:
      email_copy();
      break;
    case Policy::kSmsOnly:
      sms_copy();
      break;
    case Policy::kDoubleEmailDoubleSms:
      email_copy();
      email_copy();
      sms_copy();
      sms_copy();
      break;
  }
  stats_.bump("alerts");
  return sent;
}

}  // namespace simba::core
