// Per-user SIMBA profile: the subscription layer's registration state
// (Section 4.1): addresses, personal delivery modes, personal alert
// categories and their category -> delivery-mode assignment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/address_book.h"
#include "core/delivery_mode.h"
#include "util/calendar.h"

namespace simba::core {

class UserProfile {
 public:
  UserProfile() = default;
  explicit UserProfile(std::string user)
      : user_(std::move(user)), addresses_(user_) {}

  const std::string& user() const { return user_; }

  AddressBook& addresses() { return addresses_; }
  const AddressBook& addresses() const { return addresses_; }

  /// Registers (or replaces) a personalized delivery mode.
  Status define_mode(DeliveryMode mode);
  const DeliveryMode* mode(const std::string& name) const;
  std::vector<std::string> mode_names() const;

 private:
  std::string user_;
  AddressBook addresses_;
  // simba-lint: ordered (mode_names() lists modes sorted; config-time)
  std::map<std::string, DeliveryMode> modes_;
};

/// Category subscriptions: "a subscription API for mapping a category
/// name to a user with a particular delivery mode. Each category can
/// have multiple subscribers, each of which can specify a different
/// delivery mode."
class SubscriptionRegistry {
 public:
  struct Subscription {
    std::string category;
    std::string user;
    std::string mode_name;
  };

  Status subscribe(const std::string& category, const std::string& user,
                   const std::string& mode_name);
  void unsubscribe(const std::string& category, const std::string& user);
  std::vector<Subscription> for_category(const std::string& category) const;
  std::vector<std::string> categories() const;
  /// Every subscription, for persistence (core/config_xml.h).
  const std::vector<Subscription>& all() const { return subscriptions_; }
  std::size_t size() const { return subscriptions_.size(); }

 private:
  std::vector<Subscription> subscriptions_;
};

}  // namespace simba::core
