#include "core/alert.h"

namespace simba::core {

util::FlatMap<std::string, std::string> alert_headers(const Alert& alert) {
  util::FlatMap<std::string, std::string> h;
  h["alert_id"] = alert.id;
  h["alert_source"] = alert.source;
  h["alert_category"] = alert.native_category;
  h["alert_subject"] = alert.subject;
  h["alert_importance"] = alert.high_importance ? "high" : "normal";
  h["alert_created_us"] =
      std::to_string(alert.created_at.time_since_epoch().count());
  for (const auto& [k, v] : alert.attributes) h["alert_attr_" + k] = v;
  return h;
}

Alert alert_from_headers(const util::FlatMap<std::string, std::string>& headers,
                         const std::string& body) {
  Alert a;
  auto get = [&](const char* key) {
    const auto it = headers.find(key);
    return it == headers.end() ? std::string{} : it->second;
  };
  a.id = get("alert_id");
  a.source = get("alert_source");
  a.native_category = get("alert_category");
  a.subject = get("alert_subject");
  a.high_importance = get("alert_importance") == "high";
  const std::string created = get("alert_created_us");
  if (!created.empty()) {
    a.created_at = TimePoint{Duration{std::stoll(created)}};
  }
  a.body = body;
  for (const auto& [k, v] : headers) {
    constexpr const char kPrefix[] = "alert_attr_";
    if (k.rfind(kPrefix, 0) == 0) {
      a.attributes[k.substr(sizeof(kPrefix) - 1)] = v;
    }
  }
  return a;
}

}  // namespace simba::core
