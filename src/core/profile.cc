#include "core/profile.h"

#include <algorithm>

namespace simba::core {

Status UserProfile::define_mode(DeliveryMode mode) {
  if (mode.name().empty()) return Status::failure("delivery mode needs a name");
  if (mode.empty()) {
    return Status::failure("delivery mode " + mode.name() + " has no blocks");
  }
  modes_[mode.name()] = std::move(mode);
  return Status::success();
}

const DeliveryMode* UserProfile::mode(const std::string& name) const {
  const auto it = modes_.find(name);
  return it == modes_.end() ? nullptr : &it->second;
}

std::vector<std::string> UserProfile::mode_names() const {
  std::vector<std::string> out;
  out.reserve(modes_.size());
  for (const auto& [name, mode] : modes_) out.push_back(name);
  return out;
}

Status SubscriptionRegistry::subscribe(const std::string& category,
                                       const std::string& user,
                                       const std::string& mode_name) {
  if (category.empty() || user.empty() || mode_name.empty()) {
    return Status::failure("subscription needs category, user, and mode");
  }
  for (auto& s : subscriptions_) {
    if (s.category == category && s.user == user) {
      s.mode_name = mode_name;  // re-subscribe updates the mode
      return Status::success();
    }
  }
  subscriptions_.push_back(Subscription{category, user, mode_name});
  return Status::success();
}

void SubscriptionRegistry::unsubscribe(const std::string& category,
                                       const std::string& user) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [&](const Subscription& s) {
                       return s.category == category && s.user == user;
                     }),
      subscriptions_.end());
}

std::vector<SubscriptionRegistry::Subscription>
SubscriptionRegistry::for_category(const std::string& category) const {
  std::vector<Subscription> out;
  for (const auto& s : subscriptions_) {
    if (s.category == category) out.push_back(s);
  }
  return out;
}

std::vector<std::string> SubscriptionRegistry::categories() const {
  std::vector<std::string> out;
  for (const auto& s : subscriptions_) {
    if (std::find(out.begin(), out.end(), s.category) == out.end()) {
      out.push_back(s.category);
    }
  }
  return out;
}

}  // namespace simba::core
