#include "core/coalescer.h"

#include <utility>

namespace simba::core {

std::string AlertCoalescer::Digest::alert_id() const {
  return kDigestIdPrefix + std::to_string(sequence);
}

std::string AlertCoalescer::Digest::subject() const {
  return std::to_string(count) + " " + category + " alert" +
         (count == 1 ? "" : "s") + " in " +
         format_duration(flushed_at - opened_at);
}

std::string AlertCoalescer::Digest::body() const {
  std::string body = "Coalesced " + std::to_string(count) + " " + category +
                     " alert" + (count == 1 ? "" : "s") + ".\n";
  if (!representative_ids.empty()) {
    body += "Representative alerts:\n";
    for (const auto& id : representative_ids) {
      body += "  " + id + "\n";
    }
  }
  return body;
}

AlertCoalescer::FoldResult AlertCoalescer::add(const Alert& alert,
                                               const std::string& category,
                                               TimePoint now) {
  auto it = windows_.find(category);
  bool opened = false;
  if (it == windows_.end()) {
    Window window;
    window.opened_at = now;
    window.deadline = now + options_.window;
    it = windows_.emplace(category, std::move(window)).first;
    opened = true;
  }
  Window& window = it->second;
  if (!window.folded_ids.insert(alert.id).second) {
    return FoldResult::kDuplicate;
  }
  window.count += 1;
  if (window.representative_ids.size() < options_.representatives) {
    window.representative_ids.push_back(alert.id);
  }
  if (options_.max_batch != 0 && window.count >= options_.max_batch) {
    return FoldResult::kBatchFull;
  }
  return opened ? FoldResult::kOpenedWindow : FoldResult::kFolded;
}

std::vector<AlertCoalescer::Digest> AlertCoalescer::flush_due(TimePoint now) {
  std::vector<Digest> digests;
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (it->second.deadline <= now) {
      digests.push_back(flush_window(it->first, it->second, now));
      it = windows_.erase(it);
    } else {
      ++it;
    }
  }
  return digests;
}

std::vector<AlertCoalescer::Digest> AlertCoalescer::flush_all(TimePoint now) {
  std::vector<Digest> digests;
  for (auto& [category, window] : windows_) {
    digests.push_back(flush_window(category, window, now));
  }
  windows_.clear();
  return digests;
}

std::size_t AlertCoalescer::pending_alerts() const {
  std::size_t total = 0;
  for (const auto& [category, window] : windows_) total += window.count;
  return total;
}

AlertCoalescer::Digest AlertCoalescer::flush_window(const std::string& category,
                                                    Window& window,
                                                    TimePoint now) {
  Digest digest;
  digest.category = category;
  digest.count = window.count;
  digest.representative_ids = std::move(window.representative_ids);
  digest.opened_at = window.opened_at;
  digest.flushed_at = now;
  digest.sequence = next_sequence_++;
  return digest;
}

AlertCoalescer::State AlertCoalescer::save_state() const {
  State state;
  state.windows.reserve(windows_.size());
  for (const auto& [category, window] : windows_) {
    WindowState w;
    w.category = category;
    w.count = window.count;
    w.representative_ids = window.representative_ids;
    w.folded_ids.assign(window.folded_ids.begin(), window.folded_ids.end());
    w.opened_at = window.opened_at;
    w.deadline = window.deadline;
    state.windows.push_back(std::move(w));
  }
  state.next_sequence = next_sequence_;
  return state;
}

void AlertCoalescer::restore_state(const State& state) {
  windows_.clear();
  for (const WindowState& w : state.windows) {
    Window window;
    window.count = w.count;
    window.representative_ids = w.representative_ids;
    window.folded_ids.insert(w.folded_ids.begin(), w.folded_ids.end());
    window.opened_at = w.opened_at;
    window.deadline = w.deadline;
    windows_.emplace(w.category, std::move(window));
  }
  next_sequence_ = state.next_sequence;
}

}  // namespace simba::core
