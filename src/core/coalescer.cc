#include "core/coalescer.h"

#include <utility>

namespace simba::core {

std::string AlertCoalescer::Digest::alert_id() const {
  return kDigestIdPrefix + std::to_string(sequence);
}

std::string AlertCoalescer::Digest::subject() const {
  return std::to_string(count) + " " + category + " alert" +
         (count == 1 ? "" : "s") + " in " +
         format_duration(flushed_at - opened_at);
}

std::string AlertCoalescer::Digest::body() const {
  std::string body = "Coalesced " + std::to_string(count) + " " + category +
                     " alert" + (count == 1 ? "" : "s") + ".\n";
  if (!representative_ids.empty()) {
    body += "Representative alerts:\n";
    for (const auto& id : representative_ids) {
      body += "  " + id + "\n";
    }
  }
  return body;
}

AlertCoalescer::FoldResult AlertCoalescer::add(const Alert& alert,
                                               const std::string& category,
                                               TimePoint now) {
  auto it = windows_.find(category);
  bool opened = false;
  if (it == windows_.end()) {
    Window window;
    window.opened_at = now;
    window.deadline = now + options_.window;
    it = windows_.emplace(category, std::move(window)).first;
    opened = true;
  }
  Window& window = it->second;
  if (!window.folded_ids.insert(alert.id).second) {
    return FoldResult::kDuplicate;
  }
  window.count += 1;
  if (window.representative_ids.size() < options_.representatives) {
    window.representative_ids.push_back(alert.id);
  }
  if (options_.max_batch != 0 && window.count >= options_.max_batch) {
    return FoldResult::kBatchFull;
  }
  return opened ? FoldResult::kOpenedWindow : FoldResult::kFolded;
}

std::vector<AlertCoalescer::Digest> AlertCoalescer::flush_due(TimePoint now) {
  // Windows flush in category order: the flush sequence assigns digest
  // ids ("dg.<seq>"), so the order must match the old sorted-map walk.
  std::vector<std::string> due;
  for (const auto& [category, window] : windows_.sorted_items()) {
    if (window.deadline <= now) due.push_back(category);
  }
  std::vector<Digest> digests;
  digests.reserve(due.size());
  for (const std::string& category : due) {
    const auto it = windows_.find(category);
    digests.push_back(flush_window(category, it->second, now));
    windows_.erase(it);
  }
  return digests;
}

std::vector<AlertCoalescer::Digest> AlertCoalescer::flush_all(TimePoint now) {
  // Same category-ordered flush as flush_due (digest ids depend on it).
  std::vector<std::string> categories;
  categories.reserve(windows_.size());
  for (const auto& [category, window] : windows_.sorted_items()) {
    categories.push_back(category);
  }
  std::vector<Digest> digests;
  digests.reserve(categories.size());
  for (const std::string& category : categories) {
    digests.push_back(flush_window(category, windows_.find(category)->second, now));
  }
  windows_.clear();
  return digests;
}

std::size_t AlertCoalescer::pending_alerts() const {
  std::size_t total = 0;
  for (const auto& [category, window] : windows_) total += window.count;
  return total;
}

AlertCoalescer::Digest AlertCoalescer::flush_window(const std::string& category,
                                                    Window& window,
                                                    TimePoint now) {
  Digest digest;
  digest.category = category;
  digest.count = window.count;
  digest.representative_ids = std::move(window.representative_ids);
  digest.opened_at = window.opened_at;
  digest.flushed_at = now;
  digest.sequence = next_sequence_++;
  return digest;
}

AlertCoalescer::State AlertCoalescer::save_state() const {
  State state;
  state.windows.reserve(windows_.size());
  for (const auto& [category, window] : windows_.sorted_items()) {
    WindowState w;
    w.category = category;
    w.count = window.count;
    w.representative_ids = window.representative_ids;
    w.folded_ids.reserve(window.folded_ids.size());
    for (const std::string& id : window.folded_ids.sorted_items()) {
      w.folded_ids.push_back(id);
    }
    w.opened_at = window.opened_at;
    w.deadline = window.deadline;
    state.windows.push_back(std::move(w));
  }
  state.next_sequence = next_sequence_;
  return state;
}

void AlertCoalescer::restore_state(const State& state) {
  windows_.clear();
  for (const WindowState& w : state.windows) {
    Window window;
    window.count = w.count;
    window.representative_ids = w.representative_ids;
    for (const std::string& id : w.folded_ids) window.folded_ids.insert(id);
    window.opened_at = w.opened_at;
    window.deadline = w.deadline;
    windows_.emplace(w.category, std::move(window));
  }
  next_sequence_ = state.next_sequence;
}

}  // namespace simba::core
