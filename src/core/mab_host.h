// MabHost: the user's desktop PC that runs MyAlertBuddy (Section 4:
// "Currently, MyAlertBuddy runs on a desktop PC owned by the user").
//
// Owns everything with machine lifetime: the desktop (dialog boxes),
// the third-party IM and email client software, the Communication
// Managers, the persistent alert log and user configuration, the MDC
// watchdog, nightly software rejuvenation, and the power supply (the
// paper's one unrecovered power outage, later fixed with a UPS).
// MyAlertBuddy incarnations come and go; this object persists.
#pragma once

#include <memory>
#include <string>

#include "automation/email_manager.h"
#include "automation/im_manager.h"
#include "core/alert_log.h"
#include "core/digest.h"
#include "core/mab.h"
#include "core/mdc.h"
#include "email/email_client.h"
#include "email/email_server.h"
#include "gui/desktop.h"
#include "im/im_client.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/calendar.h"

namespace simba::core {

struct MabHostOptions {
  /// The human owner; the buddy's addresses derive from this unless
  /// overridden.
  std::string owner = "user";
  std::string im_account;      // default: "<owner>.mab"
  std::string email_address;   // default: "<owner>.mab@simba.example.net"

  MabConfig config;
  MabOptions mab_options;
  MasterDaemonController::Options mdc_options;

  gui::FaultProfile im_client_profile;
  im::ImClientConfig im_client_config;
  gui::FaultProfile email_client_profile;
  email::EmailClientConfig email_client_config;

  /// Nightly rejuvenation (kind 2): "Every night at 11:30PM,
  /// MyAlertBuddy requests an orderly shutdown of all the communication
  /// client software and terminates itself."
  bool nightly_rejuvenation = true;
  TimeOfDay rejuvenation_time = TimeOfDay::at(23, 30);

  /// Power model. With a UPS, outages (up to any length, for
  /// simplicity) are ridden through.
  sim::OutagePlan power_plan;
  bool has_ups = false;
  Duration boot_time = minutes(2);

  /// Chaos crash-window model (sim/chaos.h): probability that an
  /// alert-log append still inside its synchronous-write window is
  /// torn when power dies. Zero disables the model.
  double torn_append_probability = 0.0;

  // Ablation switches (experiment E8): disabling the watchdog means a
  // dead or hung MAB stays that way; disabling the monkey thread means
  // even known dialogs pile up.
  bool watchdog_enabled = true;
  bool monkey_enabled = true;

  /// Lifecycle tracing (null disables it). The host hands it to the
  /// persistent alert log and to every MAB incarnation it spawns.
  util::Trace* trace = nullptr;
};

class MabHost {
 public:
  MabHost(sim::Simulator& sim, net::MessageBus& bus, im::ImServer& im_server,
          email::EmailServer& email_server, MabHostOptions options);
  ~MabHost();

  MabHost(const MabHost&) = delete;
  MabHost& operator=(const MabHost&) = delete;

  /// Boots the machine: MDC, client software, managers, first MAB.
  void start();

  const std::string& im_address() const { return options_.im_account; }
  const std::string& email_address() const { return options_.email_address; }

  MabConfig& config() { return options_.config; }
  AlertLog& alert_log() { return alert_log_; }
  DigestStore& digest() { return digest_; }
  AlertCoalescer& coalescer() { return coalescer_; }
  /// Current incarnation; null between termination and restart.
  MyAlertBuddy* mab() { return mab_.get(); }
  MasterDaemonController& mdc() { return *mdc_; }
  automation::ImManager& im_manager() { return *im_manager_; }
  automation::EmailManager& email_manager() { return *email_manager_; }
  gui::Desktop& desktop() { return desktop_; }

  bool machine_up() const { return machine_up_; }
  /// The availability predicate experiments sample: machine powered,
  /// a MAB incarnation present, running, and not hung.
  bool healthy() const {
    return machine_up_ && mab_ != nullptr && mab_->running();
  }

  const Counters& stats() const { return stats_; }
  Counters& stats() { return stats_; }

  /// MAB counters aggregated across every incarnation, dead or alive.
  /// Incarnation counters die with their process; workloads that score
  /// whole-run admission/coalesce/shed activity need the union.
  Counters mab_stats_total() const {
    Counters total = mab_totals_;
    if (mab_) total.merge(mab_->stats());
    return total;
  }

  // Chaos-injection triggers (sim/chaos.h). Each is a no-op while the
  // machine is down; the ChaosPlan schedules them blindly and the host
  // applies only what is physically possible at that instant.
  /// Abrupt process death — no orderly shutdown, no termination
  /// notification. The MDC watchdog discovers the corpse on its next
  /// heartbeat, exactly the paper's detection path.
  void inject_mab_crash();
  /// The current incarnation stops responding to AreYouWorking().
  void inject_mab_hang();
  /// Forced machine reboot (kernel panic, forced update).
  void inject_reboot();

  /// Experiment hook, persistent across MAB incarnations.
  void set_alert_observer(
      std::function<void(const Alert&, TimePoint)> observer) {
    alert_observer_ = std::move(observer);
    if (mab_) mab_->set_alert_observer(alert_observer_);
  }

  /// Checkpoint state (sim/snapshot.h): everything the paper keeps on
  /// the host machine's disk or in machine-lifetime state — the
  /// pessimistic log, the digest store, open coalescing windows, the
  /// incarnation counter (MAB rng streams are named per incarnation, so
  /// a restored host never reuses a consumed stream), and the counter
  /// bags. The live MAB incarnation itself dies with the process image;
  /// save_state() folds its counters into the retired totals, exactly
  /// like retirement, and the incarnation spawned after restore replays
  /// unprocessed log records — the paper's restart recovery.
  struct State {
    AlertLog::State log;
    DigestStore::State digest;
    AlertCoalescer::State coalescer;
    std::uint64_t mab_incarnations = 0;
    Counters stats;
    Counters mab_totals;  // includes the final live incarnation
  };
  State save_state() const;
  /// Call on a freshly constructed host, before start().
  void restore_state(State state);

  /// Conservation hooks, persistent across MAB incarnations: every
  /// accounted shed / coalesce in the alert path.
  void set_shed_observer(
      std::function<void(const std::string&, TimePoint)> observer) {
    shed_observer_ = std::move(observer);
    if (mab_) mab_->set_shed_observer(shed_observer_);
  }
  void set_coalesce_observer(
      std::function<void(const std::string&, TimePoint)> observer) {
    coalesce_observer_ = std::move(observer);
    if (mab_) mab_->set_coalesce_observer(coalesce_observer_);
  }

 private:
  void boot();
  void spawn_mab();
  void kill_mab();
  /// Folds the dying incarnation's counters into mab_totals_ before
  /// releasing it. Every mab_.reset() goes through here.
  void retire_mab();
  void restart_mab();   // MDC restart path (kills hung incarnation)
  void reboot_machine();
  void schedule_nightly();
  void nightly_rejuvenation();
  void power_down();
  void power_up();

  sim::Simulator& sim_;
  im::ImServer& im_server_;
  email::EmailServer& email_server_;
  MabHostOptions options_;
  gui::Desktop desktop_;
  std::unique_ptr<im::ImClientApp> im_client_;
  std::unique_ptr<email::EmailClientApp> email_client_;
  std::unique_ptr<automation::ImManager> im_manager_;
  std::unique_ptr<automation::EmailManager> email_manager_;
  std::unique_ptr<MasterDaemonController> mdc_;
  std::unique_ptr<MyAlertBuddy> mab_;
  AlertLog alert_log_;
  DigestStore digest_;
  /// Host-owned like the log and digest store: open coalescing windows
  /// survive MAB crashes and flush on the next incarnation's start.
  AlertCoalescer coalescer_;
  Rng chaos_rng_;  // torn-append dice; dedicated stream per host
  bool machine_up_ = false;
  std::function<void(const Alert&, TimePoint)> alert_observer_;
  std::function<void(const std::string&, TimePoint)> shed_observer_;
  std::function<void(const std::string&, TimePoint)> coalesce_observer_;
  sim::EventId nightly_event_ = 0;
  std::uint64_t mab_incarnations_ = 0;
  Counters stats_;
  /// Union of the counters of every incarnation retired so far.
  Counters mab_totals_;
};

}  // namespace simba::core
