// Master Daemon Controller (MDC) — the watchdog process of Section
// 4.2.1.
//
// "MyAlertBuddy is always launched by a watchdog process called Master
// Daemon Controller (MDC), which monitors MyAlertBuddy and restarts it
// upon detecting its termination. The MDC also periodically invokes a
// non-blocking AreYouWorking() function call and restarts MyAlertBuddy
// if it is hung and fails to respond to the call. ... If the number of
// failed restarts exceeds a threshold, the MDC reboots the machine."
#pragma once

#include <functional>
#include <string>

#include "sim/simulator.h"
#include "util/stats.h"

namespace simba::core {

class MasterDaemonController {
 public:
  struct Options {
    Duration check_interval = minutes(3);  // paper: every three minutes
    Duration response_timeout = seconds(30);
    Duration restart_delay = seconds(10);  // process spawn + init
    int max_failed_restarts = 3;
    Duration reboot_time = minutes(3);
  };

  /// `probe` is the AreYouWorking() call into the current MAB
  /// incarnation (false / no current incarnation = not working).
  /// `restart` must kill any hung incarnation and launch a fresh one.
  /// `reboot` reboots the machine (the host decides what that means).
  MasterDaemonController(sim::Simulator& sim, Options options,
                         std::function<bool()> probe,
                         std::function<void()> restart,
                         std::function<void()> reboot);

  void start();
  void stop();

  /// Host calls this when the MAB process exits. Unexpected exits and
  /// rejuvenation shutdowns both go through here; only unexpected ones
  /// count toward the paper's "36 restarts of MyAlertBuddy by the MDC"
  /// (nightly rejuvenation restarts are orderly and tracked apart).
  void notify_terminated(const std::string& reason, bool expected);

  /// Whether the watchdog believes the daemon is up (between a detected
  /// failure and the completed restart this is false).
  bool daemon_up() const { return daemon_up_; }

  const Counters& stats() const { return stats_; }

 private:
  void heartbeat();
  void schedule_restart(const std::string& cause, bool expected);

  sim::Simulator& sim_;
  Options options_;
  std::function<bool()> probe_;
  std::function<void()> restart_;
  std::function<void()> reboot_;
  sim::TaskHandle heartbeat_task_;
  sim::EventId pending_restart_ = 0;
  bool daemon_up_ = true;
  int consecutive_failures_ = 0;
  Counters stats_;
};

}  // namespace simba::core
