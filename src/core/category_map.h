// Alert aggregation and filtering (Section 4.2).
//
// Aggregation: "mapping all of 'Stocks', 'Financial news', and
// 'Earnings reports' to a single category called 'Investment'".
// Filtering: "selective sub-categorization" plus enabling/disabling
// categories and "specifying delivery time constraints".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/calendar.h"
#include "util/result.h"

namespace simba::core {

class CategoryMap {
 public:
  /// Maps a classifier keyword to a personal category (aggregation:
  /// many keywords -> one category). Re-mapping a keyword replaces the
  /// old mapping.
  void map_keyword(const std::string& keyword,
                   const std::string& personal_category);
  std::optional<std::string> category_for(const std::string& keyword) const;
  std::vector<std::string> keywords_of(const std::string& category) const;

  /// Filtering: temporarily block a category ("a personal alert filter
  /// that temporarily blocks unwanted alerts").
  void set_category_enabled(const std::string& category, bool enabled);
  bool category_enabled(const std::string& category) const;

  /// Delivery-time constraint: alerts of this category are delivered
  /// only inside the window ("disable these alerts during certain
  /// hours to avoid distractions"). Clearing removes the constraint.
  void set_delivery_window(const std::string& category, DailyWindow window);
  void clear_delivery_window(const std::string& category);

  /// Whether an alert of this category should be delivered at time t.
  bool deliverable(const std::string& category, TimePoint t) const;

  /// The category's delivery window, if one is set.
  std::optional<DailyWindow> window_for(const std::string& category) const;

  // Persistence accessors (core/config_xml.h): config serialises by
  // iterating these, so the sorted order is part of the config bytes.
  // simba-lint: ordered
  const std::map<std::string, std::string>& mappings() const {
    return keyword_to_category_;
  }
  std::vector<std::string> disabled_categories() const;
  // simba-lint: ordered
  const std::map<std::string, DailyWindow>& windows() const {
    return windows_;
  }

 private:
  // Config-time state, iterated for config dumps and disabled-category
  // listings — sorted order is observed, lookups are cold.
  // simba-lint: ordered
  std::map<std::string, std::string> keyword_to_category_;  // lowercase key
  // simba-lint: ordered
  std::map<std::string, bool> disabled_;
  // simba-lint: ordered
  std::map<std::string, DailyWindow> windows_;
};

}  // namespace simba::core
