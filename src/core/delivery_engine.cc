#include "core/delivery_engine.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::core {

const char* to_string(DeliveryPriority priority) {
  switch (priority) {
    case DeliveryPriority::kCritical:
      return "critical";
    case DeliveryPriority::kNormal:
      return "normal";
    case DeliveryPriority::kDigest:
      return "digest";
  }
  return "unknown";
}

DeliveryEngine::DeliveryEngine(sim::Simulator& sim, automation::ImManager* im,
                               automation::EmailManager* email,
                               DeliveryEngineOptions options)
    : sim_(sim), im_(im), email_(email), options_(options) {}

DeliveryEngine::~DeliveryEngine() {
  // Outstanding sends and block timers may still fire after this
  // incarnation's engine is gone; their callbacks check the token.
  *alive_ = false;
}

void DeliveryEngine::deliver(const Alert& alert, const AddressBook& addresses,
                             const DeliveryMode& mode, DoneCallback done,
                             DeliveryPriority priority) {
  Delivery d;
  d.id = next_delivery_++;
  d.alert = alert;
  d.addresses = addresses;
  d.mode = mode;
  d.done = std::move(done);
  d.priority = priority;
  d.started_at = sim_.now();
  if (traced()) trace_event(d, "start", "mode " + mode.name());
  if (options_.max_concurrent <= 0) {
    // Unlimited concurrency: dispatch immediately, exactly the
    // pre-lane behavior (no extra events, no queue residency).
    dispatch(std::move(d));
    return;
  }
  if (active_ < options_.max_concurrent && queued() == 0) {
    dispatch(std::move(d));
    return;
  }
  const std::size_t lane =
      options_.priority_lanes ? static_cast<std::size_t>(priority) : 0;
  if (options_.lane_bound != 0 && lanes_[lane].size() >= options_.lane_bound) {
    // Lane full: shed with explicit accounting. `done` still fires so
    // upstream conservation sees the outcome.
    stats_.bump("deliveries_shed");
    stats_.bump(std::string("lanes.shed.") + to_string(priority));
    if (traced()) {
      trace_event(d, "shed",
                  strformat("%s lane full (%zu queued)", to_string(priority),
                            lanes_[lane].size()));
    }
    DeliveryOutcome outcome;
    outcome.shed = true;
    outcome.completed_at = sim_.now();
    outcome.detail = std::string(to_string(priority)) + " lane full";
    if (d.done) d.done(outcome);
    return;
  }
  stats_.bump(std::string("lanes.enqueued.") + to_string(priority));
  if (traced()) {
    trace_event(d, "enqueue",
                strformat("%s lane, %zu ahead", to_string(priority),
                          lanes_[lane].size()));
  }
  lanes_[lane].push_back(std::move(d));
  pump();
}

void DeliveryEngine::dispatch(Delivery d) {
  const std::uint64_t id = d.id;
  if (options_.max_concurrent > 0) ++active_;
  deliveries_.emplace(id, std::move(d));
  stats_.bump("deliveries_started");
  run_block(id);
}

void DeliveryEngine::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (active_ < options_.max_concurrent) {
    std::size_t lane = 0;
    while (lane < 3 && lanes_[lane].empty()) ++lane;
    if (lane == 3) break;
    Delivery d = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    if (traced()) {
      trace_event(d, "dequeue",
                  strformat("%s lane, waited %s", to_string(d.priority),
                            format_duration(sim_.now() - d.started_at).c_str()));
    }
    dispatch(std::move(d));
  }
  pumping_ = false;
}

std::size_t DeliveryEngine::queued() const {
  return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
}

void DeliveryEngine::trace_event(const Delivery& d, const char* stage,
                                 std::string detail) {
  if (trace_ == nullptr) return;
  trace_->emit(d.alert.id, "delivery", stage, sim_.now(), std::move(detail));
}

void DeliveryEngine::run_block(std::uint64_t delivery_id) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery& d = it->second;
  if (d.block_index >= d.mode.blocks().size()) {
    finish(delivery_id, false, "all blocks exhausted");
    return;
  }
  const DeliveryBlock& block = d.mode.blocks()[d.block_index];
  const std::size_t block_index = d.block_index;

  // Collect the actions that can run: enabled addresses only.
  std::vector<const DeliveryAction*> runnable;
  for (const auto& action : block.actions) {
    const Address* address = d.addresses.find(action.address_name);
    if (address == nullptr) {
      stats_.bump("actions.unknown_address");
      if (traced()) {
        trace_event(d, "action_skip",
                    action.address_name + ": unknown address");
      }
      continue;
    }
    if (!address->enabled) {
      stats_.bump("actions.disabled_address");
      if (traced()) {
        trace_event(d, "action_skip", action.address_name + ": disabled");
      }
      continue;
    }
    runnable.push_back(&action);
  }
  if (runnable.empty()) {
    // "Any delivery block that contains [only disabled] actions will
    // automatically fail and fall back to the next backup block."
    stats_.bump("blocks.all_disabled");
    if (traced()) {
      trace_event(d, "block_skip",
                  strformat("block %zu: no runnable action", block_index));
    }
    d.block_index++;
    run_block(delivery_id);
    return;
  }
  d.block_started_at = sim_.now();
  if (traced()) {
    trace_event(d, "block_start",
                strformat("block %zu: %zu action(s)", block_index,
                          runnable.size()));
  }

  d.actions_pending = static_cast<int>(runnable.size());
  d.acks_outstanding = 0;
  d.weak_successes = 0;
  d.block_awaits_ack = false;
  for (const auto* a : runnable) {
    if (a->require_ack) d.block_awaits_ack = true;
  }
  d.block_timer = sim_.after(
      block.timeout,
      [this, alive = alive_, delivery_id, block_index] {
        if (!*alive) return;
        auto dit = deliveries_.find(delivery_id);
        if (dit == deliveries_.end()) return;
        if (dit->second.block_index != block_index) return;  // stale
        dit->second.block_timer = 0;
        if (dit->second.weak_successes > 0) {
          // The ack never came, but a weak channel accepted the alert:
          // complete on that rather than duplicating via fallback.
          stats_.bump("blocks.completed_weak");
          finish(delivery_id, true, "weak success (relay accepted; no ack)");
          return;
        }
        stats_.bump("blocks.timed_out");
        if (traced()) {
          trace_event(dit->second, "block_timeout",
                      strformat("block %zu", block_index));
        }
        advance_block(delivery_id);
      },
      "delivery.block_timeout");

  // Copy the actions: start_action callbacks can mutate the map.
  std::vector<DeliveryAction> actions;
  actions.reserve(runnable.size());
  for (const auto* a : runnable) actions.push_back(*a);
  for (const auto& action : actions) {
    // The delivery may already have completed (a synchronous email
    // success finishes the block immediately).
    if (deliveries_.find(delivery_id) == deliveries_.end()) break;
    if (deliveries_.at(delivery_id).block_index != block_index) break;
    start_action(delivery_id, action, block_index);
  }
}

void DeliveryEngine::start_action(std::uint64_t delivery_id,
                                  const DeliveryAction& action,
                                  std::size_t block_index) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery& d = it->second;
  const Address* address = d.addresses.find(action.address_name);
  if (address == nullptr) {
    action_failed(delivery_id, block_index, "address vanished");
    return;
  }

  switch (address->type) {
    case CommType::kIm: {
      if (im_ == nullptr) {
        stats_.bump("actions.no_im_channel");
        action_failed(delivery_id, block_index, "no IM channel");
        return;
      }
      auto headers = alert_headers(d.alert);
      headers[wire::kKind] = wire::kKindAlert;
      if (action.require_ack) {
        // std::string{} rvalue: sidesteps a GCC 12 -Werror=restrict
        // false positive on the const char* assign path at -O2.
        headers[wire::kRequiresAck] = std::string("1");
        // Register the waiter before sending: the ack can beat the
        // send-completion callback.
        ack_waiters_[d.alert.id + "|" + address->value] = delivery_id;
        d.acks_outstanding++;
      }
      const std::string to_user = address->value;
      const bool require_ack = action.require_ack;
      im_->send_im(
          to_user, d.alert.subject + "\n" + d.alert.body, std::move(headers),
          [this, alive = alive_, delivery_id, block_index, to_user, require_ack,
           alert_id = d.alert.id](Status status) {
            if (!*alive) return;
            auto dit = deliveries_.find(delivery_id);
            if (dit == deliveries_.end()) return;
            if (dit->second.block_index != block_index) return;  // stale
            if (!status.ok()) {
              if (require_ack) {
                ack_waiters_.erase(alert_id + "|" + to_user);
                dit->second.acks_outstanding--;
              }
              stats_.bump("actions.im_send_failed");
              action_failed(delivery_id, block_index, status.error());
              return;
            }
            dit->second.messages_sent++;
            stats_.bump("messages.im");
            if (require_ack) {
              // Accepted; the action now rides on the ack. The pending
              // slot converts into the outstanding-ack slot.
              dit->second.actions_pending--;
              stats_.bump("actions.im_waiting_ack");
              if (traced()) {
                trace_event(dit->second, "action",
                            "im accepted; awaiting ack from " + to_user);
              }
            } else {
              action_succeeded(delivery_id, block_index, "im accepted");
            }
          });
      break;
    }
    case CommType::kEmail:
    case CommType::kSms: {
      if (email_ == nullptr) {
        stats_.bump("actions.no_email_channel");
        action_failed(delivery_id, block_index, "no email channel");
        return;
      }
      // SMS rides the email channel: mail to the phone's SMS address
      // at the carrier gateway (Section 1's privacy-sensitive address).
      email::Email mail;
      mail.to = address->value;
      mail.subject = d.alert.subject;
      mail.body = d.alert.body;
      mail.high_importance = d.alert.high_importance;
      mail.headers = alert_headers(d.alert);
      const Status status = email_->send_email(std::move(mail));
      if (status.ok()) {
        auto dit = deliveries_.find(delivery_id);
        if (dit == deliveries_.end()) return;
        Delivery& del = dit->second;
        del.messages_sent++;
        stats_.bump(address->type == CommType::kSms ? "messages.sms"
                                                    : "messages.email");
        if (del.block_awaits_ack) {
          // Weak success: remembered, but the block keeps waiting for
          // the strong (acknowledged) signal until its timeout.
          del.weak_successes++;
          del.actions_pending--;
          stats_.bump("actions.weak_success");
          trace_event(del, "action", "relay accepted (weak)");
        } else {
          action_succeeded(delivery_id, block_index, "relay accepted");
        }
      } else {
        stats_.bump("actions.email_send_failed");
        action_failed(delivery_id, block_index, status.error());
      }
      break;
    }
  }
}

void DeliveryEngine::action_failed(std::uint64_t delivery_id,
                                   std::size_t block_index,
                                   const std::string& reason) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery& d = it->second;
  if (d.block_index != block_index) return;
  SIMBA_LOG_DEBUG("delivery", "action failed: " + reason);
  trace_event(d, "action_fail", reason);
  d.actions_pending--;
  if (d.actions_pending <= 0 && d.acks_outstanding <= 0) {
    // No strong signal can arrive any more. Complete on any weak
    // success; otherwise fall back early rather than waiting out the
    // timer.
    if (d.weak_successes > 0) {
      stats_.bump("blocks.completed_weak");
      finish(delivery_id, true, "weak success (relay accepted)");
    } else {
      advance_block(delivery_id);
    }
  }
}

void DeliveryEngine::action_succeeded(std::uint64_t delivery_id,
                                      std::size_t block_index,
                                      const std::string& how) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery& d = it->second;
  if (d.block_index != block_index) return;
  trace_event(d, "action", how);
  finish(delivery_id, true, how);
}

void DeliveryEngine::advance_block(std::uint64_t delivery_id) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery& d = it->second;
  if (d.block_timer != 0) {
    sim_.cancel(d.block_timer);
    d.block_timer = 0;
  }
  // Abandon any acks still outstanding for the old block.
  for (auto ait = ack_waiters_.begin(); ait != ack_waiters_.end();) {
    if (ait->second == delivery_id) {
      ait = ack_waiters_.erase(ait);
    } else {
      ++ait;
    }
  }
  d.acks_outstanding = 0;
  if (trace_ != nullptr) {
    trace_->emit(d.alert.id, "delivery", "block", d.block_started_at,
                 sim_.now(),
                 strformat("block %zu failed; fallback", d.block_index));
  }
  d.block_index++;
  stats_.bump("blocks.fallback");
  run_block(delivery_id);
}

void DeliveryEngine::finish(std::uint64_t delivery_id, bool delivered,
                            const std::string& detail) {
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return;
  Delivery d = std::move(it->second);
  deliveries_.erase(it);
  if (d.block_timer != 0) sim_.cancel(d.block_timer);
  for (auto ait = ack_waiters_.begin(); ait != ack_waiters_.end();) {
    if (ait->second == delivery_id) {
      ait = ack_waiters_.erase(ait);
    } else {
      ++ait;
    }
  }
  DeliveryOutcome outcome;
  outcome.delivered = delivered;
  outcome.block_used = delivered ? static_cast<int>(d.block_index) : -1;
  outcome.messages_sent = d.messages_sent;
  outcome.completed_at = sim_.now();
  outcome.detail = detail;
  stats_.bump(delivered ? "deliveries_succeeded" : "deliveries_failed");
  if (trace_ != nullptr) {
    if (delivered) {
      trace_->emit(d.alert.id, "delivery", "block", d.block_started_at,
                   sim_.now(),
                   strformat("block %d succeeded", outcome.block_used));
    }
    trace_->emit(d.alert.id, "delivery", "deliver", d.started_at, sim_.now(),
                 delivered ? strformat("block %d: %s", outcome.block_used,
                                       detail.c_str())
                           : "failed: " + detail);
  }
  if (d.done) d.done(outcome);
  if (options_.max_concurrent > 0) {
    --active_;
    pump();
  }
}

bool DeliveryEngine::handle_incoming(const im::ImMessage& message) {
  const auto kind = message.headers.find(wire::kKind);
  if (kind == message.headers.end() || kind->second != wire::kKindAck) {
    return false;
  }
  const auto ack_for = message.headers.find(wire::kAckFor);
  if (ack_for == message.headers.end()) return false;
  const std::string key = ack_for->second + "|" + message.from_user;
  const auto waiter = ack_waiters_.find(key);
  if (waiter == ack_waiters_.end()) {
    stats_.bump("acks.unmatched");
    if (trace_ != nullptr) {
      trace_->emit(ack_for->second, "delivery", "ack", sim_.now(),
                   "unmatched ack from " + message.from_user);
    }
    return true;  // it was an ack, just not one we still want
  }
  const std::uint64_t delivery_id = waiter->second;
  ack_waiters_.erase(waiter);
  auto it = deliveries_.find(delivery_id);
  if (it == deliveries_.end()) return true;
  it->second.acks_outstanding--;
  stats_.bump("acks.received");
  if (traced()) trace_event(it->second, "ack", "from " + message.from_user);
  action_succeeded(delivery_id, it->second.block_index, "ack received");
  return true;
}

}  // namespace simba::core
