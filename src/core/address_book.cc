#include "core/address_book.h"

#include <algorithm>

#include "util/strings.h"
#include "xml/xml.h"

namespace simba::core {

const char* to_string(CommType type) {
  switch (type) {
    case CommType::kIm: return "IM";
    case CommType::kSms: return "SMS";
    case CommType::kEmail: return "EM";
  }
  return "?";
}

Result<CommType> comm_type_from_string(const std::string& text) {
  if (iequals(text, "IM")) return CommType::kIm;
  if (iequals(text, "SMS")) return CommType::kSms;
  if (iequals(text, "EM") || iequals(text, "EMAIL")) return CommType::kEmail;
  return make_error("unknown communication type: " + text);
}

void AddressBook::put(Address address) {
  for (auto& existing : addresses_) {
    if (existing.friendly_name == address.friendly_name) {
      existing = std::move(address);
      return;
    }
  }
  addresses_.push_back(std::move(address));
}

Status AddressBook::remove(const std::string& friendly_name) {
  const auto it = std::find_if(addresses_.begin(), addresses_.end(),
                               [&](const Address& a) {
                                 return a.friendly_name == friendly_name;
                               });
  if (it == addresses_.end()) {
    return Status::failure("no address named " + friendly_name);
  }
  addresses_.erase(it);
  return Status::success();
}

const Address* AddressBook::find(const std::string& friendly_name) const {
  for (const auto& a : addresses_) {
    if (a.friendly_name == friendly_name) return &a;
  }
  return nullptr;
}

std::vector<const Address*> AddressBook::of_type(CommType type) const {
  std::vector<const Address*> out;
  for (const auto& a : addresses_) {
    if (a.type == type) out.push_back(&a);
  }
  return out;
}

Status AddressBook::set_enabled(const std::string& friendly_name,
                                bool enabled) {
  for (auto& a : addresses_) {
    if (a.friendly_name == friendly_name) {
      a.enabled = enabled;
      return Status::success();
    }
  }
  return Status::failure("no address named " + friendly_name);
}

bool AddressBook::enabled(const std::string& friendly_name) const {
  const Address* a = find(friendly_name);
  return a != nullptr && a->enabled;
}

void AddressBook::append_to(xml::Element& parent) const {
  xml::Element& root = parent.add_child("addresses");
  root.set_attr("user", user_);
  for (const auto& a : addresses_) {
    xml::Element& e = root.add_child("address");
    e.set_attr("name", a.friendly_name);
    e.set_attr("type", to_string(a.type));
    e.set_attr("value", a.value);
    e.set_attr("enabled", a.enabled ? "true" : "false");
  }
}

std::string AddressBook::to_xml() const {
  xml::Element holder("holder");
  append_to(holder);
  return holder.children()[0]->serialize();
}

Result<AddressBook> AddressBook::from_xml(const std::string& xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return make_error(doc.error());
  return from_element(doc.value().root());
}

Result<AddressBook> AddressBook::from_element(const xml::Element& root) {
  if (root.name() != "addresses") {
    return make_error("expected <addresses> root, got <" + root.name() + ">");
  }
  AddressBook book(root.attr_or("user", ""));
  for (const auto& child : root.children()) {
    if (child->name() != "address") continue;
    Address a;
    a.friendly_name = child->attr_or("name", "");
    if (a.friendly_name.empty()) {
      return make_error("<address> missing name attribute");
    }
    auto type = comm_type_from_string(child->attr_or("type", ""));
    if (!type.ok()) return make_error(type.error());
    a.type = type.value();
    a.value = child->attr_or("value", "");
    if (a.value.empty()) {
      return make_error("<address name=\"" + a.friendly_name +
                        "\"> missing value");
    }
    a.enabled = !iequals(child->attr_or("enabled", "true"), "false");
    book.put(std::move(a));
  }
  return book;
}

}  // namespace simba::core
