// SourceEndpoint: the SIMBA library as used by an alert source.
//
// Section 4.2: "we modified the information alert proxy, web store
// alert proxy, Aladdin home gateway server, WISH alert server, and the
// desktop assistant to use the 'IM-with-acknowledgement followed by
// email' delivery mode of the SIMBA library to deliver alerts to
// MyAlertBuddy." One SourceEndpoint is one such modified source: its
// own IM/email client software driven through Communication Managers,
// a DeliveryEngine, and a fixed delivery mode targeting the buddy's
// addresses (never the user's own — the privacy property).
#pragma once

#include <memory>
#include <string>

#include "automation/email_manager.h"
#include "automation/im_manager.h"
#include "core/alert.h"
#include "core/delivery_engine.h"
#include "email/email_client.h"
#include "email/email_server.h"
#include "gui/desktop.h"
#include "im/im_client.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "sim/simulator.h"

namespace simba::core {

struct SourceEndpointOptions {
  std::string name = "source";
  std::string im_account;     // default: "<name>"
  std::string email_address;  // default: "<name>@svc.example.net"
  /// Sources run on servers; their clients are much less flaky than a
  /// home desktop but the same machinery protects them.
  gui::FaultProfile im_client_profile;
  im::ImClientConfig im_client_config;
  gui::FaultProfile email_client_profile;
  email::EmailClientConfig email_client_config;
  /// Timeout for the IM-with-ack block before falling back to email.
  Duration im_block_timeout = seconds(45);
  Duration email_block_timeout = seconds(30);
};

class SourceEndpoint {
 public:
  SourceEndpoint(sim::Simulator& sim, net::MessageBus& bus,
                 im::ImServer& im_server, email::EmailServer& email_server,
                 SourceEndpointOptions options);
  ~SourceEndpoint() { sanity_task_.cancel(); }

  void start();

  /// Points the source at a buddy (IM account + email address). The
  /// per-target delivery mode is the paper's "IM-with-acknowledgement
  /// followed by email".
  void set_target(const std::string& target_im,
                  const std::string& target_email);

  const std::string& name() const { return options_.name; }
  const std::string& im_account() const { return options_.im_account; }

  /// Sends one alert to the configured target.
  void send_alert(const Alert& alert,
                  DeliveryEngine::DoneCallback done = nullptr);

  /// Binds send_alert as an AlertSink for the substrate generators.
  AlertSink sink();

  DeliveryEngine& engine() { return *engine_; }
  automation::ImManager& im_manager() { return *im_manager_; }
  const Counters& stats() const { return stats_; }

 private:
  void pump_im();

  sim::Simulator& sim_;
  im::ImServer& im_server_;
  email::EmailServer& email_server_;
  SourceEndpointOptions options_;
  gui::Desktop desktop_;
  std::unique_ptr<im::ImClientApp> im_client_;
  std::unique_ptr<email::EmailClientApp> email_client_;
  std::unique_ptr<automation::ImManager> im_manager_;
  std::unique_ptr<automation::EmailManager> email_manager_;
  std::unique_ptr<DeliveryEngine> engine_;
  AddressBook target_;
  DeliveryMode mode_;
  sim::TaskHandle sanity_task_;
  /// Stable storage for the "source.<name>.sanity" event label.
  std::string sanity_label_;
  Counters stats_;
};

}  // namespace simba::core
