#include "core/alert_log.h"

namespace simba::core {

bool AlertLog::append(const Alert& alert, TimePoint now) {
  const auto it = index_.find(alert.id);
  if (it != index_.end()) {
    stats_.bump("duplicate_appends");
    return false;
  }
  Record record;
  record.alert = alert;
  record.received_at = now;
  index_[alert.id] = records_.size();
  records_.push_back(std::move(record));
  stats_.bump("appends");
  return true;
}

void AlertLog::mark_processed(const std::string& alert_id, TimePoint now) {
  const auto it = index_.find(alert_id);
  if (it == index_.end()) return;
  Record& record = records_[it->second];
  if (record.processed) return;
  record.processed = true;
  record.processed_at = now;
  stats_.bump("processed");
}

bool AlertLog::contains(const std::string& alert_id) const {
  return index_.count(alert_id) > 0;
}

bool AlertLog::processed(const std::string& alert_id) const {
  const auto it = index_.find(alert_id);
  return it != index_.end() && records_[it->second].processed;
}

std::vector<Alert> AlertLog::unprocessed() const {
  std::vector<Alert> out;
  for (const auto& record : records_) {
    if (!record.processed) out.push_back(record.alert);
  }
  return out;
}

}  // namespace simba::core
