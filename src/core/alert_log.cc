#include "core/alert_log.h"

namespace simba::core {

bool AlertLog::append(const Alert& alert, TimePoint now) {
  const auto it = index_.find(alert.id);
  if (it != index_.end()) {
    stats_.bump("duplicate_appends");
    if (trace_ != nullptr) {
      trace_->emit(alert.id, "log", "append", now, "duplicate");
    }
    return false;
  }
  Record record;
  record.alert = alert;
  record.received_at = now;
  index_[alert.id] = records_.size();
  records_.push_back(std::move(record));
  stats_.bump("appends");
  if (trace_ != nullptr) {
    // The span covers the synchronous-write window: the ack may only
    // go out at its end.
    trace_->emit(alert.id, "log", "append", now, now + write_latency_,
                 "fresh");
  }
  return true;
}

void AlertLog::mark_processed(const std::string& alert_id, TimePoint now) {
  const auto it = index_.find(alert_id);
  if (it == index_.end()) return;
  Record& record = records_[it->second];
  if (record.processed) return;
  record.processed = true;
  record.processed_at = now;
  stats_.bump("processed");
  if (trace_ != nullptr) {
    trace_->emit(alert_id, "log", "mark_processed", now);
  }
}

std::vector<std::string> AlertLog::power_loss(TimePoint now, Rng& rng,
                                              double torn_probability) {
  std::vector<std::string> torn;
  if (torn_probability <= 0.0 || records_.empty()) return torn;
  // Unsynced appends are the ones whose write window is still open.
  // They necessarily form a suffix of the arrival-ordered records, but
  // each is torn independently, so rebuild rather than truncate.
  std::vector<Record> kept;
  kept.reserve(records_.size());
  for (Record& record : records_) {
    const bool unsynced =
        !record.processed && record.received_at + write_latency_ > now;
    if (unsynced && rng.chance(torn_probability)) {
      torn.push_back(record.alert.id);
      continue;
    }
    kept.push_back(std::move(record));
  }
  if (!torn.empty()) {
    records_ = std::move(kept);
    index_.clear();
    for (std::size_t i = 0; i < records_.size(); ++i) {
      index_[records_[i].alert.id] = i;
    }
    stats_.bump("torn_appends", static_cast<std::int64_t>(torn.size()));
    if (trace_ != nullptr) {
      for (const std::string& id : torn) {
        trace_->emit(id, "log", "torn", now, "append lost to power cut");
      }
    }
  }
  return torn;
}

bool AlertLog::contains(const std::string& alert_id) const {
  return index_.count(alert_id) > 0;
}

bool AlertLog::processed(const std::string& alert_id) const {
  const auto it = index_.find(alert_id);
  return it != index_.end() && records_[it->second].processed;
}

std::vector<Alert> AlertLog::unprocessed() const {
  std::vector<Alert> out;
  for (const auto& record : records_) {
    if (!record.processed) out.push_back(record.alert);
  }
  return out;
}

AlertLog::State AlertLog::save_state() const {
  State state;
  state.records.reserve(records_.size());
  for (const Record& record : records_) {
    state.records.push_back(SavedRecord{record.alert, record.received_at,
                                        record.processed_at,
                                        record.processed});
  }
  state.stats = stats_;
  return state;
}

void AlertLog::restore_state(State state) {
  records_.clear();
  index_.clear();
  records_.reserve(state.records.size());
  for (SavedRecord& saved : state.records) {
    index_[saved.alert.id] = records_.size();
    records_.push_back(Record{std::move(saved.alert), saved.received_at,
                              saved.processed_at, saved.processed});
  }
  stats_.restore_state(std::move(state.stats));
}

}  // namespace simba::core
