// MyAlertBuddy (MAB) — the personal alert router at the center of the
// SIMBA architecture (Sections 3.3, 4.2).
//
// "All alerts for a user are first sent to the user's MyAlertBuddy,
// which then performs personalized alert routing." One incarnation of
// the MAB daemon process: it receives alert IMs and emails through the
// Communication Managers, applies pessimistic logging, acknowledges,
// classifies, aggregates, filters, and routes via delivery modes, and
// runs the self-stabilization checks. Restart policy lives outside (the
// MDC watchdog, src/core/mdc.h); one MyAlertBuddy object is one process
// incarnation, created fresh by the host on every (re)start.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "automation/email_manager.h"
#include "automation/im_manager.h"
#include "core/alert_log.h"
#include "core/category_map.h"
#include "core/classifier.h"
#include "core/coalescer.h"
#include "core/delivery_engine.h"
#include "core/digest.h"
#include "core/profile.h"
#include "core/rate_limit.h"
#include "sim/simulator.h"
#include "util/calendar.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/trace.h"

namespace simba::core {

/// The user's persistent configuration: everything the paper lets the
/// user customize at their alert buddy. Owned by the host machine and
/// shared across MAB incarnations; remote commands mutate it.
struct MabConfig {
  UserProfile profile;
  /// Additional profiles for shared categories ("supports multiple
  /// subscribers per category to allow alert sharing").
  // simba-lint: ordered (config state; shared-category sweeps sorted)
  std::map<std::string, UserProfile> shared_profiles;
  SubscriptionRegistry subscriptions;
  AlertClassifier classifier;
  CategoryMap categories;

  const UserProfile* profile_for(const std::string& user) const;
};

/// Overload-control surface: admission limits, semantic coalescing,
/// priority-lane delivery, and bounded queues. Every knob defaults to
/// "off", leaving the pre-overload event schedule untouched.
struct OverloadOptions {
  /// Owner-wide admission bucket: total alert rate this MAB accepts
  /// for individual delivery. 0 rate = unlimited.
  TokenBucketConfig per_user;
  /// Per-source admission buckets (one per alert.source, lazily
  /// created). 0 rate = unlimited.
  TokenBucketConfig per_source;
  /// Fold over-limit alerts into per-category digest alerts instead of
  /// shedding them outright.
  bool coalesce_enabled = false;
  CoalescerOptions coalesce;
  /// Deferred-processing jobs (processing_delay > 0) the inbox holds;
  /// one more is shed. 0 = unbounded.
  std::size_t inbox_bound = 0;
  /// Delivery-engine concurrency limit and priority lanes.
  DeliveryEngineOptions engine;
};

/// Behavioral knobs (fault-tolerance toggles are the E8 ablation axes).
struct MabOptions {
  bool pessimistic_logging = true;
  bool self_stabilization = true;
  Duration sanity_interval = minutes(1);       // paper: every minute
  Duration dialog_check_interval = seconds(20);  // paper: every 20 seconds
  Duration pump_sweep_interval = seconds(30);  // missed-event sweep
  /// Per-alert processing cost between acknowledgement and routing
  /// (XML parsing, classification, automation-interface calls — the
  /// real MAB spent hundreds of milliseconds here).
  Duration processing_delay{};
  /// Keyword an unmapped classifier keyword falls back to; empty means
  /// the keyword itself becomes the category (identity aggregation).
  std::string default_category;
  /// Daily digest of retained (filtered) alerts; disabled by clearing.
  bool digest_enabled = true;
  TimeOfDay digest_time = TimeOfDay::at(8, 0);

  // Resource model for the MAB process itself.
  double base_memory_mb = 25.0;
  double leak_mb_per_alert = 0.0;
  double leak_mb_per_hour = 0.0;
  double memory_soft_limit_mb = 300.0;  // self-stabilization rejuvenates
  double memory_hard_limit_mb = 600.0;  // process hangs
  Duration mean_time_to_hang{};         // spontaneous hang (0 = never)

  /// Lifecycle tracing (null disables it). Owned by the world; shared
  /// across MAB incarnations so a restart keeps appending to the same
  /// alert timelines. Also handed to this incarnation's DeliveryEngine.
  util::Trace* trace = nullptr;

  /// Storm defenses (all off by default).
  OverloadOptions overload;
};

class MyAlertBuddy {
 public:
  MyAlertBuddy(sim::Simulator& sim, MabConfig& config, AlertLog& log,
               DigestStore& digest, AlertCoalescer& coalescer,
               automation::ImManager& im, automation::EmailManager& email,
               MabOptions options, Rng rng);
  ~MyAlertBuddy();

  MyAlertBuddy(const MyAlertBuddy&) = delete;
  MyAlertBuddy& operator=(const MyAlertBuddy&) = delete;

  /// Recovery scan ("first checks the log file for unprocessed IMs
  /// before accepting new alerts"), then event wiring and periodic
  /// tasks.
  void start();

  bool running() const { return running_ && !hung_; }
  bool terminated() const { return !running_; }
  bool hung() const { return hung_; }

  /// The MDC's non-blocking liveness probe. A hung process gives no
  /// answer — modeled as returning false (the MDC treats it as a
  /// missed reply either way).
  bool are_you_working();

  /// Graceful termination (software rejuvenation kinds 1 and 3, and
  /// the nightly shutdown). Fires on_terminated exactly once.
  void request_shutdown(const std::string& reason);

  /// Scripted fault hooks.
  void force_hang();

  double memory_mb() const;

  void set_on_terminated(std::function<void(const std::string& reason,
                                            bool expected)> cb) {
    on_terminated_ = std::move(cb);
  }

  DeliveryEngine& engine() { return *engine_; }
  const Counters& stats() const { return stats_; }
  Counters& stats() { return stats_; }

  /// Exposed for tests: one IM / email pump pass.
  void pump_im();
  void pump_email();

  /// Experiment hook: observes every alert the instant the MAB accepts
  /// it off a channel (before logging/processing) — used to measure
  /// the paper's one-way delivery times.
  void set_alert_observer(
      std::function<void(const Alert&, TimePoint received)> observer) {
    alert_observer_ = std::move(observer);
  }

  /// Observes every alert shed by a bounded queue (MAB inbox or a
  /// delivery lane) — the conservation checker's shed feed.
  void set_shed_observer(
      std::function<void(const std::string& alert_id, TimePoint at)> observer) {
    shed_observer_ = std::move(observer);
  }

  /// Observes every alert folded into a digest — the conservation
  /// checker's coalesced feed.
  void set_coalesce_observer(
      std::function<void(const std::string& alert_id, TimePoint at)> observer) {
    coalesce_observer_ = std::move(observer);
  }

 private:
  void handle_alert_im(const im::ImMessage& message);
  void send_ack(const std::string& to_user, const std::string& alert_id);
  void handle_command(const std::string& text, const std::string& from_user);
  /// Queues `alert` for processing after the per-alert processing
  /// delay (or processes immediately with no delay), shedding it when
  /// the bounded inbox is full.
  void process_after_delay(const Alert& alert);
  void process_alert(const Alert& alert);
  /// Admission decision for an already-classified alert. Returns true
  /// when the alert may be routed individually; false when it was
  /// coalesced or shed (terminal — the caller marks it processed).
  bool admit(const Alert& alert, const std::string& category);
  /// Folds an over-limit alert into its category window, scheduling
  /// the window flush when one opens.
  void coalesce(const Alert& alert, const std::string& category);
  /// Routes one flushed coalescer window as a digest alert.
  void emit_coalesced_digest(const AlertCoalescer::Digest& digest);
  void flush_coalescer(bool all, const char* trigger);
  void send_digest(const char* trigger);
  void route(const Alert& alert, const std::string& category);
  void stabilization_tick();
  void sanity_tick();
  /// Unhandled-exception path: "whenever MyAlertBuddy catches an
  /// exception that cannot be handled ... MyAlertBuddy gracefully
  /// terminates and gets restarted by the MDC."
  void fail_with(const std::string& reason);
  void progress() { last_progress_ = sim_.now(); }
  /// True when lifecycle tracing is armed; call sites that build a
  /// detail string check this first so untraced runs never pay for
  /// the concatenation.
  bool traced() const { return options_.trace != nullptr; }
  /// Instant trace event on `alert_id` (no-op untraced).
  void trace_event(const std::string& alert_id, const char* stage,
                   std::string detail);

  sim::Simulator& sim_;
  MabConfig& config_;
  AlertLog& log_;
  DigestStore& digest_;
  AlertCoalescer& coalescer_;
  automation::ImManager& im_;
  automation::EmailManager& email_;
  MabOptions options_;
  Rng rng_;
  std::unique_ptr<DeliveryEngine> engine_;
  bool running_ = true;
  bool hung_ = false;
  TimePoint started_at_{};
  TimePoint last_progress_{};
  std::uint64_t alerts_processed_ = 0;
  sim::TaskHandle sweep_task_;
  sim::TaskHandle sanity_task_;
  sim::TaskHandle stabilization_task_;
  sim::EventId digest_event_ = 0;
  sim::EventId hang_event_ = 0;
  /// Async work (log writes, deferred processing, ack completions) can
  /// outlive this incarnation; callbacks hold the token and bail once
  /// the object is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::function<void(const std::string&, bool)> on_terminated_;
  std::function<void(const Alert&, TimePoint)> alert_observer_;
  std::function<void(const std::string&, TimePoint)> shed_observer_;
  std::function<void(const std::string&, TimePoint)> coalesce_observer_;
  /// Admission state. Per-incarnation: a restarted MAB starts with
  /// full buckets, which only ever admits more, never loses alerts.
  TokenBucket user_bucket_;
  KeyedTokenBuckets source_buckets_;
  /// Deferred-processing jobs currently queued (inbox bound).
  int inbox_pending_ = 0;
  Counters stats_;
};

}  // namespace simba::core
