// Semantic coalescing for over-limit alerts.
//
// When admission control suppresses an alert, it is not discarded:
// the coalescer folds suppressed alerts of the same category within a
// window into one digest alert ("12 motion alerts in 30s") carrying
// the count and a few representative alert ids. Like the pessimistic
// log and the DigestStore, the coalescer is owned by the host machine
// and survives MAB restarts — a crash mid-window loses nothing; the
// next incarnation flushes the pending windows on start.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alert.h"
#include "util/flat_map.h"
#include "util/time.h"

namespace simba::core {

struct CoalescerOptions {
  /// How long a window stays open collecting alerts of one category.
  Duration window = seconds(30);
  /// A window folding this many alerts flushes early (0 = no cap).
  std::size_t max_batch = 0;
  /// How many folded alert ids the digest carries as trace links.
  std::size_t representatives = 3;
};

/// Prefix shared by every digest alert id, so downstream accounting
/// (sighting observers, invariant checkers) can tell digests from the
/// original alerts they summarize.
inline constexpr char kDigestIdPrefix[] = "dg.";

inline bool is_digest_alert_id(const std::string& id) {
  return id.rfind(kDigestIdPrefix, 0) == 0;
}

class AlertCoalescer {
 public:
  enum class FoldResult {
    kOpenedWindow,  // first alert of a fresh window — caller schedules flush
    kFolded,        // joined an open window
    kDuplicate,     // already folded this alert id (e.g. recovery replay)
    kBatchFull,     // folded and the window hit max_batch — flush now
  };

  /// One flushed window, ready to become a digest alert.
  struct Digest {
    std::string category;
    std::size_t count = 0;
    std::vector<std::string> representative_ids;
    TimePoint opened_at{};
    TimePoint flushed_at{};
    std::uint64_t sequence = 0;

    /// The digest alert's own id ("dg.<seq>").
    std::string alert_id() const;
    /// "12 Aladdin alerts in 30s" style subject line.
    std::string subject() const;
    /// Body listing the representative alert ids.
    std::string body() const;
  };

  explicit AlertCoalescer(CoalescerOptions options = {})
      : options_(options) {}

  const CoalescerOptions& options() const { return options_; }

  /// Folds `alert` into the category's open window (opening one if
  /// needed). Duplicate ids within a window fold to kDuplicate so a
  /// recovery replay cannot double-count.
  FoldResult add(const Alert& alert, const std::string& category,
                 TimePoint now);

  /// Flushes every window whose deadline has passed. Windows flush in
  /// category order for determinism.
  std::vector<Digest> flush_due(TimePoint now);

  /// Flushes everything regardless of deadline (MAB reboot, shutdown).
  std::vector<Digest> flush_all(TimePoint now);

  std::size_t open_windows() const { return windows_.size(); }
  std::size_t pending_alerts() const;

  /// Checkpoint state (sim/snapshot.h): open windows survive a
  /// crash-restart exactly as they survive a MAB crash — the next
  /// incarnation flushes them on start. The digest sequence carries
  /// over so digest ids never repeat after a restore.
  struct WindowState {
    std::string category;
    std::size_t count = 0;
    std::vector<std::string> representative_ids;
    std::vector<std::string> folded_ids;  // sorted (sorted_items order)
    TimePoint opened_at{};
    TimePoint deadline{};
  };
  struct State {
    std::vector<WindowState> windows;  // sorted by category
    std::uint64_t next_sequence = 1;
  };
  State save_state() const;
  void restore_state(const State& state);

 private:
  struct Window {
    std::size_t count = 0;
    std::vector<std::string> representative_ids;
    util::FlatSet<std::string> folded_ids;
    TimePoint opened_at{};
    TimePoint deadline{};
  };

  Digest flush_window(const std::string& category, Window& window,
                      TimePoint now);

  CoalescerOptions options_;
  /// Per-category open windows. The add() path is a single hash probe;
  /// everything order-sensitive (flush order assigns digest sequence
  /// numbers, save_state feeds snapshot images) iterates through
  /// sorted_items() so digest ids and checkpoint bytes stay identical
  /// to the old std::map behaviour.
  util::FlatMap<std::string, Window> windows_;
  // Monotonic across MAB incarnations: the coalescer outlives crashes,
  // so digest ids never repeat after a restart.
  std::uint64_t next_sequence_ = 1;
};

}  // namespace simba::core
