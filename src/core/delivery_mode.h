// Delivery modes (Sections 3.2, 4.1) — SIMBA's abstraction for
// personalized dependability levels.
//
// "An XML document for a delivery mode contains one or more
// communication blocks, each of which contains one or more actions.
// Each action maps to the friendly name of an address." Blocks are
// ordered fallback stages: a block's actions are attempted together; if
// the block fails (no action succeeds — disabled addresses, offline
// recipients, missing acknowledgements — within its timeout), delivery
// falls back to the next block. Figure 4's two-block sample document is
// reproduced by sample_urgent_mode() below and round-tripped in tests.
#pragma once

#include <string>
#include <vector>

#include "util/result.h"
#include "xml/xml.h"
#include "util/time.h"

namespace simba::core {

struct DeliveryAction {
  /// Friendly name of an address in the user's AddressBook.
  std::string address_name;
  /// For IM actions: require an application-level acknowledgement from
  /// the receiving side before the action counts as delivered.
  bool require_ack = false;
};

struct DeliveryBlock {
  /// How long the block may wait for a success (acks included) before
  /// falling back to the next block.
  Duration timeout = seconds(30);
  std::vector<DeliveryAction> actions;
};

class DeliveryMode {
 public:
  DeliveryMode() = default;
  explicit DeliveryMode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  DeliveryBlock& add_block(Duration timeout = seconds(30));
  const std::vector<DeliveryBlock>& blocks() const { return blocks_; }
  bool empty() const { return blocks_.empty(); }

  /// XML round trip. Timeouts serialize as whole seconds.
  std::string to_xml() const;
  static Result<DeliveryMode> from_xml(const std::string& xml_text);
  /// Element-level forms for embedding (core/config_xml.h).
  void append_to(xml::Element& parent) const;
  static Result<DeliveryMode> from_element(const xml::Element& element);

  /// The paper's Figure 4 document: block 1 = IM with ack then SMS;
  /// block 2 = two email fallbacks.
  static DeliveryMode sample_urgent_mode();

 private:
  std::string name_;
  std::vector<DeliveryBlock> blocks_;
};

}  // namespace simba::core
