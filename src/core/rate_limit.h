#pragma once

#include <string>

#include "util/flat_map.h"
#include "util/time.h"

namespace simba::core {

// Token-bucket rate limiter driven purely by virtual time. A bucket
// holds up to `burst` tokens and refills continuously at
// `rate_per_sec`; each admitted alert takes one token. rate_per_sec
// of 0 disables the bucket (try_take always succeeds), which keeps
// the default MAB configuration byte-identical to the pre-overload
// behavior.
struct TokenBucketConfig {
  double rate_per_sec = 0.0;  // 0 = unlimited
  double burst = 1.0;         // bucket capacity in tokens
};

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(TokenBucketConfig config, TimePoint start)
      : config_(config), tokens_(config.burst), last_refill_(start) {}

  bool enabled() const { return config_.rate_per_sec > 0.0; }

  // Refills for the elapsed virtual time and, if at least `tokens`
  // are available, consumes them. Disabled buckets always admit.
  bool try_take(TimePoint now, double tokens = 1.0);

  // Whether try_take(now, tokens) would succeed, without consuming.
  // Lets a caller check several buckets before committing to any.
  bool can_take(TimePoint now, double tokens = 1.0);

  // Tokens currently available at `now` (refills as a side effect).
  double available(TimePoint now);

 private:
  void refill(TimePoint now);

  TokenBucketConfig config_;
  double tokens_ = 0.0;
  TimePoint last_refill_ = kTimeZero;
};

// Keyed bucket set: one bucket per alert source, lazily created on
// first sight with a shared config. Iteration order never matters
// (lookup only), so the per-admission probe is a flat-map hash hit.
class KeyedTokenBuckets {
 public:
  KeyedTokenBuckets() = default;
  explicit KeyedTokenBuckets(TokenBucketConfig config) : config_(config) {}

  bool enabled() const { return config_.rate_per_sec > 0.0; }

  // Peeks whether the bucket for `key` currently has a token without
  // consuming it. Used to check multiple buckets before committing.
  bool can_take(const std::string& key, TimePoint now);

  bool try_take(const std::string& key, TimePoint now);

  size_t size() const { return buckets_.size(); }

 private:
  TokenBucket& bucket(const std::string& key, TimePoint now);

  TokenBucketConfig config_;
  util::FlatMap<std::string, TokenBucket> buckets_;
};

}  // namespace simba::core
