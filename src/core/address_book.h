// User addresses, XML-encoded (Section 4.1): "An XML document for user
// addresses consists of a list of all of a user's addresses for alert
// delivery. Each address is associated with a communication type (e.g.,
// 'IM', 'SMS', and 'EM') and identified by a friendly name such as
// 'MSN IM', 'Work email', etc."
//
// Enable/disable is the dynamic-customization hook: "she only needs to
// ask MyAlertBuddy to temporarily disable her SMS address. Any delivery
// block that contains an SMS action will automatically fail and fall
// back to the next backup block."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "xml/xml.h"

namespace simba::core {

enum class CommType { kIm, kSms, kEmail };

const char* to_string(CommType type);
Result<CommType> comm_type_from_string(const std::string& text);

struct Address {
  std::string friendly_name;  // "MSN IM", "Work email", "Cell SMS"
  CommType type = CommType::kEmail;
  /// IM account, email address, or SMS email address respectively.
  std::string value;
  bool enabled = true;
};

class AddressBook {
 public:
  AddressBook() = default;
  explicit AddressBook(std::string user) : user_(std::move(user)) {}

  const std::string& user() const { return user_; }

  /// Adds or replaces the address with the same friendly name.
  void put(Address address);
  Status remove(const std::string& friendly_name);
  const Address* find(const std::string& friendly_name) const;
  const std::vector<Address>& all() const { return addresses_; }
  std::vector<const Address*> of_type(CommType type) const;

  /// Temporarily disables/enables an address by friendly name.
  Status set_enabled(const std::string& friendly_name, bool enabled);
  bool enabled(const std::string& friendly_name) const;

  /// XML round trip.
  std::string to_xml() const;
  static Result<AddressBook> from_xml(const std::string& xml_text);
  /// Element-level forms, for embedding in larger documents
  /// (core/config_xml.h).
  void append_to(xml::Element& parent) const;
  static Result<AddressBook> from_element(const xml::Element& element);

 private:
  std::string user_;
  std::vector<Address> addresses_;
};

}  // namespace simba::core
