#include "core/config_xml.h"

#include "util/strings.h"
#include "xml/xml.h"

namespace simba::core {

const char* to_string(KeywordLocation location) {
  switch (location) {
    case KeywordLocation::kNativeCategory: return "nativeCategory";
    case KeywordLocation::kSenderName: return "senderName";
    case KeywordLocation::kSubject: return "subject";
    case KeywordLocation::kBody: return "body";
  }
  return "?";
}

Result<KeywordLocation> keyword_location_from_string(const std::string& text) {
  if (iequals(text, "nativeCategory")) return KeywordLocation::kNativeCategory;
  if (iequals(text, "senderName")) return KeywordLocation::kSenderName;
  if (iequals(text, "subject")) return KeywordLocation::kSubject;
  if (iequals(text, "body")) return KeywordLocation::kBody;
  return make_error("unknown keyword location: " + text);
}

namespace {

std::string format_tod(TimeOfDay tod) {
  return strformat("%02d:%02d", tod.hour(), tod.minute());
}

Result<TimeOfDay> parse_tod(const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() != 2) return make_error("bad time of day: " + text);
  try {
    const int hour = std::stoi(parts[0]);
    const int minute = std::stoi(parts[1]);
    if (hour < 0 || hour > 23 || minute < 0 || minute > 59) {
      return make_error("time of day out of range: " + text);
    }
    return TimeOfDay::at(hour, minute);
  } catch (...) {
    return make_error("bad time of day: " + text);
  }
}

void append_profile_body(xml::Element& parent, const UserProfile& profile) {
  profile.addresses().append_to(parent);
  for (const auto& name : profile.mode_names()) {
    profile.mode(name)->append_to(parent);
  }
}

Status parse_profile_body(const xml::Element& parent, UserProfile& profile) {
  for (const auto& child : parent.children()) {
    if (child->name() == "addresses") {
      auto book = AddressBook::from_element(*child);
      if (!book.ok()) return Status::failure(book.error());
      profile.addresses() = book.value();
    } else if (child->name() == "deliveryMode") {
      auto mode = DeliveryMode::from_element(*child);
      if (!mode.ok()) return Status::failure(mode.error());
      const Status defined = profile.define_mode(std::move(mode).take());
      if (!defined.ok()) return defined;
    }
  }
  return Status::success();
}

}  // namespace

std::string config_to_xml(const MabConfig& config) {
  xml::Element root("mabConfig");
  root.set_attr("owner", config.profile.user());
  append_profile_body(root, config.profile);

  for (const auto& [user, profile] : config.shared_profiles) {
    xml::Element& shared = root.add_child("profile");
    shared.set_attr("user", user);
    append_profile_body(shared, profile);
  }

  xml::Element& classifier = root.add_child("classifier");
  for (const auto& rule : config.classifier.rules()) {
    xml::Element& r = classifier.add_child("rule");
    r.set_attr("source", rule.source);
    r.set_attr("location", to_string(rule.location));
    if (!rule.unsubscribe_info.empty()) {
      r.set_attr("unsubscribe", rule.unsubscribe_info);
    }
    for (const auto& keyword : rule.keywords) {
      r.add_child("keyword").set_text(keyword);
    }
  }

  xml::Element& categories = root.add_child("categories");
  for (const auto& [keyword, category] : config.categories.mappings()) {
    xml::Element& m = categories.add_child("map");
    m.set_attr("keyword", keyword);
    m.set_attr("category", category);
  }
  for (const auto& category : config.categories.disabled_categories()) {
    categories.add_child("disabled").set_attr("category", category);
  }
  for (const auto& [category, window] : config.categories.windows()) {
    xml::Element& w = categories.add_child("window");
    w.set_attr("category", category);
    w.set_attr("start", format_tod(window.start));
    w.set_attr("end", format_tod(window.end));
  }

  xml::Element& subscriptions = root.add_child("subscriptions");
  for (const auto& sub : config.subscriptions.all()) {
    xml::Element& s = subscriptions.add_child("subscription");
    s.set_attr("category", sub.category);
    s.set_attr("user", sub.user);
    s.set_attr("mode", sub.mode_name);
  }
  return root.serialize();
}

Result<MabConfig> config_from_xml(const std::string& xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return make_error(doc.error());
  const xml::Element& root = doc.value().root();
  if (root.name() != "mabConfig") {
    return make_error("expected <mabConfig> root, got <" + root.name() + ">");
  }
  MabConfig config;
  config.profile = UserProfile(root.attr_or("owner", ""));
  const Status owner = parse_profile_body(root, config.profile);
  if (!owner.ok()) return make_error(owner.error());

  for (const auto* shared : root.children("profile")) {
    const std::string user = shared->attr_or("user", "");
    if (user.empty()) return make_error("<profile> missing user attribute");
    UserProfile profile(user);
    const Status parsed = parse_profile_body(*shared, profile);
    if (!parsed.ok()) return make_error(parsed.error());
    config.shared_profiles[user] = std::move(profile);
  }

  if (const xml::Element* classifier = root.child("classifier")) {
    for (const auto* r : classifier->children("rule")) {
      SourceRule rule;
      rule.source = r->attr_or("source", "");
      if (rule.source.empty()) return make_error("<rule> missing source");
      auto location = keyword_location_from_string(r->attr_or("location", ""));
      if (!location.ok()) return make_error(location.error());
      rule.location = location.value();
      rule.unsubscribe_info = r->attr_or("unsubscribe", "");
      for (const auto* keyword : r->children("keyword")) {
        rule.keywords.push_back(keyword->text());
      }
      config.classifier.add_rule(std::move(rule));
    }
  }

  if (const xml::Element* categories = root.child("categories")) {
    for (const auto* m : categories->children("map")) {
      const std::string keyword = m->attr_or("keyword", "");
      const std::string category = m->attr_or("category", "");
      if (keyword.empty() || category.empty()) {
        return make_error("<map> needs keyword and category");
      }
      config.categories.map_keyword(keyword, category);
    }
    for (const auto* d : categories->children("disabled")) {
      config.categories.set_category_enabled(d->attr_or("category", ""),
                                             false);
    }
    for (const auto* w : categories->children("window")) {
      auto start = parse_tod(w->attr_or("start", ""));
      if (!start.ok()) return make_error(start.error());
      auto end = parse_tod(w->attr_or("end", ""));
      if (!end.ok()) return make_error(end.error());
      config.categories.set_delivery_window(
          w->attr_or("category", ""), DailyWindow{start.value(), end.value()});
    }
  }

  if (const xml::Element* subscriptions = root.child("subscriptions")) {
    for (const auto* s : subscriptions->children("subscription")) {
      const Status subscribed = config.subscriptions.subscribe(
          s->attr_or("category", ""), s->attr_or("user", ""),
          s->attr_or("mode", ""));
      if (!subscribed.ok()) return make_error(subscribed.error());
    }
  }
  return config;
}

}  // namespace simba::core
