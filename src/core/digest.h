// Retention for filtered alerts.
//
// Section 3.3 describes MyAlertBuddy as "a personal alert filter that
// temporarily blocks unwanted alerts, which might have been useful
// before and may be useful in the future" — blocked is not discarded.
// Alerts arriving for a disabled category are retained here and
// delivered as a once-a-day digest email (or on demand via the
// "SIMBA DIGEST" remote command). Like the pessimistic log, the store
// is a disk file owned by the host machine, surviving MAB restarts.
#pragma once

#include <string>
#include <vector>

#include "core/alert.h"
#include "util/stats.h"

namespace simba::core {

class DigestStore {
 public:
  struct Entry {
    Alert alert;
    std::string category;
    TimePoint filtered_at{};
  };

  void add(const Alert& alert, const std::string& category, TimePoint at);

  /// Returns everything retained and clears the store (the digest was
  /// sent).
  std::vector<Entry> drain();

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Renders the digest email body: one line per alert, grouped by
  /// category, oldest first.
  std::string render_body() const;

  const Counters& stats() const { return stats_; }

  /// Checkpoint state (sim/snapshot.h): like the alert log, the store
  /// models a disk file and is carried verbatim across a crash-restart.
  struct State {
    std::vector<Entry> entries;
    Counters stats;
  };
  State save_state() const { return State{entries_, stats_}; }
  void restore_state(State state) {
    entries_ = std::move(state.entries);
    stats_.restore_state(std::move(state.stats));
  }

 private:
  std::vector<Entry> entries_;
  Counters stats_;
};

}  // namespace simba::core
