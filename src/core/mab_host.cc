#include "core/mab_host.h"

#include "util/log.h"

namespace simba::core {

MabHost::MabHost(sim::Simulator& sim, net::MessageBus& bus,
                 im::ImServer& im_server, email::EmailServer& email_server,
                 MabHostOptions options)
    : sim_(sim),
      im_server_(im_server),
      email_server_(email_server),
      options_(std::move(options)),
      desktop_(sim),
      coalescer_(options_.mab_options.overload.coalesce),
      chaos_rng_(sim.make_rng("host.chaos." + options_.owner)) {
  if (options_.im_account.empty()) {
    options_.im_account = options_.owner + ".mab";
  }
  if (options_.email_address.empty()) {
    options_.email_address = options_.owner + ".mab@simba.example.net";
  }
  im_server_.register_account(options_.im_account);
  email_server_.create_mailbox(options_.email_address);
  alert_log_.set_trace(options_.trace);
  options_.mab_options.trace = options_.trace;

  im_client_ = std::make_unique<im::ImClientApp>(
      sim_, desktop_, bus, im_server_.address(), options_.im_account,
      options_.im_client_profile, options_.im_client_config);
  email_client_ = std::make_unique<email::EmailClientApp>(
      sim_, desktop_, email_server_, options_.email_address,
      options_.email_client_profile, options_.email_client_config);
  im_manager_ =
      std::make_unique<automation::ImManager>(sim_, desktop_, *im_client_);
  email_manager_ = std::make_unique<automation::EmailManager>(sim_, desktop_,
                                                              *email_client_);
  mdc_ = std::make_unique<MasterDaemonController>(
      sim_, options_.mdc_options,
      /*probe=*/[this] { return mab_ != nullptr && mab_->are_you_working(); },
      /*restart=*/[this] { restart_mab(); },
      /*reboot=*/[this] { reboot_machine(); });

  // Power events (ignored entirely when a UPS is fitted).
  if (!options_.has_ups) {
    for (const auto& outage : options_.power_plan.outages()) {
      sim_.at(outage.start, [this] { power_down(); }, "host.power_down");
      sim_.at(outage.end, [this] { power_up(); }, "host.power_up");
    }
  }
}

MabHost::~MabHost() {
  if (nightly_event_ != 0) sim_.cancel(nightly_event_);
}

void MabHost::start() { boot(); }

void MabHost::boot() {
  machine_up_ = true;
  stats_.bump("boots");
  log_info("host." + options_.owner, "machine booted");
  im_manager_->start();  // launches the IM client and signs in
  email_manager_->start();
  if (!options_.monkey_enabled) {
    im_manager_->stop_monkey();
    email_manager_->stop_monkey();
  }
  if (options_.watchdog_enabled) mdc_->start();
  spawn_mab();
  if (options_.nightly_rejuvenation) schedule_nightly();
}

void MabHost::spawn_mab() {
  if (!machine_up_) return;
  ++mab_incarnations_;
  stats_.bump("mab_incarnations");
  mab_ = std::make_unique<MyAlertBuddy>(
      sim_, options_.config, alert_log_, digest_, coalescer_, *im_manager_,
      *email_manager_, options_.mab_options,
      sim_.make_rng("mab." + options_.owner + "." +
                    std::to_string(mab_incarnations_)));
  mab_->set_on_terminated([this](const std::string& reason, bool expected) {
    stats_.bump(expected ? "mab_shutdowns" : "mab_failures");
    // Destroying the incarnation inside its own callback frame is not
    // safe; defer to the next event, then let the MDC schedule the
    // relaunch (it already knows). Without the watchdog (E8 ablation)
    // nothing relaunches — the daemon just stays dead.
    if (options_.watchdog_enabled) mdc_->notify_terminated(reason, expected);
    sim_.after(Duration::zero(), [this] {
      if (mab_ && mab_->terminated()) retire_mab();
    });
  });
  if (alert_observer_) mab_->set_alert_observer(alert_observer_);
  if (shed_observer_) mab_->set_shed_observer(shed_observer_);
  if (coalesce_observer_) mab_->set_coalesce_observer(coalesce_observer_);
  mab_->start();
}

void MabHost::kill_mab() { retire_mab(); }

void MabHost::retire_mab() {
  if (!mab_) return;
  mab_totals_.merge(mab_->stats());
  mab_.reset();
}

void MabHost::restart_mab() {
  if (!machine_up_) return;
  kill_mab();
  // The restart also rights the client software if the failure took it
  // down with the machine's resources; normally these are no-ops.
  if (!im_client_->running() &&
      im_client_->state() != gui::ProcessState::kHung) {
    im_manager_->start();
  }
  if (!email_client_->running() &&
      email_client_->state() != gui::ProcessState::kHung) {
    email_manager_->start();
  }
  // Manager start() re-arms the monkey thread; re-apply the ablation.
  if (!options_.monkey_enabled) {
    im_manager_->stop_monkey();
    email_manager_->stop_monkey();
  }
  spawn_mab();
}

void MabHost::reboot_machine() {
  if (!machine_up_) return;
  stats_.bump("reboots");
  log_warn("host." + options_.owner, "rebooting machine");
  power_down();
  sim_.after(options_.boot_time, [this] { power_up(); }, "host.reboot");
}

void MabHost::schedule_nightly() {
  if (nightly_event_ != 0) sim_.cancel(nightly_event_);
  const TimePoint next =
      next_occurrence(sim_.now(), options_.rejuvenation_time);
  nightly_event_ = sim_.at(
      next, [this] { nightly_rejuvenation(); }, "host.nightly_rejuvenation");
}

void MabHost::nightly_rejuvenation() {
  nightly_event_ = 0;
  if (machine_up_) {
    stats_.bump("nightly_rejuvenations");
    log_info("host." + options_.owner, "nightly rejuvenation at 23:30");
    // "requests an orderly shutdown of all the communication client
    // software and terminates itself."
    if (mab_) mab_->request_shutdown("nightly rejuvenation");
    im_client_->kill();
    email_client_->kill();
    // The MDC's rejuvenation restart brings everything back (the
    // restart path relaunches dead clients).
  }
  schedule_nightly();
}

void MabHost::inject_mab_crash() {
  if (!machine_up_ || !mab_) return;
  stats_.bump("chaos.mab_crashes");
  log_warn("host." + options_.owner, "chaos: MAB process killed");
  // SIGKILL semantics: the process vanishes without firing its
  // termination callback. Nothing notifies the MDC — its heartbeat
  // probe finds no working daemon and drives the restart.
  kill_mab();
}

void MabHost::inject_mab_hang() {
  if (!machine_up_ || !mab_) return;
  stats_.bump("chaos.mab_hangs");
  log_warn("host." + options_.owner, "chaos: MAB hung");
  mab_->force_hang();
}

void MabHost::inject_reboot() {
  if (!machine_up_) return;
  stats_.bump("chaos.reboots");
  log_warn("host." + options_.owner, "chaos: forced reboot");
  reboot_machine();
}

void MabHost::power_down() {
  if (!machine_up_) return;
  machine_up_ = false;
  stats_.bump("power_losses");
  log_warn("host." + options_.owner, "power lost");
  // Torn appends: log writes still inside their sync window may not
  // have hit the platter. Decided before anything else dies so the
  // window is judged at the instant power is lost.
  if (options_.torn_append_probability > 0.0) {
    const auto torn = alert_log_.power_loss(sim_.now(), chaos_rng_,
                                            options_.torn_append_probability);
    if (!torn.empty()) {
      stats_.bump("chaos.torn_appends",
                  static_cast<std::int64_t>(torn.size()));
    }
  }
  mdc_->stop();
  // Processes die instantly; no graceful anything. The alert log is a
  // disk file and survives; client mailboxes are server-side.
  retire_mab();
  im_client_->kill();
  email_client_->kill();
  desktop_.clear();
}

void MabHost::power_up() {
  if (machine_up_) return;
  sim_.after(options_.boot_time, [this] {
    if (machine_up_) return;
    boot();
  }, "host.boot");
}

MabHost::State MabHost::save_state() const {
  State state;
  state.log = alert_log_.save_state();
  state.digest = digest_.save_state();
  state.coalescer = coalescer_.save_state();
  state.mab_incarnations = mab_incarnations_;
  state.stats = stats_;
  state.mab_totals = mab_stats_total();  // live incarnation folded in
  return state;
}

void MabHost::restore_state(State state) {
  alert_log_.restore_state(std::move(state.log));
  digest_.restore_state(std::move(state.digest));
  coalescer_.restore_state(state.coalescer);
  mab_incarnations_ = state.mab_incarnations;
  stats_.restore_state(std::move(state.stats));
  mab_totals_.restore_state(std::move(state.mab_totals));
}

}  // namespace simba::core
