#include "core/digest.h"

#include <map>

#include "util/strings.h"

namespace simba::core {

void DigestStore::add(const Alert& alert, const std::string& category,
                      TimePoint at) {
  entries_.push_back(Entry{alert, category, at});
  stats_.bump("retained");
}

std::vector<DigestStore::Entry> DigestStore::drain() {
  stats_.bump("drains");
  std::vector<Entry> out;
  out.swap(entries_);
  return out;
}

std::string DigestStore::render_body() const {
  // simba-lint: ordered (digest body lists categories sorted)
  std::map<std::string, std::vector<const Entry*>> by_category;
  for (const auto& entry : entries_) {
    by_category[entry.category].push_back(&entry);
  }
  std::string body = strformat(
      "While these categories were disabled, %zu alert(s) arrived:\n",
      entries_.size());
  for (const auto& [category, items] : by_category) {
    body += "\n[" + category + "]\n";
    for (const Entry* entry : items) {
      body += strformat("  %s  %s (from %s)\n",
                        format_time(entry->filtered_at).c_str(),
                        entry->alert.subject.c_str(),
                        entry->alert.source.c_str());
    }
  }
  return body;
}

}  // namespace simba::core
