// Whole-configuration XML persistence.
//
// Section 4.1 expresses addresses and delivery modes as XML "to allow
// extensibility". This module extends the same treatment to everything
// else the user customizes at the buddy — classifier rules, category
// aggregation/filtering, and subscriptions — so a complete MabConfig
// round-trips through one document. This is what lets a buddy's
// configuration survive machine replacement (and lets tests and
// examples ship readable fixtures).
//
// Document shape:
//
//   <mabConfig owner="alice">
//     <addresses user="alice"> ... </addresses>
//     <deliveryMode name="Urgent"> ... </deliveryMode> (repeated)
//     <classifier>
//       <rule source="aladdin" location="nativeCategory"
//             unsubscribe="..."><keyword>...</keyword>...</rule>
//     </classifier>
//     <categories>
//       <map keyword="Stocks" category="Investment"/>
//       <disabled category="News"/>
//       <window category="News" start="09:00" end="17:00"/>
//     </categories>
//     <subscriptions>
//       <subscription category="Investment" user="alice" mode="Casual"/>
//     </subscriptions>
//   </mabConfig>
//
// Shared profiles are serialized as nested <profile user="..."> blocks
// containing their own <addresses> and <deliveryMode> elements.
#pragma once

#include <string>

#include "core/mab.h"
#include "util/result.h"

namespace simba::core {

std::string config_to_xml(const MabConfig& config);
Result<MabConfig> config_from_xml(const std::string& xml_text);

/// Helpers shared with the tests.
const char* to_string(KeywordLocation location);
Result<KeywordLocation> keyword_location_from_string(const std::string& text);

}  // namespace simba::core
