#include "core/user_endpoint.h"

#include "core/delivery_engine.h"

#include "util/log.h"

namespace simba::core {

UserEndpoint::UserEndpoint(sim::Simulator& sim, net::MessageBus& bus,
                           im::ImServer& im_server,
                           email::EmailServer& email_server,
                           sms::SmsGateway& sms_gateway,
                           UserEndpointOptions options)
    : sim_(sim),
      im_server_(im_server),
      email_server_(email_server),
      gateway_(sms_gateway),
      options_(std::move(options)),
      rng_(sim.make_rng("user." + options_.name)),
      desktop_(sim) {
  if (options_.im_account.empty()) options_.im_account = options_.name;
  if (options_.phone_number.empty()) options_.phone_number = "4255550100";
  if (options_.email_account.empty()) {
    options_.email_account = options_.name + "@home.example.net";
  }
  im_server_.register_account(options_.im_account);
  email_server_.create_mailbox(options_.email_account);
  // The user's own IM client is modeled fault-free: the experiments
  // study the buddy's dependability, not the user's laptop.
  im_client_ = std::make_unique<im::ImClientApp>(
      sim_, desktop_, bus, im_server_.address(), options_.im_account,
      gui::FaultProfile{}, im::ImClientConfig{});
  phone_ = std::make_unique<sms::Phone>(sim_, options_.phone_number);
  phone_->set_outage_plan(options_.phone_outage_plan);
  gateway_.register_phone(*phone_);
}

void UserEndpoint::start() {
  im_client_->launch();
  im_client_->set_new_message_event([this] { pump_im(); });
  enforce_im_presence();
  presence_task_ = sim_.every(seconds(20), [this] { enforce_im_presence(); },
                              "user.presence");
  email_task_ = sim_.every(options_.email_check_interval,
                           [this] { check_email(); }, "user.email_check");
  phone_->set_on_receive([this](const sms::SmsMessage& message) {
    const auto id = message.headers.find("alert_id");
    if (id == message.headers.end()) return;
    // The phone beeps wherever the user is.
    record(id->second, "sms", sim_.now());
  });
}

void UserEndpoint::enforce_im_presence() {
  const bool should_be_online =
      !options_.im_offline_plan.down_at(sim_.now());
  if (should_be_online && !im_client_->is_logged_in()) {
    im_client_->login(nullptr);
  } else if (!should_be_online && im_client_->is_logged_in()) {
    im_client_->logout();
  } else if (should_be_online) {
    // The session may have been dropped server-side (outage); pinging
    // corrects the client's stale belief so the next tick re-logins.
    im_client_->verify_connection(nullptr);
  }
}

void UserEndpoint::pump_im() {
  for (const auto& message : im_client_->fetch_unread()) {
    const auto id = message.headers.find("alert_id");
    if (id == message.headers.end()) {
      stats_.bump("im.non_alert");
      continue;
    }
    if (at_desk()) {
      record(id->second, "im", sim_.now());
      maybe_ack(message, sim_.now());
    } else {
      // The IM pops up on screen; the user sees it when she returns.
      const TimePoint back = options_.away_plan.up_again_at(sim_.now());
      stats_.bump("im.seen_on_return");
      sim_.at(
          back,
          [this, message, id_value = id->second, back] {
            record(id_value, "im", back);
            maybe_ack(message, back);
          },
          "user.im_on_return");
    }
  }
}

void UserEndpoint::maybe_ack(const im::ImMessage& message, TimePoint) {
  if (message.headers.count(wire::kRequiresAck) == 0) return;
  const auto id = message.headers.find("alert_id");
  if (id == message.headers.end()) return;
  const Duration reaction =
      rng_.exponential_duration(options_.ack_reaction_mean);
  sim_.after(
      reaction,
      [this, from = message.from_user, alert_id = id->second] {
        util::FlatMap<std::string, std::string> headers;
        headers[wire::kKind] = wire::kKindAck;
        headers[wire::kAckFor] = alert_id;
        try {
          im_client_->send_im(from, "ACK " + alert_id, std::move(headers),
                              [this](Status status) {
                                if (!status.ok()) stats_.bump("acks.send_failed");
                              });
          stats_.bump("acks.sent");
        } catch (const gui::AutomationError&) {
          stats_.bump("acks.send_failed");
        }
      },
      "user.ack");
}

void UserEndpoint::check_email() {
  if (!at_desk()) return;  // she is not reading mail
  const auto& box = email_server_.mailbox(options_.email_account);
  while (email_cursor_ < box.size()) {
    const email::Email& mail = box[email_cursor_++];
    const auto id = mail.headers.find("alert_id");
    if (id != mail.headers.end()) {
      record(id->second, "email", sim_.now());
    } else {
      stats_.bump("email.non_alert");
    }
  }
}

void UserEndpoint::record(const std::string& alert_id,
                          const std::string& channel, TimePoint at) {
  auto& sighting = seen_[alert_id];
  sighting.count++;
  if (sighting.count == 1) {
    sighting.first = at;
    sighting.channel = channel;
    stats_.bump("alerts_seen");
    stats_.bump("seen_via_" + channel);
  } else {
    // "We use timestamps to allow the user to detect and discard
    // duplicates."
    stats_.bump("duplicates_discarded");
  }
  if (sighting_observer_) sighting_observer_(alert_id, channel, at);
}

std::optional<TimePoint> UserEndpoint::first_seen(
    const std::string& alert_id) const {
  const auto it = seen_.find(alert_id);
  if (it == seen_.end()) return std::nullopt;
  return it->second.first;
}

std::optional<std::string> UserEndpoint::first_seen_channel(
    const std::string& alert_id) const {
  const auto it = seen_.find(alert_id);
  if (it == seen_.end()) return std::nullopt;
  return it->second.channel;
}

int UserEndpoint::sightings(const std::string& alert_id) const {
  const auto it = seen_.find(alert_id);
  return it == seen_.end() ? 0 : it->second.count;
}

UserEndpoint::State UserEndpoint::save_state() const {
  State state;
  state.sightings.reserve(seen_.size());
  for (const auto& [alert_id, sighting] : seen_.sorted_items()) {
    state.sightings.push_back(
        SightingState{alert_id, sighting.first, sighting.channel,
                      sighting.count});
  }
  state.email_cursor = email_cursor_;
  state.stats = stats_;
  return state;
}

void UserEndpoint::restore_state(State state) {
  seen_.clear();
  for (SightingState& s : state.sightings) {
    seen_[s.alert_id] = Sighting{s.first, std::move(s.channel), s.count};
  }
  email_cursor_ = static_cast<std::size_t>(state.email_cursor);
  stats_.restore_state(std::move(state.stats));
}

}  // namespace simba::core
