#include "xml/xml.h"

#include <cctype>

#include "util/strings.h"

namespace simba::xml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

std::optional<std::string> Element::attr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view name, std::string fallback) const {
  auto v = attr(name);
  return v ? *v : std::move(fallback);
}

void Element::set_attr(std::string name, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(name), std::move(value));
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view name) {
  return const_cast<Element*>(std::as_const(*this).child(name));
}

std::vector<const Element*> Element::children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::child_text(std::string_view name,
                                std::string fallback) const {
  const Element* c = child(name);
  return c ? c->text() : std::move(fallback);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::serialize_into(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto pad = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  pad(depth);
  out += '<';
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    if (pretty) out += '\n';
    return;
  }
  out += '>';
  if (!text_.empty()) {
    out += escape(text_);
  }
  if (!children_.empty()) {
    if (pretty) out += '\n';
    for (const auto& c : children_) c->serialize_into(out, indent, depth + 1);
    pad(depth);
  }
  out += "</";
  out += name_;
  out += '>';
  if (pretty) out += '\n';
}

std::string Element::serialize(int indent) const {
  std::string out;
  serialize_into(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Document> run() {
    skip_prolog();
    if (at_end()) return fail("document has no root element");
    auto root = parse_element();
    if (!root.ok()) return Error{root.error()};
    skip_whitespace_and_comments();
    if (!at_end()) return fail("trailing content after root element");
    return Document{std::move(root).take()};
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  bool has(std::size_t n) const { return pos_ + n <= input_.size(); }
  bool starts_with(std::string_view s) const {
    return input_.substr(pos_).substr(0, s.size()) == s;
  }

  void advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  Error fail(const std::string& message) const {
    return make_error(strformat("XML parse error at %zu:%zu: %s", line_, col_,
                                message.c_str()));
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  // Returns false (and records error_) on malformed comment.
  bool skip_comment() {
    // assumes starts_with("<!--")
    advance_by(4);
    while (!at_end()) {
      if (starts_with("-->")) {
        advance_by(3);
        return true;
      }
      advance();
    }
    return false;
  }

  void skip_whitespace_and_comments() {
    while (true) {
      skip_whitespace();
      if (starts_with("<!--")) {
        if (!skip_comment()) return;  // unterminated; caller errors later
        continue;
      }
      return;
    }
  }

  void skip_prolog() {
    skip_whitespace();
    // <?xml ... ?> declaration (and any other PI), plus comments/DOCTYPE.
    while (!at_end()) {
      if (starts_with("<?")) {
        while (!at_end() && !starts_with("?>")) advance();
        advance_by(2);
      } else if (starts_with("<!--")) {
        if (!skip_comment()) return;
      } else if (starts_with("<!DOCTYPE")) {
        while (!at_end() && peek() != '>') advance();
        if (!at_end()) advance();
      } else {
        return;
      }
      skip_whitespace();
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> parse_name() {
    std::string name;
    while (!at_end() && is_name_char(peek())) {
      name += peek();
      advance();
    }
    if (name.empty()) return fail("expected a name");
    return name;
  }

  Result<std::string> decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return fail("unterminated entity reference");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "amp") out += '&';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else if (!entity.empty() && entity[0] == '#') {
        const bool hex =
            entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        long code = 0;
        try {
          std::size_t consumed = 0;
          const std::string digits(entity.substr(hex ? 2 : 1));
          code = std::stol(digits, &consumed, hex ? 16 : 10);
          if (consumed != digits.size() || code < 0) throw std::exception();
        } catch (...) {
          return fail("bad numeric entity &" + std::string(entity) + ";");
        }
        // Encode code point as UTF-8.
        auto cp = static_cast<unsigned long>(code);
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        return fail("unknown entity &" + std::string(entity) + ";");
      }
      i = semi;
    }
    return out;
  }

  Result<std::string> parse_attr_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return fail("expected quoted attribute value");
    }
    const char quote = peek();
    advance();
    const std::size_t start = pos_;
    while (!at_end() && peek() != quote && peek() != '<') advance();
    if (at_end() || peek() != quote) {
      return fail("unterminated attribute value");
    }
    auto decoded = decode_entities(input_.substr(start, pos_ - start));
    advance();  // closing quote
    return decoded;
  }

  Result<std::unique_ptr<Element>> parse_element() {
    if (at_end() || peek() != '<') return fail("expected '<'");
    advance();
    auto name = parse_name();
    if (!name.ok()) return Error{name.error()};
    auto element = std::make_unique<Element>(name.value());

    // Attributes.
    while (true) {
      skip_whitespace();
      if (at_end()) return fail("unterminated start tag <" + name.value());
      if (peek() == '>' || starts_with("/>")) break;
      auto attr_name = parse_name();
      if (!attr_name.ok()) return Error{attr_name.error()};
      skip_whitespace();
      if (at_end() || peek() != '=') {
        return fail("expected '=' after attribute " + attr_name.value());
      }
      advance();
      skip_whitespace();
      auto attr_value = parse_attr_value();
      if (!attr_value.ok()) return Error{attr_value.error()};
      if (element->attr(attr_name.value())) {
        return fail("duplicate attribute " + attr_name.value());
      }
      element->set_attr(attr_name.value(), attr_value.value());
    }

    if (starts_with("/>")) {
      advance_by(2);
      return element;
    }
    advance();  // '>'

    // Content: text, children, comments, until matching close tag.
    std::string text;
    while (true) {
      if (at_end()) {
        return fail("unterminated element <" + name.value() + ">");
      }
      if (starts_with("<!--")) {
        if (!skip_comment()) return fail("unterminated comment");
        continue;
      }
      if (starts_with("</")) {
        advance_by(2);
        auto close = parse_name();
        if (!close.ok()) return Error{close.error()};
        if (close.value() != name.value()) {
          return fail("mismatched close tag </" + close.value() +
                      "> for <" + name.value() + ">");
        }
        skip_whitespace();
        if (at_end() || peek() != '>') return fail("expected '>'");
        advance();
        auto decoded = decode_entities(text);
        if (!decoded.ok()) return Error{decoded.error()};
        // Trim pure-formatting whitespace around the text content.
        element->set_text(std::string(trim(decoded.value())));
        return element;
      }
      if (peek() == '<') {
        auto kid = parse_element();
        if (!kid.ok()) return Error{kid.error()};
        element->children_mutable().push_back(std::move(kid).take());
        continue;
      }
      text += peek();
      advance();
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

Result<Document> parse(std::string_view input) { return Parser(input).run(); }

}  // namespace simba::xml
