// Minimal XML document model, parser, and writer — built from scratch
// because the paper expresses both user address books and delivery-mode
// documents as XML "to allow extensibility for accommodating new
// communication addresses" (Section 4.1).
//
// Supported: elements, attributes (single or double quoted), text
// content with entity escaping (&lt; &gt; &amp; &quot; &apos; and
// numeric &#...;), comments, XML declarations, self-closing tags,
// UTF-8 pass-through. Not supported (not needed): DTDs, namespaces,
// processing instructions beyond the declaration, CDATA.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace simba::xml {

/// One element node. Children are owned; text interleaved between child
/// elements is concatenated into `text` (mixed content is rare in
/// SIMBA documents and order against children is not preserved).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- Attributes ---------------------------------------------------------
  /// Returns the attribute value or nullopt.
  std::optional<std::string> attr(std::string_view name) const;
  /// Returns the attribute value or `fallback`.
  std::string attr_or(std::string_view name, std::string fallback) const;
  void set_attr(std::string name, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- Text ---------------------------------------------------------------
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_ += text; }

  // -- Children -----------------------------------------------------------
  Element& add_child(std::string name);
  /// First child with the given element name, or nullptr.
  const Element* child(std::string_view name) const;
  Element* child(std::string_view name);
  /// All children with the given element name.
  std::vector<const Element*> children(std::string_view name) const;
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// Mutable child list; used by the parser to adopt parsed subtrees.
  std::vector<std::unique_ptr<Element>>& children_mutable() {
    return children_;
  }

  /// Text of the first child with the given name, or `fallback`.
  std::string child_text(std::string_view name, std::string fallback = "") const;

  /// Serializes this element (and subtree) as XML. `indent` < 0 means
  /// compact single-line output.
  std::string serialize(int indent = 2) const;

 private:
  void serialize_into(std::string& out, int indent, int depth) const;

  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed document: a single root element.
class Document {
 public:
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}
  const Element& root() const { return *root_; }
  Element& root() { return *root_; }
  std::string serialize(int indent = 2) const { return root_->serialize(indent); }

 private:
  std::unique_ptr<Element> root_;
};

/// Parses an XML document. On failure the error message includes the
/// 1-based line and column of the offending input.
Result<Document> parse(std::string_view input);

/// Escapes text for use as XML character data / attribute values.
std::string escape(std::string_view text);

}  // namespace simba::xml
