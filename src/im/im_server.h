// Simulated Instant Messaging service (the MSN-Messenger stand-in).
//
// Models exactly the properties SIMBA depends on (Section 3.1):
// presence, synchronous delivery with sub-second latency, sessions that
// can be dropped by "server recovery or network disconnection", and
// extended service outages (the paper's month saw five, 4-103 minutes).
// Application-level acknowledgements are NOT provided here — SIMBA
// layers them on top, which is the point of the paper's design.
#pragma once

#include <cstdint>
#include <string>

#include "net/bus.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/flat_map.h"

namespace simba::im {

/// Wire protocol message types, carried over net::MessageBus.
/// client -> server: im.login, im.logout, im.ping, im.send
/// server -> client: im.login.ok, im.pong, im.send.ok, im.send.err,
///                   im.deliver, im.logged_out
namespace proto {
inline constexpr char kLogin[] = "im.login";
inline constexpr char kLoginOk[] = "im.login.ok";
inline constexpr char kLoginErr[] = "im.login.err";
inline constexpr char kLogout[] = "im.logout";
inline constexpr char kPing[] = "im.ping";
inline constexpr char kPong[] = "im.pong";
inline constexpr char kSend[] = "im.send";
inline constexpr char kSendOk[] = "im.send.ok";
inline constexpr char kSendErr[] = "im.send.err";
inline constexpr char kDeliver[] = "im.deliver";
inline constexpr char kLoggedOut[] = "im.logged_out";
}  // namespace proto

class ImServer {
 public:
  static constexpr char kDefaultAddress[] = "im.server";

  ImServer(sim::Simulator& sim, net::MessageBus& bus,
           std::string address = kDefaultAddress);

  const std::string& address() const { return address_; }

  /// Creates an account. Users must exist before login.
  void register_account(const std::string& user);
  bool has_account(const std::string& user) const;

  /// Presence as the server sees it.
  bool online(const std::string& user) const;

  /// Service outages. While down the server silently ignores traffic
  /// (clients observe timeouts); when an outage begins, all sessions
  /// are dropped, so clients must re-login after recovery ("server
  /// recovery" logouts).
  void set_outage_plan(sim::OutagePlan plan);
  bool down() const;
  const sim::OutagePlan& outage_plan() const { return outages_; }

  /// Drops one user's session and notifies the client — the "you have
  /// been signed out" events that sanity checking re-logins fix.
  void force_logout(const std::string& user);

  /// Mean time between per-session forced logouts (0 = disabled).
  void set_session_reset_mtbf(Duration mtbf) { session_reset_mtbf_ = mtbf; }

  const Counters& stats() const { return stats_; }

 private:
  struct Session {
    std::uint64_t epoch = 0;
    std::string client_address;
    sim::EventId reset_event = 0;
  };

  void handle(const net::Message& m);
  void handle_login(const net::Message& m);
  void handle_send(const net::Message& m);
  void reply(const net::Message& to_msg, const std::string& type,
             util::FlatMap<std::string, std::string> headers = {},
             std::string body = {});
  void drop_all_sessions();
  void arm_session_reset(const std::string& user);

  sim::Simulator& sim_;
  net::MessageBus& bus_;
  std::string address_;
  Rng rng_;
  util::FlatSet<std::string> accounts_;
  /// Dropped via sorted_items() on outage so logged-out notices go out
  /// in user order, matching the old ordered map's message sequence.
  util::FlatMap<std::string, Session> sessions_;
  sim::OutagePlan outages_;
  bool was_down_ = false;  // edge detection for session drops
  Duration session_reset_mtbf_{};
  std::uint64_t next_epoch_ = 1;
  Counters stats_;
};

}  // namespace simba::im
