#include "im/im_server.h"

#include "util/log.h"

namespace simba::im {

ImServer::ImServer(sim::Simulator& sim, net::MessageBus& bus,
                   std::string address)
    : sim_(sim),
      bus_(bus),
      address_(std::move(address)),
      rng_(sim.make_rng("im.server." + address_)) {
  bus_.attach(address_, [this](const net::Message& m) { handle(m); });
}

void ImServer::register_account(const std::string& user) {
  accounts_.insert(user);
}

bool ImServer::has_account(const std::string& user) const {
  return accounts_.contains(user);
}

bool ImServer::online(const std::string& user) const {
  return sessions_.count(user) > 0;
}

void ImServer::set_outage_plan(sim::OutagePlan plan) {
  outages_ = std::move(plan);
  // Sessions die the moment an outage begins, whether or not traffic
  // flows during it: after recovery everyone must re-login.
  for (const auto& o : outages_.outages()) {
    if (o.start < sim_.now()) continue;
    sim_.at(o.start, [this] { drop_all_sessions(); }, "im.outage_begin");
  }
}

bool ImServer::down() const { return outages_.down_at(sim_.now()); }

void ImServer::force_logout(const std::string& user) {
  const auto it = sessions_.find(user);
  if (it == sessions_.end()) return;
  const std::string client = it->second.client_address;
  if (it->second.reset_event != 0) sim_.cancel(it->second.reset_event);
  sessions_.erase(it);
  stats_.bump("forced_logouts");
  SIMBA_LOG_DEBUG("im.server", "forced logout of " + user);
  net::Message note;
  note.from = address_;
  note.to = client;
  note.type = proto::kLoggedOut;
  note.headers["user"] = user;
  bus_.send(std::move(note));
}

void ImServer::drop_all_sessions() {
  if (sessions_.empty()) return;
  stats_.bump("session_drops", static_cast<std::int64_t>(sessions_.size()));
  for (const auto& [user, session] : sessions_.sorted_items()) {
    if (session.reset_event != 0) sim_.cancel(session.reset_event);
  }
  sessions_.clear();
  log_debug("im.server", "all sessions dropped (outage begin)");
}

void ImServer::arm_session_reset(const std::string& user) {
  if (session_reset_mtbf_ <= Duration::zero()) return;
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return;
  it->second.reset_event = sim_.after(
      rng_.exponential_duration(session_reset_mtbf_),
      [this, user] { force_logout(user); }, "im.session_reset");
}

void ImServer::reply(const net::Message& to_msg, const std::string& type,
                     util::FlatMap<std::string, std::string> headers,
                     std::string body) {
  net::Message m;
  m.from = address_;
  m.to = to_msg.from;
  m.type = type;
  m.headers = std::move(headers);
  m.headers["in_reply_to"] = std::to_string(to_msg.id);
  m.body = std::move(body);
  bus_.send(std::move(m));
}

void ImServer::handle(const net::Message& m) {
  if (down()) {
    // Silent: the service is unreachable; clients see timeouts.
    stats_.bump("ignored_while_down");
    return;
  }
  if (m.type == proto::kLogin) {
    handle_login(m);
  } else if (m.type == proto::kLogout) {
    const auto it = sessions_.find(m.headers.at("user"));
    if (it != sessions_.end()) {
      if (it->second.reset_event != 0) sim_.cancel(it->second.reset_event);
      sessions_.erase(it);
    }
    stats_.bump("logouts");
  } else if (m.type == proto::kPing) {
    const auto it = sessions_.find(m.headers.at("user"));
    const bool valid =
        it != sessions_.end() &&
        std::to_string(it->second.epoch) == m.headers.at("epoch");
    reply(m, proto::kPong, {{"valid", valid ? "1" : "0"}});
    stats_.bump("pings");
  } else if (m.type == proto::kSend) {
    handle_send(m);
  } else {
    stats_.bump("unknown_messages");
  }
}

void ImServer::handle_login(const net::Message& m) {
  const std::string& user = m.headers.at("user");
  if (!has_account(user)) {
    reply(m, proto::kLoginErr, {{"reason", "no such account"}});
    stats_.bump("login_rejected");
    return;
  }
  Session session;
  session.epoch = next_epoch_++;
  session.client_address = m.from;
  // Re-login replaces any existing session.
  const auto it = sessions_.find(user);
  if (it != sessions_.end() && it->second.reset_event != 0) {
    sim_.cancel(it->second.reset_event);
  }
  sessions_[user] = session;
  stats_.bump("logins");
  reply(m, proto::kLoginOk, {{"epoch", std::to_string(session.epoch)},
                             {"user", user}});
  arm_session_reset(user);
}

void ImServer::handle_send(const net::Message& m) {
  const std::string& from_user = m.headers.at("from_user");
  const std::string& to_user = m.headers.at("to_user");
  const auto sender = sessions_.find(from_user);
  if (sender == sessions_.end() ||
      std::to_string(sender->second.epoch) != m.headers.at("epoch")) {
    reply(m, proto::kSendErr, {{"reason", "not logged in"},
                               {"seq", m.headers.at("seq")}});
    stats_.bump("send_rejected.no_session");
    return;
  }
  const auto recipient = sessions_.find(to_user);
  if (recipient == sessions_.end()) {
    reply(m, proto::kSendErr,
          {{"reason", "recipient offline"}, {"seq", m.headers.at("seq")}});
    stats_.bump("send_rejected.offline");
    return;
  }
  net::Message out;
  out.from = address_;
  out.to = recipient->second.client_address;
  out.type = proto::kDeliver;
  out.headers = m.headers;
  out.body = m.body;
  bus_.send(std::move(out));
  reply(m, proto::kSendOk, {{"seq", m.headers.at("seq")}});
  stats_.bump("sends");
}

}  // namespace simba::im
