#include "im/im_client.h"

#include "util/log.h"

namespace simba::im {

ImClientApp::ImClientApp(sim::Simulator& sim, gui::Desktop& desktop,
                         net::MessageBus& bus, std::string server_address,
                         std::string user, gui::FaultProfile profile,
                         ImClientConfig config)
    : gui::ClientApp(sim, desktop, "im_client." + user, std::move(profile)),
      bus_(bus),
      server_address_(std::move(server_address)),
      user_(std::move(user)),
      bus_address_("im.client." + user_),
      config_(config),
      rpc_timeout_label_(name() + ".rpc_timeout") {}

ImClientApp::~ImClientApp() { bus_.detach(bus_address_); }

void ImClientApp::on_launch() {
  logged_in_ = false;
  epoch_ = 0;
  inbox_.clear();
  bus_.attach(bus_address_, [this](const net::Message& m) { handle_bus(m); });
}

void ImClientApp::on_kill() {
  bus_.detach(bus_address_);
  logged_in_ = false;
  // Pending automation calls observe the process's death.
  auto pending = std::move(pending_);
  pending_.clear();
  for (const auto& [id, rpc] : pending.sorted_items()) {
    if (rpc.timeout_event != 0) sim().cancel(rpc.timeout_event);
    if (rpc.done) rpc.done(Status::failure(name() + ": client terminated"));
  }
}

bool ImClientApp::is_logged_in() {
  if (!running()) return false;
  const Status gate = begin_operation("is_logged_in");
  if (!gate.ok()) return false;
  return logged_in_;
}

std::uint64_t ImClientApp::send_rpc(const std::string& type,
                                    util::FlatMap<std::string, std::string> headers,
                                    std::string body,
                                    std::function<void(Status)> done,
                                    const std::string& timeout_what) {
  net::Message m;
  m.from = bus_address_;
  m.to = server_address_;
  m.type = type;
  m.headers = std::move(headers);
  m.body = std::move(body);
  const std::uint64_t id = bus_.send(std::move(m));
  PendingRpc rpc;
  rpc.done = std::move(done);
  rpc.timeout_event = sim().after(
      config_.rpc_timeout,
      [this, id, timeout_what] {
        const auto it = pending_.find(id);
        if (it == pending_.end()) return;
        auto done_cb = std::move(it->second.done);
        pending_.erase(it);
        stats().bump("rpc_timeouts");
        if (done_cb) {
          done_cb(Status::failure(name() + ": " + timeout_what +
                                  " timed out (service unreachable?)"));
        }
      },
      rpc_timeout_label_.c_str());
  pending_.emplace(id, std::move(rpc));
  return id;
}

void ImClientApp::complete_rpc(std::uint64_t request_id, Status status) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (it->second.timeout_event != 0) sim().cancel(it->second.timeout_event);
  auto done_cb = std::move(it->second.done);
  pending_.erase(it);
  if (done_cb) done_cb(std::move(status));
}

void ImClientApp::login(std::function<void(Status)> done) {
  const Status gate = begin_operation("login");
  if (!gate.ok()) {
    if (done) done(gate);
    return;
  }
  send_rpc(proto::kLogin, {{"user", user_}}, {},
           [this, done = std::move(done)](Status status) {
             if (done) done(std::move(status));
           },
           "login");
}

void ImClientApp::logout() {
  const Status gate = begin_operation("logout");
  if (!gate.ok()) return;
  if (!logged_in_) return;
  net::Message m;
  m.from = bus_address_;
  m.to = server_address_;
  m.type = proto::kLogout;
  m.headers["user"] = user_;
  bus_.send(std::move(m));
  logged_in_ = false;
  epoch_ = 0;
}

void ImClientApp::verify_connection(std::function<void(Status)> done) {
  const Status gate = begin_operation("verify_connection");
  if (!gate.ok()) {
    if (done) done(gate);
    return;
  }
  if (!logged_in_) {
    if (done) done(Status::failure(name() + ": not signed in"));
    return;
  }
  // Note: an invalid pong flips logged_in_ in handle_bus; a mere RPC
  // timeout does NOT — one lost packet is not evidence of a dropped
  // session, and treating it as one would cause spurious re-logins.
  send_rpc(proto::kPing,
           {{"user", user_}, {"epoch", std::to_string(epoch_)}}, {},
           std::move(done), "ping");
}

void ImClientApp::send_im(const std::string& to_user, const std::string& body,
                          util::FlatMap<std::string, std::string> headers,
                          std::function<void(Status)> done) {
  const Status gate = begin_operation("send_im");
  if (!gate.ok()) {
    if (done) done(gate);
    return;
  }
  if (!logged_in_) {
    if (done) done(Status::failure(name() + ": not signed in"));
    return;
  }
  headers["from_user"] = user_;
  headers["to_user"] = to_user;
  headers["epoch"] = std::to_string(epoch_);
  if (headers.find("seq") == headers.end()) {
    headers["seq"] = user_ + "-" + std::to_string(next_seq_++);
  }
  send_rpc(proto::kSend, std::move(headers), body, std::move(done), "send");
}

std::vector<ImMessage> ImClientApp::fetch_unread() {
  const Status gate = begin_operation("fetch_unread");
  if (!gate.ok()) return {};
  std::vector<ImMessage> out(inbox_.begin(), inbox_.end());
  inbox_.clear();
  return out;
}

void ImClientApp::handle_bus(const net::Message& m) {
  if (state() != gui::ProcessState::kRunning) {
    // A hung process does not pump its message loop.
    stats().bump("messages_dropped_while_hung");
    return;
  }
  if (m.type == proto::kLoginOk) {
    logged_in_ = true;
    epoch_ = std::stoull(m.headers.at("epoch"));
    complete_rpc(std::stoull(m.headers.at("in_reply_to")), Status::success());
  } else if (m.type == proto::kLoginErr) {
    complete_rpc(std::stoull(m.headers.at("in_reply_to")),
                 Status::failure("login rejected: " +
                                 m.headers.at("reason")));
  } else if (m.type == proto::kPong) {
    const bool valid = m.headers.at("valid") == "1";
    if (!valid) logged_in_ = false;
    complete_rpc(std::stoull(m.headers.at("in_reply_to")),
                 valid ? Status::success()
                       : Status::failure("session invalid"));
  } else if (m.type == proto::kSendOk) {
    complete_rpc(std::stoull(m.headers.at("in_reply_to")), Status::success());
  } else if (m.type == proto::kSendErr) {
    const std::string reason = m.headers.count("reason")
                                   ? m.headers.at("reason")
                                   : "unknown";
    if (reason == "not logged in") logged_in_ = false;
    complete_rpc(std::stoull(m.headers.at("in_reply_to")),
                 Status::failure("send failed: " + reason));
  } else if (m.type == proto::kDeliver) {
    ImMessage im;
    im.from_user = m.headers.at("from_user");
    im.to_user = m.headers.at("to_user");
    im.body = m.body;
    im.seq = m.headers.at("seq");
    im.headers = m.headers;
    im.received_at = sim().now();
    inbox_.push_back(std::move(im));
    stats().bump("messages_received");
    // The new-message event can be lost (blocked by a modal dialog or
    // plain dropped); the message stays unread in the window, where
    // self-stabilization sweeps will find it.
    const bool blocked = desktop().any_blocking(name());
    if (!blocked && !rng().chance(config_.event_loss_probability)) {
      if (new_message_event_) new_message_event_();
    } else {
      stats().bump("new_message_events_lost");
    }
  } else if (m.type == proto::kLoggedOut) {
    logged_in_ = false;
    stats().bump("logged_out_notices");
  }
}

}  // namespace simba::im
