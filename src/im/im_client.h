// Simulated GUI IM client software, driven through its automation
// interface (the MSN Messenger stand-in).
//
// This is the "third-party communication client software" of Section
// 4.1.1: it can hang, crash, get logged out behind the program's back,
// pop dialog boxes, throw from undocumented interfaces, and lose
// new-message events — every failure mode the IM Manager's
// exception-handling automation exists to absorb.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "gui/client_app.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "util/flat_map.h"

namespace simba::im {

/// An instant message as surfaced by the client's automation interface.
struct ImMessage {
  std::string from_user;
  std::string to_user;
  std::string body;
  std::string seq;  // sender-assigned sequence tag (SIMBA uses these)
  util::FlatMap<std::string, std::string> headers;
  TimePoint received_at{};
};

struct ImClientConfig {
  /// RPC timeout for login/ping/send against the IM service. The
  /// paper's one-way IM time is sub-second; this bounds outage stalls.
  Duration rpc_timeout = seconds(10);
  /// Probability that an arriving message lands in the window without
  /// firing the new-message automation event ("potential loss of
  /// new-IM events" that self-stabilization sweeps for).
  double event_loss_probability = 0.0;
};

class ImClientApp : public gui::ClientApp {
 public:
  ImClientApp(sim::Simulator& sim, gui::Desktop& desktop, net::MessageBus& bus,
              std::string server_address, std::string user,
              gui::FaultProfile profile, ImClientConfig config = {});
  ~ImClientApp() override;

  const std::string& user() const { return user_; }
  const std::string& bus_address() const { return bus_address_; }

  // --- Automation interface (may throw AutomationError) -------------------

  /// The client's local belief about its login state; can be stale
  /// until a ping or failed send corrects it.
  bool is_logged_in();

  /// Signs in; `done` fires with success/failure (timeout counts as
  /// failure). Throws if the process is unusable.
  void login(std::function<void(Status)> done);
  void logout();

  /// Verifies the session against the server (the sanity check's
  /// "checks if the IM client software is still logged on").
  void verify_connection(std::function<void(Status)> done);

  /// Sends an IM; success means the service accepted it for delivery
  /// to an online recipient (NOT that the human read it — SIMBA's
  /// application-level acks handle that).
  void send_im(const std::string& to_user, const std::string& body,
               util::FlatMap<std::string, std::string> headers,
               std::function<void(Status)> done);

  /// Drains messages that arrived since the last fetch.
  std::vector<ImMessage> fetch_unread();
  std::size_t unread_count() const { return inbox_.size(); }

  /// New-message automation event (may be lost per config).
  void set_new_message_event(std::function<void()> handler) {
    new_message_event_ = std::move(handler);
  }

 protected:
  void on_launch() override;
  void on_kill() override;

 private:
  struct PendingRpc {
    std::function<void(Status)> done;
    sim::EventId timeout_event = 0;
  };

  void handle_bus(const net::Message& m);
  void complete_rpc(std::uint64_t request_id, Status status);
  std::uint64_t send_rpc(const std::string& type,
                         util::FlatMap<std::string, std::string> headers,
                         std::string body, std::function<void(Status)> done,
                         const std::string& timeout_what);

  net::MessageBus& bus_;
  std::string server_address_;
  std::string user_;
  std::string bus_address_;
  ImClientConfig config_;
  /// Stable storage for the per-client "<name>.rpc_timeout" event
  /// label; the kernel keeps only the pointer.
  std::string rpc_timeout_label_;
  bool logged_in_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 1;
  /// Drained via sorted_items() on kill so failure callbacks fire in
  /// request-id order, matching the old ordered map's event sequence.
  util::FlatMap<std::uint64_t, PendingRpc> pending_;
  std::deque<ImMessage> inbox_;
  std::function<void()> new_message_event_;
};

}  // namespace simba::im
