// Simulated GUI email client software (the Outlook stand-in), driven
// through its automation interface by the Email Manager.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "email/email_server.h"
#include "gui/client_app.h"

namespace simba::email {

struct EmailClientConfig {
  /// How often the client syncs its inbox with the server.
  Duration poll_interval = seconds(30);
  /// Probability an arriving message fails to fire the new-mail event
  /// (self-stabilization sweeps catch these as "unprocessed emails").
  double event_loss_probability = 0.0;
};

class EmailClientApp : public gui::ClientApp {
 public:
  EmailClientApp(sim::Simulator& sim, gui::Desktop& desktop,
                 EmailServer& server, std::string mailbox_address,
                 gui::FaultProfile profile, EmailClientConfig config = {});

  const std::string& mailbox_address() const { return mailbox_address_; }

  // --- Automation interface (may throw AutomationError) -------------------

  /// Submits a message through the configured relay.
  Status send_email(Email email);

  /// Messages synced from the server but not yet fetched by the driver.
  std::vector<Email> fetch_unread();
  std::size_t unread_count() const { return unread_.size(); }

  /// Checks the client can reach its server (sanity-check support).
  Status verify_connection();

  void set_new_mail_event(std::function<void()> handler) {
    new_mail_event_ = std::move(handler);
  }

 protected:
  void on_launch() override;
  void on_kill() override;

 private:
  void poll();

  EmailServer& server_;
  std::string mailbox_address_;
  EmailClientConfig config_;
  /// Stable storage for the "<name>.poll" event label.
  std::string poll_label_;
  std::size_t sync_cursor_ = 0;  // how much of the server mailbox we've seen
  std::deque<Email> unread_;
  std::function<void()> new_mail_event_;
  sim::TaskHandle poll_task_;
};

}  // namespace simba::email
