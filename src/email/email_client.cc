#include "email/email_client.h"

#include "util/log.h"

namespace simba::email {

EmailClientApp::EmailClientApp(sim::Simulator& sim, gui::Desktop& desktop,
                               EmailServer& server,
                               std::string mailbox_address,
                               gui::FaultProfile profile,
                               EmailClientConfig config)
    : gui::ClientApp(sim, desktop, "email_client." + mailbox_address,
                     std::move(profile)),
      server_(server),
      mailbox_address_(std::move(mailbox_address)),
      config_(config),
      poll_label_(name() + ".poll") {
  server_.create_mailbox(mailbox_address_);
}

void EmailClientApp::on_launch() {
  // A freshly launched client re-syncs from where it left off; the
  // server mailbox is durable, so nothing is lost across restarts.
  poll_task_ = sim().every(
      config_.poll_interval, [this] { poll(); }, poll_label_.c_str(),
      /*immediate=*/true);
}

void EmailClientApp::on_kill() { poll_task_.cancel(); }

void EmailClientApp::poll() {
  if (state() != gui::ProcessState::kRunning) return;
  const auto& box = server_.mailbox(mailbox_address_);
  bool got_new = false;
  while (sync_cursor_ < box.size()) {
    unread_.push_back(box[sync_cursor_++]);
    stats().bump("messages_synced");
    got_new = true;
  }
  if (got_new) {
    const bool blocked = desktop().any_blocking(name());
    if (!blocked && !rng().chance(config_.event_loss_probability)) {
      if (new_mail_event_) new_mail_event_();
    } else {
      stats().bump("new_mail_events_lost");
    }
  }
}

Status EmailClientApp::send_email(Email email) {
  const Status gate = begin_operation("send_email");
  if (!gate.ok()) return gate;
  email.from = mailbox_address_;
  return server_.submit(std::move(email));
}

std::vector<Email> EmailClientApp::fetch_unread() {
  const Status gate = begin_operation("fetch_unread");
  if (!gate.ok()) return {};
  std::vector<Email> out(unread_.begin(), unread_.end());
  unread_.clear();
  return out;
}

Status EmailClientApp::verify_connection() {
  const Status gate = begin_operation("verify_connection");
  if (!gate.ok()) return gate;
  if (server_.down()) return Status::failure("email relay unreachable");
  return Status::success();
}

}  // namespace simba::email
