// Simulated email infrastructure (the SMTP/Exchange stand-in).
//
// Section 3.1: "email delivery is not guaranteed to be reliable, and
// the unpredictable delivery time can range from seconds to days". That
// unpredictability is this module's whole reason to exist — it is why
// SIMBA uses IM as the primary channel and email only as fallback.
//
// Client <-> server interaction is modeled as direct calls (a local,
// always-reachable relay); the dependability-relevant delay and loss
// happen between submission and mailbox arrival.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::email {

struct Email {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  std::string subject;
  std::string body;
  util::FlatMap<std::string, std::string> headers;
  bool high_importance = false;
  TimePoint submitted_at{};
  TimePoint delivered_at{};
};

/// Mixture delay model: most mail arrives in seconds, a slow fraction
/// takes hours with a log-normal tail reaching days, and a little is
/// silently lost.
struct EmailDelayModel {
  double fast_probability = 0.95;
  Duration fast_median = seconds(8);
  double fast_sigma = 0.8;
  Duration slow_median = hours(2);
  double slow_sigma = 1.4;
  double loss_probability = 0.002;

  Duration sample(Rng& rng) const;
};

class EmailServer {
 public:
  explicit EmailServer(sim::Simulator& sim);

  void set_delay_model(EmailDelayModel model) { delay_ = model; }
  const EmailDelayModel& delay_model() const { return delay_; }

  void create_mailbox(const std::string& address);
  bool has_mailbox(const std::string& address) const;

  /// Routes every address "<anything>@<domain>" to `handler` instead of
  /// a mailbox. The SMS gateway registers itself this way.
  void register_domain_handler(const std::string& domain,
                               std::function<void(const Email&)> handler);

  /// Relay outages: submission fails while down.
  void set_outage_plan(sim::OutagePlan plan) { outages_ = std::move(plan); }
  bool down() const { return outages_.down_at(sim_.now()); }

  /// Accepts a message for delivery. Failure = relay down or recipient
  /// unroutable. Success does NOT imply eventual arrival (loss model).
  Status submit(Email email);

  /// New mail in `address` since the given cursor; advances the cursor
  /// the caller keeps. Mailboxes retain everything (tests inspect them).
  const std::vector<Email>& mailbox(const std::string& address) const;

  /// Fires when a message lands in a mailbox (clients use this to model
  /// push notification; polling clients ignore it).
  void set_on_delivered(
      std::function<void(const std::string& address, const Email&)> cb) {
    on_delivered_ = std::move(cb);
  }

  const Counters& stats() const { return stats_; }

  /// Checkpoint state (sim/snapshot.h): mailbox contents are long-lived
  /// server state (unread fallback mail must survive a crash-restart so
  /// the user's next mailbox check still finds it), so they carry over
  /// together with the id counter and stats. Mail still in transit —
  /// submitted but not yet delivered — dies with the process image,
  /// like any in-flight message.
  struct MailboxState {
    std::string address;
    std::vector<Email> mail;
  };
  struct State {
    std::vector<MailboxState> mailboxes;  // sorted by address (map order)
    std::uint64_t next_id = 1;
    Counters stats;
  };
  State save_state() const;
  /// Call on a freshly constructed server, before any mailbox exists;
  /// later create_mailbox() calls keep restored contents (try_emplace).
  void restore_state(State state);

 private:
  void deliver(Email email);

  sim::Simulator& sim_;
  Rng rng_;
  EmailDelayModel delay_;
  // Stays ordered (save_state serialises mailboxes sorted); std::less<>
  // lets string_view probes avoid a key allocation.
  std::map<std::string, std::vector<Email>, std::less<>> mailboxes_;
  std::map<std::string, std::function<void(const Email&)>, std::less<>>
      domain_handlers_;
  sim::OutagePlan outages_;
  std::function<void(const std::string&, const Email&)> on_delivered_;
  std::uint64_t next_id_ = 1;
  Counters stats_;
};

}  // namespace simba::email
