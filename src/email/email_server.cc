#include "email/email_server.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::email {

Duration EmailDelayModel::sample(Rng& rng) const {
  if (rng.chance(fast_probability)) {
    return rng.lognormal_duration(fast_median, fast_sigma);
  }
  return rng.lognormal_duration(slow_median, slow_sigma);
}

EmailServer::EmailServer(sim::Simulator& sim)
    : sim_(sim), rng_(sim.make_rng("email.server")) {}

void EmailServer::create_mailbox(const std::string& address) {
  mailboxes_.try_emplace(address);
}

bool EmailServer::has_mailbox(const std::string& address) const {
  return mailboxes_.count(address) > 0;
}

void EmailServer::register_domain_handler(
    const std::string& domain, std::function<void(const Email&)> handler) {
  domain_handlers_[to_lower(domain)] = std::move(handler);
}

namespace {
std::string domain_of(const std::string& address) {
  const auto at = address.rfind('@');
  return at == std::string::npos ? "" : to_lower(address.substr(at + 1));
}
}  // namespace

Status EmailServer::submit(Email email) {
  if (down()) {
    stats_.bump("rejected.relay_down");
    return Status::failure("email relay down");
  }
  const std::string domain = domain_of(email.to);
  const bool routable =
      domain_handlers_.count(domain) > 0 || has_mailbox(email.to);
  if (!routable) {
    stats_.bump("rejected.unroutable");
    return Status::failure("unroutable recipient " + email.to);
  }
  email.id = next_id_++;
  email.submitted_at = sim_.now();
  stats_.bump("accepted");
  if (rng_.chance(delay_.loss_probability)) {
    stats_.bump("lost");
    SIMBA_LOG_DEBUG("email", "silently lost mail to " + email.to);
    return Status::success();  // sender cannot tell; that is the point
  }
  const Duration delay = delay_.sample(rng_);
  sim_.after(
      delay, [this, email = std::move(email)]() mutable { deliver(std::move(email)); },
      "email.deliver");
  return Status::success();
}

void EmailServer::deliver(Email email) {
  email.delivered_at = sim_.now();
  const std::string domain = domain_of(email.to);
  const auto handler = domain_handlers_.find(domain);
  if (handler != domain_handlers_.end()) {
    stats_.bump("delivered.domain_handler");
    handler->second(email);
    return;
  }
  auto box = mailboxes_.find(email.to);
  if (box == mailboxes_.end()) {
    stats_.bump("delivered.mailbox_gone");
    return;
  }
  stats_.bump("delivered.mailbox");
  box->second.push_back(email);
  if (on_delivered_) on_delivered_(email.to, box->second.back());
}

const std::vector<Email>& EmailServer::mailbox(
    const std::string& address) const {
  static const std::vector<Email> kEmpty;
  const auto it = mailboxes_.find(address);
  return it == mailboxes_.end() ? kEmpty : it->second;
}

EmailServer::State EmailServer::save_state() const {
  State state;
  state.mailboxes.reserve(mailboxes_.size());
  for (const auto& [address, mail] : mailboxes_) {
    state.mailboxes.push_back(MailboxState{address, mail});
  }
  state.next_id = next_id_;
  state.stats = stats_;
  return state;
}

void EmailServer::restore_state(State state) {
  mailboxes_.clear();
  for (MailboxState& box : state.mailboxes) {
    mailboxes_[box.address] = std::move(box.mail);
  }
  next_id_ = state.next_id;
  stats_.restore_state(std::move(state.stats));
}

}  // namespace simba::email
