#include "proxy/proxy.h"

#include "util/log.h"
#include "util/strings.h"

namespace simba::proxy {

WebDirectory::WebDirectory(sim::Simulator& sim) : sim_(sim) {}

void WebDirectory::put(const std::string& url, std::string content) {
  pages_[url] = std::move(content);
}

void WebDirectory::put_at(TimePoint when, const std::string& url,
                          std::string content) {
  sim_.at(
      when,
      [this, url, content = std::move(content)]() mutable {
        pages_[url] = std::move(content);
      },
      "web.mutate");
}

bool WebDirectory::exists(const std::string& url) const {
  return pages_.count(url) > 0;
}

std::optional<std::string> WebDirectory::get(const std::string& url) const {
  const auto it = pages_.find(url);
  if (it == pages_.end()) return std::nullopt;
  return it->second;
}

Duration WebDirectory::sample_fetch_latency(Rng& rng) const {
  return millis(120) + rng.exponential_duration(millis(250));
}

std::optional<std::string> extract_block(const std::string& content,
                                         const std::string& start_keyword,
                                         const std::string& end_keyword) {
  const std::size_t start = content.find(start_keyword);
  if (start == std::string::npos) return std::nullopt;
  const std::size_t block_begin = start + start_keyword.size();
  const std::size_t end = content.find(end_keyword, block_begin);
  if (end == std::string::npos) return std::nullopt;
  return std::string(trim(content.substr(block_begin, end - block_begin)));
}

AlertProxy::AlertProxy(sim::Simulator& sim, WebDirectory& web)
    : sim_(sim), web_(web), rng_(sim.make_rng("alert.proxy")) {}

AlertProxy::WatchId AlertProxy::add_watch(WatchConfig config,
                                          core::AlertSink sink) {
  const WatchId id = next_watch_++;
  Watch watch;
  watch.id = id;
  watch.config = std::move(config);
  watch.sink = std::move(sink);
  watch.poll_task = sim_.every(
      watch.config.poll_interval, [this, id] { poll(id); },
      label_interner_.intern("proxy.poll." + watch.config.url),
      /*immediate=*/true);
  watches_.emplace(id, std::move(watch));
  return id;
}

void AlertProxy::remove_watch(WatchId id) {
  const auto it = watches_.find(id);
  if (it == watches_.end()) return;
  it->second.poll_task.cancel();
  watches_.erase(it);
}

void AlertProxy::poll(WatchId id) {
  const auto it = watches_.find(id);
  if (it == watches_.end()) return;
  stats_.bump("polls");
  if (rng_.chance(web_.fetch_failure_probability())) {
    stats_.bump("fetch_failures");
    return;  // transient; next poll retries
  }
  // The HTTP fetch takes time; compare and alert at response time.
  const Duration latency = web_.sample_fetch_latency(rng_);
  sim_.after(
      latency,
      [this, id] {
        const auto wit = watches_.find(id);
        if (wit == watches_.end()) return;
        Watch& w = wit->second;
        const auto content = web_.get(w.config.url);
        if (!content) {
          stats_.bump("fetch_404");
          return;
        }
        auto block = extract_block(*content, w.config.start_keyword,
                                   w.config.end_keyword);
        if (!block) {
          stats_.bump("block_not_found");
          return;
        }
        const bool first_sight = !w.last_block.has_value();
        const bool changed = !first_sight && *w.last_block != *block;
        w.last_block = block;
        // The first successful poll only establishes the baseline.
        if (!changed) return;
        core::Alert alert;
        alert.source = w.config.source_name;
        alert.native_category = w.config.category;
        alert.subject = w.config.category + " changed at " + w.config.url;
        alert.body = *block;
        alert.high_importance = w.config.high_importance;
        alert.created_at = sim_.now();
        alert.id = strformat("proxy-%llu",
                             static_cast<unsigned long long>(next_alert_++));
        alert.attributes["url"] = w.config.url;
        stats_.bump("alerts_generated");
        log_info("proxy", "change detected at " + w.config.url);
        if (w.sink) w.sink(alert);
      },
      "proxy.fetch");
}

}  // namespace simba::proxy
