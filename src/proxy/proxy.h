// Information/web-store alert proxy (Sections 2.1, 2.2).
//
// "For each Web site, the user specifies the URL, the polling
// frequency, the starting and ending keywords enclosing the interesting
// block of information. The alert proxy periodically polls the site and
// generates an alert when the interesting block changes." The paper's
// running examples — the Florida-recount page and PlayStation2
// availability — appear in the benches and examples.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/alert.h"
#include "sim/simulator.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/stats.h"

namespace simba::proxy {

/// The simulated web: named pages whose content scenario scripts
/// mutate over time.
class WebDirectory {
 public:
  explicit WebDirectory(sim::Simulator& sim);

  void put(const std::string& url, std::string content);
  /// Schedules a content change.
  void put_at(TimePoint when, const std::string& url, std::string content);
  bool exists(const std::string& url) const;
  /// Immediate read of current content (the proxy adds fetch latency).
  std::optional<std::string> get(const std::string& url) const;

  /// Per-fetch HTTP latency model.
  Duration sample_fetch_latency(Rng& rng) const;
  /// Transient fetch failure probability (timeouts, 5xx).
  void set_fetch_failure_probability(double p) { fetch_failure_ = p; }
  double fetch_failure_probability() const { return fetch_failure_; }

 private:
  sim::Simulator& sim_;
  // Stays ordered; std::less<> lets string_view probes avoid a key
  // allocation.
  std::map<std::string, std::string, std::less<>> pages_;
  double fetch_failure_ = 0.01;
};

/// Extracts the block between the first occurrence of `start_keyword`
/// and the next occurrence of `end_keyword`; nullopt when the keywords
/// are not found.
std::optional<std::string> extract_block(const std::string& content,
                                         const std::string& start_keyword,
                                         const std::string& end_keyword);

class AlertProxy {
 public:
  struct WatchConfig {
    std::string url;
    Duration poll_interval = seconds(30);
    std::string start_keyword;
    std::string end_keyword;
    /// Identity stamped on generated alerts.
    std::string source_name = "alert.proxy";
    std::string category = "Web Change";
    bool high_importance = false;
  };

  AlertProxy(sim::Simulator& sim, WebDirectory& web);

  using WatchId = std::uint64_t;
  WatchId add_watch(WatchConfig config, core::AlertSink sink);
  void remove_watch(WatchId id);

  const Counters& stats() const { return stats_; }

 private:
  struct Watch {
    WatchId id;
    WatchConfig config;
    core::AlertSink sink;
    std::optional<std::string> last_block;
    sim::TaskHandle poll_task;
  };

  void poll(WatchId id);

  sim::Simulator& sim_;
  WebDirectory& web_;
  Rng rng_;
  /// Owns the per-watch "proxy.poll.<url>" event labels.
  util::StringInterner label_interner_;
  std::map<WatchId, Watch> watches_;
  WatchId next_watch_ = 1;
  std::uint64_t next_alert_ = 1;
  Counters stats_;
};

}  // namespace simba::proxy
