#include "fleet/user_world.h"

#include <utility>

#include "core/coalescer.h"
#include "fleet/world_state.h"
#include "sim/fault.h"

namespace simba::fleet {

namespace {

// Drops fault windows that closed before the restore instant: their
// sim.at() triggers would otherwise clamp to the restored clock and
// re-fire long-finished outages at epoch start. Windows straddling the
// boundary stay — their down edge clamps to now, which is exactly the
// state the resource was in when the checkpoint was cut.
sim::OutagePlan drop_finished(const sim::OutagePlan& plan, TimePoint now) {
  sim::OutagePlan filtered;
  for (const sim::Outage& outage : plan.outages()) {
    if (outage.end <= now) continue;
    filtered.add(outage.start, outage.length());
  }
  return filtered;
}

// Mirrors tests/test_world.h: fast, loss-free channels for unit tests.
void apply_fast_models(UserWorld& world) {
  net::LinkModel im_link;
  im_link.base_latency = millis(150);
  im_link.jitter = millis(200);
  im_link.loss_probability = 0.0;
  world.bus.set_default_link(im_link);

  email::EmailDelayModel mail;
  mail.fast_probability = 1.0;
  mail.fast_median = seconds(6);
  mail.fast_sigma = 0.3;
  mail.loss_probability = 0.0;
  world.email_server.set_delay_model(mail);

  sms::SmsDelayModel sms_model;
  sms_model.fast_probability = 1.0;
  sms_model.fast_median = seconds(12);
  sms_model.fast_sigma = 0.3;
  sms_model.loss_probability = 0.0;
  world.sms_gateway.set_delay_model(sms_model);
}

// Mirrors bench/common.cc: the Section-5-calibrated channel models.
void apply_calibrated_models(UserWorld& world) {
  net::LinkModel im_link;
  im_link.base_latency = millis(150);
  im_link.jitter = millis(300);
  im_link.loss_probability = 0.001;
  world.bus.set_default_link(im_link);

  email::EmailDelayModel mail;
  mail.fast_probability = 0.95;
  mail.fast_median = seconds(20);
  mail.fast_sigma = 1.0;
  mail.slow_median = hours(2);
  mail.slow_sigma = 1.4;
  mail.loss_probability = 0.003;
  world.email_server.set_delay_model(mail);

  sms::SmsDelayModel sms_model;
  sms_model.fast_probability = 0.90;
  sms_model.fast_median = seconds(18);
  sms_model.fast_sigma = 0.9;
  sms_model.slow_median = minutes(45);
  sms_model.slow_sigma = 1.3;
  sms_model.loss_probability = 0.01;
  world.sms_gateway.set_delay_model(sms_model);
}

core::MabConfig fleet_config(const std::string& owner,
                             const std::string& sms_address,
                             const std::string& email_address,
                             bool storm_config) {
  using namespace core;
  MabConfig config;
  config.profile = UserProfile(owner);
  auto& book = config.profile.addresses();
  book.put(Address{"MSN IM", CommType::kIm, owner, true});
  book.put(Address{"Cell SMS", CommType::kSms, sms_address, true});
  book.put(Address{"Home email", CommType::kEmail, email_address, true});

  DeliveryMode urgent("Urgent");
  urgent.add_block(seconds(30)).actions.push_back(
      DeliveryAction{"MSN IM", true});
  urgent.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Cell SMS", false});
  urgent.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Home email", false});
  config.profile.define_mode(urgent);
  DeliveryMode casual("Casual");
  casual.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Home email", false});
  config.profile.define_mode(casual);

  // The SIMBA-library source (IM-with-ack path) and the legacy portal
  // mail path (category keyword in the sender display name).
  config.classifier.add_rule(
      SourceRule{"src", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{"alerts@yahoo.example",
                                        KeywordLocation::kSenderName,
                                        {"Stocks", "Weather", "Sports"},
                                        "http://alerts.yahoo.example"});

  config.categories.map_keyword("K", "Cat");
  config.categories.map_keyword("Stocks", "Investment");
  config.categories.map_keyword("Weather", "News");
  config.categories.map_keyword("Sports", "News");

  auto& subs = config.subscriptions;
  subs.subscribe("Cat", owner, "Urgent");
  subs.subscribe("Investment", owner, "Casual");
  subs.subscribe("News", owner, "Casual");

  if (storm_config) {
    // Storm plumbing (DESIGN.md §14): Aladdin sensor cascades ride the
    // urgent IM path, proxy poll bursts the casual email path. Purely
    // additive — the legacy rules, keywords, and subscriptions above
    // are untouched, so non-storm traffic classifies exactly as before.
    config.classifier.add_rule(
        SourceRule{"aladdin", KeywordLocation::kNativeCategory, {}, ""});
    config.classifier.add_rule(
        SourceRule{"proxy", KeywordLocation::kNativeCategory, {}, ""});
    config.categories.map_keyword("Motion", "Aladdin");
    config.categories.map_keyword("Poll", "Portal");
    subs.subscribe("Aladdin", owner, "Urgent");
    subs.subscribe("Portal", owner, "Casual");
  }
  return config;
}

}  // namespace

UserWorld::UserWorld(std::uint64_t seed, const UserWorldOptions& options)
    : sim(seed),
      bus(sim),
      im_server(sim, bus),
      email_server(sim),
      sms_gateway(sim, "sms.example.net") {
  if (options.resume != nullptr) {
    // Re-align the fresh kernel and restore the server-side state that
    // survives a machine restart, before any component is built on top
    // of it (the host and user endpoints create their mailboxes in
    // their constructors; EmailServer keeps restored contents).
    sim.restore_clock(options.resume->now, options.resume->events_processed,
                      options.resume->sequence_counter);
    email_server.restore_state(options.resume->email);
    bus.restore_stats(options.resume->bus_stats);
  }
  if (options.trace) {
    trace = std::make_unique<util::Trace>();
    if (options.resume != nullptr) {
      // Replay the pre-checkpoint span history so the full-run trace
      // is one contiguous, byte-identical stream.
      for (const CarriedSpan& span : options.resume->trace) {
        trace->emit_owned(span.alert_id, span.component, span.stage,
                          span.start, span.end, span.detail);
      }
    }
    bus.set_trace(trace.get());
  }
  if (options.fidelity == ModelFidelity::kFast) {
    apply_fast_models(*this);
  } else {
    apply_calibrated_models(*this);
  }
  sms_gateway.attach_to(email_server);
  if (options.bus_pending_bound != 0) {
    bus.set_pending_bound(options.bus_pending_bound);
  }

  if (options.faults) {
    Rng outage_rng = sim.make_rng("fleet.outages");
    sim::OutagePlan im_plan = sim::OutagePlan::generate(
        outage_rng, options.fault_horizon, days(1.5), minutes(10), 1.0);
    if (options.resume != nullptr) {
      im_plan = drop_finished(im_plan, options.resume->now);
    }
    im_server.set_outage_plan(std::move(im_plan));
    im_server.set_session_reset_mtbf(days(1));
  }

  // Chaos: the whole schedule is a pure function of (seed, scenario,
  // horizon), derived before any component consumes randomness.
  if (!options.chaos.empty()) {
    chaos_plan = std::make_unique<sim::ChaosPlan>(seed, options.chaos,
                                                  options.fault_horizon);
    if (chaos_plan->net().any()) {
      bus.set_chaos(chaos_plan->net(), sim.make_rng("chaos.net"));
    }
  }
  if (options.shared_invariants == nullptr && options.track_invariants) {
    invariants = std::make_unique<sim::InvariantChecker>();
  }
  // Conservation sink for this world's observers: a caller-owned
  // checker that spans epoch rebuilds, or this world's own.
  sim::InvariantChecker* checker = options.shared_invariants != nullptr
                                       ? options.shared_invariants
                                       : invariants.get();

  core::UserEndpointOptions user_options;
  user_options.name = options.user;
  user_options.email_check_interval = options.email_check_interval;
  user_options.ack_reaction_mean = seconds(5);
  if (options.faults) {
    Rng away_rng(seed ^ 0x77);
    user_options.away_plan = sim::OutagePlan::generate(
        away_rng, options.fault_horizon, hours(5), hours(1), 0.8);
    if (options.resume != nullptr) {
      user_options.away_plan =
          drop_finished(user_options.away_plan, options.resume->now);
    }
  }
  user = std::make_unique<core::UserEndpoint>(sim, bus, im_server,
                                              email_server, sms_gateway,
                                              user_options);
  if (checker != nullptr) {
    user->set_sighting_observer(
        [checker](const std::string& id, const std::string& channel,
                  TimePoint at) {
          // Digest alerts are synthesized by the coalescer, never
          // submitted by a workload; feeding their sightings to the
          // checker would fabricate tracks with no submission.
          if (core::is_digest_alert_id(id)) return;
          checker->on_delivered(id, channel, at);
        });
  }
  if (options.resume != nullptr) user->restore_state(options.resume->user);
  user->start();

  core::MabHostOptions host_options;
  host_options.owner = options.user;
  host_options.trace = trace.get();
  host_options.config = fleet_config(options.user, user->sms_address(),
                                     user->email_account(),
                                     options.storm_config);
  host_options.mab_options.overload = options.overload;
  if (options.fidelity == ModelFidelity::kCalibrated) {
    host_options.mab_options.processing_delay = millis(900);
    host_options.mab_options.leak_mb_per_hour = 2.0;
    host_options.mab_options.leak_mb_per_alert = 0.05;
  }
  if (options.faults) {
    gui::FaultProfile flaky;
    flaky.mean_time_to_hang = days(1);
    flaky.op_exception_probability = 1e-3;
    flaky.exception_op = "fetch_unread";
    host_options.im_client_profile = flaky;
  }
  if (chaos_plan) {
    // Power outages and torn appends must be armed before the host is
    // built (the host schedules its power events in its constructor).
    // On resume, outages that ended before the checkpoint are dropped
    // like every other finished fault window.
    for (const sim::Outage& outage : chaos_plan->host().power_plan.outages()) {
      if (options.resume != nullptr && outage.end <= options.resume->now) {
        continue;
      }
      host_options.power_plan.add(outage.start, outage.length());
    }
    host_options.torn_append_probability =
        chaos_plan->log().torn_append_probability;
  }
  host = std::make_unique<core::MabHost>(sim, bus, im_server, email_server,
                                         std::move(host_options));
  if (checker != nullptr) {
    host->set_shed_observer([checker](const std::string& id, TimePoint at) {
      // An engine-lane shed of a digest delivery reports the digest's
      // own "dg." id; only workload-submitted alerts have tracks.
      if (core::is_digest_alert_id(id)) return;
      checker->on_shed(id, at);
    });
    host->set_coalesce_observer(
        [checker](const std::string& id, TimePoint at) {
          checker->on_coalesced(id, at);
        });
  }
  if (options.resume != nullptr) host->restore_state(options.resume->host);
  host->start();
  if (chaos_plan) {
    // Process/machine triggers fire blindly at their scheduled times;
    // the host ignores any that land while the machine is down. On
    // resume, triggers at or before the checkpoint instant already
    // fired in a previous epoch (run_until fires events with when <=
    // boundary), so they are skipped rather than clamped to now.
    const TimePoint fired_until =
        options.resume != nullptr ? options.resume->now : TimePoint::min();
    for (TimePoint t : chaos_plan->host().mab_kills) {
      if (t <= fired_until) continue;
      sim.at(t, [this] { host->inject_mab_crash(); }, "chaos.mab_kill");
    }
    for (TimePoint t : chaos_plan->host().mab_hangs) {
      if (t <= fired_until) continue;
      sim.at(t, [this] { host->inject_mab_hang(); }, "chaos.mab_hang");
    }
    for (TimePoint t : chaos_plan->host().reboots) {
      if (t <= fired_until) continue;
      sim.at(t, [this] { host->inject_reboot(); }, "chaos.reboot");
    }
  }
  sim.run_for(seconds(30));  // sign-in warm-up, as bench/common's Cast does

  if (options.with_source) {
    core::SourceEndpointOptions source_options;
    source_options.name = "src";
    source_options.im_block_timeout = seconds(30);
    source = std::make_unique<core::SourceEndpoint>(sim, bus, im_server,
                                                    email_server,
                                                    source_options);
    source->start();
    sim.run_for(seconds(10));
    source->set_target(host->im_address(), host->email_address());
  }
}

WorldState save_world_state(const UserWorld& world) {
  WorldState state;
  state.now = world.sim.now();
  state.events_processed = world.sim.events_processed();
  state.sequence_counter = world.sim.sequence_counter();
  state.host = world.host->save_state();
  state.user = world.user->save_state();
  state.email = world.email_server.save_state();
  state.bus_stats = world.bus.stats();
  if (world.trace) {
    state.trace.reserve(world.trace->size());
    for (const util::Span& span : world.trace->spans()) {
      state.trace.push_back(CarriedSpan{span.alert_id, span.component,
                                        span.stage, span.start, span.end,
                                        span.detail});
    }
  }
  return state;
}

}  // namespace simba::fleet
