#include "fleet/portal_workload.h"

#include "util/flat_map.h"
#include <string>
#include <string_view>

#include "util/arena.h"

namespace simba::fleet {

ShardResult run_portal_shard(const ShardTask& task,
                             const PortalWorkloadOptions& options) {
  ShardResult result;

  UserWorldOptions world_options = options.world;
  world_options.user = "user" + std::to_string(task.shard_id);
  world_options.with_source = options.traffic == Traffic::kSourceIm;
  world_options.fault_horizon = options.horizon;
  UserWorld world(task.seed, world_options);

  // Submit time per alert id. For the email path the MAB's observer
  // supplies it (created_at == mail.submitted_at); for the source path
  // it is recorded at send time.
  util::FlatMap<std::string, TimePoint> sent_at;
  util::FlatMap<std::string, core::DeliveryOutcome> acked;

  world.host->set_alert_observer(
      [&sent_at, email_mode = options.traffic == Traffic::kPortalEmail](
          const core::Alert& alert, TimePoint) {
        if (email_mode) sent_at.emplace(alert.id, alert.created_at);
      });

  // Availability probe. The lambda captures the shard world by
  // reference, so the task must die with this scope — ScopedTask
  // guarantees the cancel even on early exit.
  sim::ScopedTask health_probe(world.sim.every(
      minutes(10),
      [&result, &world] {
        result.counters.bump("health.samples");
        if (world.host->healthy()) result.counters.bump("health.healthy");
      },
      "fleet.health"));

  // One user's portal day: Poisson arrivals at the measured rate,
  // pre-scheduled exactly like the serial bench always did.
  Rng rng = world.sim.make_rng("portal");
  const TimePoint end = kTimeZero + options.horizon;
  const Duration mean_gap{static_cast<std::int64_t>(
      86400.0 / options.alerts_per_user_day * 1e6)};
  std::int64_t sent = 0;
  TimePoint t = world.sim.now();
  while (true) {
    t += rng.exponential_duration(mean_gap);
    if (t >= end) break;
    const std::int64_t alert_number = sent++;
    if (options.traffic == Traffic::kPortalEmail) {
      world.sim.at(t, [&world, alert_number] {
        email::Email mail;
        mail.from = "Yahoo! Alerts - Stocks <alerts@yahoo.example>";
        mail.to = world.host->email_address();
        mail.subject = "portal alert " + std::to_string(alert_number);
        world.email_server.submit(std::move(mail));
      });
    } else {
      // Ids live in the shard's bump arena: one contiguous allocation
      // per alert, no std::to_string temporaries, and the scheduling
      // closures capture a 16-byte view instead of a string. The views
      // stay valid through the drain; the arena resets only after it.
      char shard_buf[20];
      char number_buf[20];
      const std::string_view id = world.id_arena.concat(
          {"s", util::format_u64(task.shard_id, shard_buf), "-",
           util::format_u64(static_cast<std::uint64_t>(alert_number),
                            number_buf)});
      sent_at.emplace(id, t);
      world.sim.at(t, [&world, &acked, id, alert_number] {
        core::Alert alert;
        alert.source = std::string("src");
        alert.native_category = std::string("K");
        alert.subject = "alert " + std::to_string(alert_number);
        alert.id = std::string(id);
        alert.created_at = world.sim.now();
        world.source->send_alert(
            alert, [&acked, id](const core::DeliveryOutcome& outcome) {
              if (outcome.delivered) acked.emplace(id, outcome);
            });
      });
    }
  }

  world.sim.run_until(end + options.drain);

  // Epoch boundary: every pre-scheduled alert closure has fired, so no
  // live view points into the arena any more. Rewind it in O(1); a
  // reused world would re-fill the same chunks next epoch.
  world.id_arena.reset();

  // Score the day from inside the shard, while the world is alive.
  // sorted_items() keeps every Summary's add order deterministic (and
  // byte-identical to the std::map iteration it replaced).
  result.counters.bump("alerts.sent", sent);
  std::int64_t delivered = 0;
  std::int64_t duplicates = 0;
  for (const auto& [id, submitted] : sent_at.sorted_items()) {
    const auto seen = world.user->first_seen(id);
    if (!seen) continue;
    ++delivered;
    const double latency = to_seconds(*seen - submitted);
    result.delivery_latency.add(latency);
    result.delivery_histogram.add(latency);
    duplicates += world.user->sightings(id) - 1;
  }
  result.counters.bump("alerts.delivered", delivered);
  result.counters.bump("alerts.lost", sent - delivered);
  result.counters.bump("alerts.duplicates", duplicates);

  // Conservation: every sighting must trace back to a send this shard
  // made — the user cannot have seen an invented alert.
  result.counters.bump(
      "conservation.invented",
      static_cast<std::int64_t>(world.user->alerts_seen()) - delivered);

  if (options.traffic == Traffic::kSourceIm) {
    // Log-before-ack: an IM-leg acknowledgement (block 0) means the
    // pessimistic log persisted the alert before the ack went out.
    for (const auto& [id, outcome] : acked.sorted_items()) {
      result.ack_latency.add(to_seconds(outcome.completed_at - sent_at[id]));
      if (outcome.block_used == 0 && !world.host->alert_log().contains(id)) {
        result.counters.bump("conservation.ack_unlogged");
      }
    }
    result.counters.bump("alerts.acked",
                         static_cast<std::int64_t>(acked.size()));
  }

  result.events_processed = world.sim.events_processed();
  if (world.trace) result.trace = std::move(*world.trace);
  return result;
}

}  // namespace simba::fleet
