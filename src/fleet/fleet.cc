#include "fleet/fleet.h"

#include <algorithm>
#include <thread>

#include "util/rng.h"
#include "util/strings.h"
#include "util/wall_clock.h"

namespace simba::fleet {

std::uint64_t shard_seed(std::uint64_t base_seed, std::size_t shard_id) {
  // Two splitmix64 steps over the concatenated (base, id) state; the
  // same construction rng.cc uses for seeding, so shard streams are as
  // independent as named child streams.
  std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (shard_id + 1));
  std::uint64_t mixed = splitmix64(state);
  mixed ^= splitmix64(state);
  // Seed 0 would collapse xoshiro's splitmix bootstrap entropy; nudge.
  return mixed == 0 ? 0x5eed5eed5eed5eedULL : mixed;
}

std::vector<double> delivery_latency_boundaries() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0, 7200.0, 86400.0};
}

void FleetReport::merge_shard(const ShardResult& shard) {
  counters.merge(shard.counters);
  delivery_latency.merge(shard.delivery_latency);
  ack_latency.merge(shard.ack_latency);
  critical_latency.merge(shard.critical_latency);
  delivery_histogram.merge(shard.delivery_histogram);
  events_processed += shard.events_processed;
  shard_wall_seconds.add(shard.wall_seconds);
  trace.merge(shard.trace);
}

namespace {

// Deterministic double rendering: %.9g is enough to round-trip every
// value these statistics produce while staying locale-independent.
std::string json_double(double v) { return strformat("%.9g", v); }

std::string json_summary(const Summary& s) {
  std::string out = "{\"n\":" + std::to_string(s.count());
  if (!s.empty()) {
    out += ",\"mean\":" + json_double(s.mean());
    out += ",\"p50\":" + json_double(s.percentile(50));
    out += ",\"p90\":" + json_double(s.percentile(90));
    out += ",\"p99\":" + json_double(s.percentile(99));
    out += ",\"min\":" + json_double(s.min());
    out += ",\"max\":" + json_double(s.max());
  }
  out += "}";
  return out;
}

std::string json_counters(const Counters& counters) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : counters.all()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "}";
  return out;
}

std::string json_histogram(const Histogram& histogram) {
  std::string out = "[";
  for (std::size_t i = 0; i < histogram.buckets().size(); ++i) {
    if (i) out += ",";
    out += std::to_string(histogram.buckets()[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string FleetReport::correctness_json() const {
  std::string out = "{";
  out += "\"shards\":" + std::to_string(shards);
  out += ",\"base_seed\":" + std::to_string(base_seed);
  out += ",\"counters\":" + json_counters(counters);
  out += ",\"delivery_latency\":" + json_summary(delivery_latency);
  out += ",\"ack_latency\":" + json_summary(ack_latency);
  out += ",\"critical_latency\":" + json_summary(critical_latency);
  out += ",\"delivery_histogram\":" + json_histogram(delivery_histogram);
  out += ",\"events_processed\":" + std::to_string(events_processed);
  out += ",\"per_shard\":[";
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (i) out += ",";
    const ShardResult& s = per_shard[i];
    out += "{\"shard\":" + std::to_string(s.shard_id);
    out += ",\"seed\":" + std::to_string(s.seed);
    out += ",\"events\":" + std::to_string(s.events_processed);
    out += ",\"counters\":" + json_counters(s.counters);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FleetReport::render() const {
  std::string out;
  out += strformat("fleet: %zu shards x 1 user, %d thread%s, base seed %llu\n",
                   shards, threads, threads == 1 ? "" : "s",
                   static_cast<unsigned long long>(base_seed));
  out += strformat("  events processed   %llu\n",
                   static_cast<unsigned long long>(events_processed));
  out += strformat("  fleet wall clock   %.3f s\n", wall_seconds);
  if (!shard_wall_seconds.empty()) {
    out += "  shard wall clock   " + shard_wall_seconds.report("%.4f") + "\n";
  }
  if (!delivery_latency.empty()) {
    out += "  delivery latency   " + delivery_latency.report("%.2f") + "\n";
  }
  if (!ack_latency.empty()) {
    out += "  ack latency        " + ack_latency.report("%.2f") + "\n";
  }
  if (!critical_latency.empty()) {
    out += "  critical latency   " + critical_latency.report("%.2f") + "\n";
  }
  out += "  counters:\n" + counters.report();
  if (delivery_histogram.count() > 0) {
    out += "  delivery latency histogram:\n" + delivery_histogram.render();
  }
  return out;
}

std::size_t ShardScheduler::claim() {
  util::MutexLock lock(mu_);
  if (first_failure_) return shards_;
  return next_ < shards_ ? next_++ : shards_;
}

void ShardScheduler::record_failure(std::exception_ptr error) {
  util::MutexLock lock(mu_);
  if (!first_failure_) first_failure_ = std::move(error);
}

void ShardScheduler::rethrow_if_failed() {
  util::MutexLock lock(mu_);
  if (first_failure_) std::rethrow_exception(first_failure_);
}

FleetReport run_fleet(const FleetOptions& options, const ShardBody& body) {
  const util::WallTimer fleet_timer;
  const std::size_t n = options.shards;
  std::vector<ShardResult> results(n);

  auto run_shard = [&](std::size_t shard_id) {
    const ShardTask task{shard_id, shard_seed(options.base_seed, shard_id)};
    const util::WallTimer shard_timer;
    ShardResult result = body(task);
    result.shard_id = task.shard_id;
    result.seed = task.seed;
    result.wall_seconds = shard_timer.seconds();
    results[shard_id] = std::move(result);
  };

  const int threads =
      static_cast<int>(std::min<std::size_t>(
          n, static_cast<std::size_t>(std::max(1, options.threads))));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_shard(i);
  } else {
    // Work queue: the scheduler hands shards out in claim order; each
    // worker writes only its own results slot, so the merge below sees
    // fully-built results after join() with no further synchronisation.
    // A shard body that throws stops the fleet: the scheduler drains
    // the queue, workers wind down, and the first exception is
    // rethrown here after join instead of std::terminate()ing the
    // worker thread.
    ShardScheduler scheduler(n);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = scheduler.claim();
          if (i >= n) return;
          try {
            run_shard(i);
          } catch (...) {
            scheduler.record_failure(std::current_exception());
            return;
          }
        }
      });
    }
    for (auto& worker : pool) worker.join();
    scheduler.rethrow_if_failed();
  }

  FleetReport report;
  report.shards = n;
  report.threads = std::max(1, options.threads);
  report.base_seed = options.base_seed;
  for (const ShardResult& result : results) report.merge_shard(result);
  report.per_shard = std::move(results);
  report.wall_seconds = fleet_timer.seconds();
  return report;
}

}  // namespace simba::fleet
