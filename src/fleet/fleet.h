// Sharded parallel fleet runner.
//
// The paper's portal workload (Section 1: ~225k users, ~778k alerts a
// day) is embarrassingly parallel: every user's MyAlertBuddy world is
// independent by construction. The fleet runner exploits that — it
// partitions N per-user worlds across a thread pool, one Simulator per
// shard per thread, each seeded deterministically from
// shard_seed(base_seed, shard_id), and merges the per-shard statistics
// in shard order. Because shard seeds do not depend on scheduling and
// merging is order-fixed, the merged report is bit-identical for any
// thread count (the determinism regression in tests/fleet_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/stats.h"
#include "util/trace.h"

namespace simba::fleet {

/// Deterministic per-shard seed: base_seed and shard_id mixed through
/// splitmix64 so neighbouring shards get uncorrelated streams while
/// the mapping stays stable across runs, platforms, and thread counts.
std::uint64_t shard_seed(std::uint64_t base_seed, std::size_t shard_id);

/// Bucket boundaries every fleet delivery-latency histogram uses, so
/// per-shard histograms are always merge-compatible. Spans the IM
/// fast path (~1 s) through the email tail (hours).
std::vector<double> delivery_latency_boundaries();

/// Work order handed to a shard body: which shard, and its seed.
struct ShardTask {
  std::size_t shard_id = 0;
  std::uint64_t seed = 0;
};

/// One shard's outcome. Everything except wall_seconds is a pure
/// function of the shard seed and options, and participates in the
/// deterministic merged report; wall_seconds is timing-only.
struct ShardResult {
  std::size_t shard_id = 0;
  std::uint64_t seed = 0;
  Counters counters;
  Summary delivery_latency;  // seconds, submit -> user's first sighting
  Summary ack_latency;       // seconds, send -> source-side ack
  /// Critical (high-importance) alerts only — the latency the overload
  /// defenses exist to protect under storm load (experiment E12).
  Summary critical_latency;
  Histogram delivery_histogram{delivery_latency_boundaries()};
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;
  /// Lifecycle trace (empty when the workload ran untraced). Virtual
  /// timestamps only, so it participates in determinism checks.
  util::Trace trace;
  /// Human-readable invariant-violation report, including each
  /// violating alert's full trace (empty when the contract held).
  /// Diagnostic text only — excluded from correctness_json().
  std::string violation_details;
};

/// Merged view of a whole fleet run, plus the per-shard results (in
/// shard order) for tests that assert per-shard invariants.
struct FleetReport {
  std::size_t shards = 0;
  int threads = 1;
  std::uint64_t base_seed = 0;
  Counters counters;
  Summary delivery_latency;
  Summary ack_latency;
  Summary critical_latency;
  Histogram delivery_histogram{delivery_latency_boundaries()};
  std::uint64_t events_processed = 0;
  Summary shard_wall_seconds;  // timing-only, excluded from correctness
  double wall_seconds = 0.0;   // whole-fleet wall clock
  /// Shard traces folded in shard order — bit-identical for any thread
  /// count, like every other merged statistic here.
  util::Trace trace;
  std::vector<ShardResult> per_shard;

  /// Folds one shard in. Callers must fold in shard order to keep the
  /// merged floating-point statistics scheduling-independent.
  void merge_shard(const ShardResult& shard);

  /// Deterministic snapshot of every correctness-relevant number —
  /// counters, latency statistics, histogram buckets, per-shard seeds
  /// and counters — with all timing omitted. Two runs of the same
  /// fleet at different thread counts must render identical strings.
  std::string correctness_json() const;

  /// Human-readable rendering including timing, for bench output.
  std::string render() const;
};

struct FleetOptions {
  std::size_t shards = 1;
  /// <= 1 runs every shard serially on the calling thread; higher
  /// values use a pool of std::threads pulling shards off a queue.
  int threads = 1;
  std::uint64_t base_seed = 42;
};

/// Runs one independent per-user world to its horizon and reports.
using ShardBody = std::function<ShardResult(const ShardTask&)>;

/// Hands shards out to pool workers in claim order and records the
/// first shard failure. This is the fleet runner's only cross-thread
/// mutable state (each worker writes results into its own slot), so it
/// is the lock that Clang's -Wthread-safety checks: both fields are
/// GUARDED_BY the util::Mutex and only touched under util::MutexLock.
/// Shard *seeds* never depend on which worker claims which shard, so
/// the merged report stays bit-identical across thread counts.
class ShardScheduler {
 public:
  explicit ShardScheduler(std::size_t shards) : shards_(shards) {}

  /// Next unclaimed shard id, or `shards` when drained. Fails fast: a
  /// recorded failure drains the queue so workers stop claiming new
  /// shards once one shard has thrown.
  std::size_t claim() SIMBA_EXCLUDES(mu_);

  /// Records the first failure thrown by a shard body (later ones are
  /// dropped; the first is what run_fleet rethrows after join).
  void record_failure(std::exception_ptr error) SIMBA_EXCLUDES(mu_);

  /// Rethrows the recorded failure, if any. Call after all workers
  /// have joined.
  void rethrow_if_failed() SIMBA_EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  std::size_t next_ SIMBA_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_failure_ SIMBA_GUARDED_BY(mu_);
  const std::size_t shards_;
};

/// Executes `body` once per shard across the pool and merges results
/// in shard order. The body runs with no shared mutable state between
/// shards (each builds its own Simulator/World); the runner only hands
/// it a ShardTask and collects the ShardResult.
FleetReport run_fleet(const FleetOptions& options, const ShardBody& body);

}  // namespace simba::fleet
