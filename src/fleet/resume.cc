#include "fleet/resume.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/alert.h"
#include "fleet/world_state.h"
#include "sim/invariants.h"
#include "sim/snapshot.h"
#include "util/arena.h"
#include "util/flat_map.h"

namespace simba::fleet {

const char* to_string(ResumeKind kind) {
  switch (kind) {
    case ResumeKind::kPortal: return "portal";
    case ResumeKind::kChaos: return "chaos";
    case ResumeKind::kStorm: return "storm";
  }
  return "?";
}

namespace {

// --- Image layout -----------------------------------------------------------

constexpr std::uint32_t kShardImageKind = 1;
constexpr std::uint32_t kFleetImageKind = 2;

// Shard-image sections, in their strict order.
enum ShardSection : std::uint32_t {
  kSecMeta = 1,
  kSecClock = 2,
  kSecHost = 3,
  kSecUser = 4,
  kSecEmail = 5,
  kSecBus = 6,
  kSecTrace = 7,
  kSecPlan = 8,
  kSecChecker = 9,
  kSecDriver = 10,
};

// Fleet-image sections: one meta, then one shard blob per shard in
// shard order.
enum FleetSection : std::uint32_t {
  kSecFleetMeta = 1,
  kSecFleetShard = 2,
};

// --- The arrival plan -------------------------------------------------------

// Every arrival stream the three workload kinds submit. The whole
// schedule is realized once, at epoch 0, from the same dedicated rng
// stream the legacy workload would use — after that it is pure data,
// carried (and checkpointed) as such.
enum Stream : std::uint8_t {
  kStreamPortal = 0,      // legacy portal mail into the buddy's mailbox
  kStreamChaos = 1,       // chaos-workload source alerts
  kStreamBackground = 2,  // storm background floor
  kStreamCritical = 3,    // storm high-importance stream
  kStreamCascade = 4,     // Aladdin sensor cascades
  kStreamBurst = 5,       // proxy poll bursts
};

struct Arrival {
  TimePoint t{};
  std::uint8_t stream = kStreamPortal;
};

struct StreamInfo {
  const char* source;
  const char* native;
  const char* subject_prefix;
  bool critical;
};

StreamInfo stream_info(std::uint8_t stream) {
  switch (stream) {
    case kStreamChaos: return {"src", "K", "chaos alert ", false};
    case kStreamBackground: return {"src", "K", "storm alert ", false};
    case kStreamCritical: return {"aladdin", "Motion", "storm alert ", true};
    case kStreamCascade: return {"aladdin", "Motion", "storm alert ", false};
    case kStreamBurst: return {"proxy", "Poll", "storm alert ", false};
    default: return {"src", "K", "alert ", false};
  }
}

// --- Per-shard driver -------------------------------------------------------

/// Everything one shard carries across epoch boundaries. This struct
/// (plus the options it was created under) IS the checkpoint: encoding
/// it and decoding it back must be lossless.
struct ShardDriver {
  std::uint32_t next_epoch = 0;
  /// The full arrival schedule, time-ordered; an arrival's id number
  /// is its index. Fixed after epoch 0.
  std::vector<Arrival> plan;
  /// Arrivals already handed to a past (or the current) epoch's kernel.
  std::uint64_t cursor = 0;
  /// World state saved at the last boundary (meaningful when
  /// next_epoch > 0).
  WorldState world;
  /// Conservation tracker spanning all epochs (kChaos / kStorm).
  sim::InvariantChecker checker;
  /// Portal only: MAB-assigned alert id -> submit time, fed by the
  /// alert observer. Serialised through sorted_items() so checkpoint
  /// images stay sorted and thread-invariant.
  util::FlatMap<std::string, TimePoint> sent_at;
  /// Portal only: availability-probe counters.
  Counters health;
  /// Shard checkpoint image, filled at the boundary the control asked
  /// to checkpoint at (encoding is pure, so it is safe inside the
  /// parallel shard body).
  std::string image;
};

// --- Codecs -----------------------------------------------------------------
// All decoders lean on SnapshotReader's sticky-error contract: loops
// are bounded by per-iteration ok() checks and nothing pre-reserves
// from untrusted lengths, so a corrupt image degrades into a clean
// Status, never UB.

void put_string_vector(sim::SnapshotWriter& w,
                       const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> get_string_vector(sim::SnapshotReader& r) {
  std::vector<std::string> out;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) out.push_back(r.str());
  return out;
}

void put_string_map(sim::SnapshotWriter& w,
                    // simba-lint: ordered (snapshot serialises sorted)
                    const std::map<std::string, std::string>& m) {
  w.u64(m.size());
  for (const auto& [key, value] : m) {
    w.str(key);
    w.str(value);
  }
}

// simba-lint: ordered
std::map<std::string, std::string> get_string_map(sim::SnapshotReader& r) {
  // simba-lint: ordered
  std::map<std::string, std::string> out;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string key = r.str();
    out[std::move(key)] = r.str();
  }
  return out;
}

// Header maps are FlatMaps; serialising via sorted_items() keeps the
// image byte-identical to the ordered-map encoding above.
void put_string_map(sim::SnapshotWriter& w,
                    const util::FlatMap<std::string, std::string>& m) {
  w.u64(m.size());
  for (const auto& [key, value] : m.sorted_items()) {
    w.str(key);
    w.str(value);
  }
}

util::FlatMap<std::string, std::string> get_flat_string_map(
    sim::SnapshotReader& r) {
  util::FlatMap<std::string, std::string> out;
  const std::uint64_t n = r.u64();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string key = r.str();
    out[std::move(key)] = r.str();
  }
  return out;
}

void put_alert(sim::SnapshotWriter& w, const core::Alert& alert) {
  w.str(alert.source);
  w.str(alert.native_category);
  w.str(alert.subject);
  w.str(alert.body);
  w.boolean(alert.high_importance);
  w.time_point(alert.created_at);
  w.str(alert.id);
  put_string_map(w, alert.attributes);
}

core::Alert get_alert(sim::SnapshotReader& r) {
  core::Alert alert;
  alert.source = r.str();
  alert.native_category = r.str();
  alert.subject = r.str();
  alert.body = r.str();
  alert.high_importance = r.boolean();
  alert.created_at = r.time_point();
  alert.id = r.str();
  alert.attributes = get_string_map(r);
  return alert;
}

void put_email(sim::SnapshotWriter& w, const email::Email& mail) {
  w.u64(mail.id);
  w.str(mail.from);
  w.str(mail.to);
  w.str(mail.subject);
  w.str(mail.body);
  put_string_map(w, mail.headers);
  w.boolean(mail.high_importance);
  w.time_point(mail.submitted_at);
  w.time_point(mail.delivered_at);
}

email::Email get_email(sim::SnapshotReader& r) {
  email::Email mail;
  mail.id = r.u64();
  mail.from = r.str();
  mail.to = r.str();
  mail.subject = r.str();
  mail.body = r.str();
  mail.headers = get_flat_string_map(r);
  mail.high_importance = r.boolean();
  mail.submitted_at = r.time_point();
  mail.delivered_at = r.time_point();
  return mail;
}

void put_host(sim::SnapshotWriter& w, const core::MabHost::State& s) {
  w.u64(s.log.records.size());
  for (const core::AlertLog::SavedRecord& record : s.log.records) {
    put_alert(w, record.alert);
    w.time_point(record.received_at);
    w.time_point(record.processed_at);
    w.boolean(record.processed);
  }
  sim::put_counters(w, s.log.stats);
  w.u64(s.digest.entries.size());
  for (const core::DigestStore::Entry& entry : s.digest.entries) {
    put_alert(w, entry.alert);
    w.str(entry.category);
    w.time_point(entry.filtered_at);
  }
  sim::put_counters(w, s.digest.stats);
  w.u64(s.coalescer.windows.size());
  for (const core::AlertCoalescer::WindowState& window : s.coalescer.windows) {
    w.str(window.category);
    w.u64(window.count);
    put_string_vector(w, window.representative_ids);
    put_string_vector(w, window.folded_ids);
    w.time_point(window.opened_at);
    w.time_point(window.deadline);
  }
  w.u64(s.coalescer.next_sequence);
  w.u64(s.mab_incarnations);
  sim::put_counters(w, s.stats);
  sim::put_counters(w, s.mab_totals);
}

core::MabHost::State get_host(sim::SnapshotReader& r) {
  core::MabHost::State s;
  const std::uint64_t records = r.u64();
  for (std::uint64_t i = 0; i < records && r.ok(); ++i) {
    core::AlertLog::SavedRecord record;
    record.alert = get_alert(r);
    record.received_at = r.time_point();
    record.processed_at = r.time_point();
    record.processed = r.boolean();
    s.log.records.push_back(std::move(record));
  }
  s.log.stats = sim::get_counters(r);
  const std::uint64_t entries = r.u64();
  for (std::uint64_t i = 0; i < entries && r.ok(); ++i) {
    core::DigestStore::Entry entry;
    entry.alert = get_alert(r);
    entry.category = r.str();
    entry.filtered_at = r.time_point();
    s.digest.entries.push_back(std::move(entry));
  }
  s.digest.stats = sim::get_counters(r);
  const std::uint64_t windows = r.u64();
  for (std::uint64_t i = 0; i < windows && r.ok(); ++i) {
    core::AlertCoalescer::WindowState window;
    window.category = r.str();
    window.count = r.u64();
    window.representative_ids = get_string_vector(r);
    window.folded_ids = get_string_vector(r);
    window.opened_at = r.time_point();
    window.deadline = r.time_point();
    s.coalescer.windows.push_back(std::move(window));
  }
  s.coalescer.next_sequence = r.u64();
  s.mab_incarnations = r.u64();
  s.stats = sim::get_counters(r);
  s.mab_totals = sim::get_counters(r);
  return s;
}

void put_user(sim::SnapshotWriter& w, const core::UserEndpoint::State& s) {
  w.u64(s.sightings.size());
  for (const core::UserEndpoint::SightingState& sighting : s.sightings) {
    w.str(sighting.alert_id);
    w.time_point(sighting.first);
    w.str(sighting.channel);
    w.i64(sighting.count);
  }
  w.u64(s.email_cursor);
  sim::put_counters(w, s.stats);
}

core::UserEndpoint::State get_user(sim::SnapshotReader& r) {
  core::UserEndpoint::State s;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    core::UserEndpoint::SightingState sighting;
    sighting.alert_id = r.str();
    sighting.first = r.time_point();
    sighting.channel = r.str();
    sighting.count = static_cast<int>(r.i64());
    s.sightings.push_back(std::move(sighting));
  }
  s.email_cursor = r.u64();
  s.stats = sim::get_counters(r);
  return s;
}

void put_email_server(sim::SnapshotWriter& w,
                      const email::EmailServer::State& s) {
  w.u64(s.mailboxes.size());
  for (const email::EmailServer::MailboxState& mailbox : s.mailboxes) {
    w.str(mailbox.address);
    w.u64(mailbox.mail.size());
    for (const email::Email& mail : mailbox.mail) put_email(w, mail);
  }
  w.u64(s.next_id);
  sim::put_counters(w, s.stats);
}

email::EmailServer::State get_email_server(sim::SnapshotReader& r) {
  email::EmailServer::State s;
  const std::uint64_t boxes = r.u64();
  for (std::uint64_t i = 0; i < boxes && r.ok(); ++i) {
    email::EmailServer::MailboxState mailbox;
    mailbox.address = r.str();
    const std::uint64_t mails = r.u64();
    for (std::uint64_t j = 0; j < mails && r.ok(); ++j) {
      mailbox.mail.push_back(get_email(r));
    }
    s.mailboxes.push_back(std::move(mailbox));
  }
  s.next_id = r.u64();
  s.stats = sim::get_counters(r);
  return s;
}

void put_spans(sim::SnapshotWriter& w, const std::vector<CarriedSpan>& spans) {
  w.u64(spans.size());
  for (const CarriedSpan& span : spans) {
    w.str(span.alert_id);
    w.str(span.component);
    w.str(span.stage);
    w.time_point(span.start);
    w.time_point(span.end);
    w.str(span.detail);
  }
}

std::vector<CarriedSpan> get_spans(sim::SnapshotReader& r) {
  std::vector<CarriedSpan> out;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    CarriedSpan span;
    span.alert_id = r.str();
    span.component = r.str();
    span.stage = r.str();
    span.start = r.time_point();
    span.end = r.time_point();
    span.detail = r.str();
    out.push_back(std::move(span));
  }
  return out;
}

void put_checker(sim::SnapshotWriter& w,
                 const sim::InvariantChecker::State& s) {
  w.boolean(s.duplicates_allowed);
  w.u64(s.tracks.size());
  for (const sim::InvariantChecker::TrackState& track : s.tracks) {
    w.str(track.id);
    w.boolean(track.submitted);
    w.boolean(track.logged);
    w.boolean(track.acked);
    w.boolean(track.acked_logged);
    w.i64(track.ack_block);
    w.boolean(track.failed);
    w.boolean(track.shed);
    w.i64(track.coalesces);
    w.boolean(track.recoverable);
    w.i64(track.sightings);
    w.time_point(track.submitted_at);
    w.time_point(track.first_seen);
  }
}

sim::InvariantChecker::State get_checker(sim::SnapshotReader& r) {
  sim::InvariantChecker::State s;
  s.duplicates_allowed = r.boolean();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    sim::InvariantChecker::TrackState track;
    track.id = r.str();
    track.submitted = r.boolean();
    track.logged = r.boolean();
    track.acked = r.boolean();
    track.acked_logged = r.boolean();
    track.ack_block = static_cast<int>(r.i64());
    track.failed = r.boolean();
    track.shed = r.boolean();
    track.coalesces = static_cast<int>(r.i64());
    track.recoverable = r.boolean();
    track.sightings = static_cast<int>(r.i64());
    track.submitted_at = r.time_point();
    track.first_seen = r.time_point();
    s.tracks.push_back(std::move(track));
  }
  return s;
}

// --- Shard image ------------------------------------------------------------

std::string encode_shard(const ResumableOptions& o, const ShardTask& task,
                         const ShardDriver& d) {
  sim::SnapshotWriter w(kShardImageKind);

  w.begin_section(kSecMeta);
  w.u32(static_cast<std::uint32_t>(o.kind));
  w.u64(task.shard_id);
  w.u64(task.seed);
  w.u32(static_cast<std::uint32_t>(o.epochs));
  w.u32(d.next_epoch);
  w.dur(o.horizon);
  w.dur(o.drain);
  w.dur(o.boundary_gap);
  w.f64(o.alerts_per_user_day);
  w.f64(o.background_per_day);
  w.f64(o.critical_per_day);
  w.u32(static_cast<std::uint32_t>(o.sensor_cascades));
  w.u32(static_cast<std::uint32_t>(o.cascade_size));
  w.dur(o.cascade_spread);
  w.u32(static_cast<std::uint32_t>(o.poll_bursts));
  w.u32(static_cast<std::uint32_t>(o.burst_size));
  w.dur(o.burst_spread);
  w.end_section();

  w.begin_section(kSecClock);
  w.time_point(d.world.now);
  w.u64(d.world.events_processed);
  w.u64(d.world.sequence_counter);
  w.end_section();

  w.begin_section(kSecHost);
  put_host(w, d.world.host);
  w.end_section();

  w.begin_section(kSecUser);
  put_user(w, d.world.user);
  w.end_section();

  w.begin_section(kSecEmail);
  put_email_server(w, d.world.email);
  w.end_section();

  w.begin_section(kSecBus);
  sim::put_counters(w, d.world.bus_stats);
  w.end_section();

  w.begin_section(kSecTrace);
  put_spans(w, d.world.trace);
  w.end_section();

  w.begin_section(kSecPlan);
  w.u64(d.plan.size());
  for (const Arrival& arrival : d.plan) {
    w.time_point(arrival.t);
    w.u8(arrival.stream);
  }
  w.u64(d.cursor);
  w.end_section();

  w.begin_section(kSecChecker);
  put_checker(w, d.checker.save_state());
  w.end_section();

  w.begin_section(kSecDriver);
  w.u64(d.sent_at.size());
  for (const auto& [id, t] : d.sent_at.sorted_items()) {
    w.str(id);
    w.time_point(t);
  }
  sim::put_counters(w, d.health);
  w.end_section();

  return w.finish();
}

Result<ShardDriver> decode_shard(const ResumableOptions& o,
                                 const ShardTask& task,
                                 std::string_view image) {
  sim::SnapshotReader r(image, kShardImageKind);
  ShardDriver d;

  r.enter(kSecMeta);
  const std::uint32_t kind = r.u32();
  const std::uint64_t shard_id = r.u64();
  const std::uint64_t seed = r.u64();
  const std::uint32_t epochs = r.u32();
  d.next_epoch = r.u32();
  const Duration horizon = r.dur();
  const Duration drain = r.dur();
  const Duration gap = r.dur();
  const double alerts_per_user_day = r.f64();
  const double background_per_day = r.f64();
  const double critical_per_day = r.f64();
  const std::uint32_t sensor_cascades = r.u32();
  const std::uint32_t cascade_size = r.u32();
  const Duration cascade_spread = r.dur();
  const std::uint32_t poll_bursts = r.u32();
  const std::uint32_t burst_size = r.u32();
  const Duration burst_spread = r.dur();
  r.leave();
  if (!r.ok()) return make_error(r.status().error());
  // A checkpoint is only replayable under the exact run shape it was
  // cut from; a mismatch would silently diverge, so it is an error.
  if (kind != static_cast<std::uint32_t>(o.kind)) {
    return make_error("checkpoint kind mismatch: image has " +
                      std::to_string(kind));
  }
  if (shard_id != task.shard_id || seed != task.seed) {
    return make_error("checkpoint shard identity mismatch (shard " +
                      std::to_string(shard_id) + ")");
  }
  if (epochs != static_cast<std::uint32_t>(o.epochs) ||
      horizon != o.horizon || drain != o.drain || gap != o.boundary_gap ||
      alerts_per_user_day != o.alerts_per_user_day ||
      background_per_day != o.background_per_day ||
      critical_per_day != o.critical_per_day ||
      sensor_cascades != static_cast<std::uint32_t>(o.sensor_cascades) ||
      cascade_size != static_cast<std::uint32_t>(o.cascade_size) ||
      cascade_spread != o.cascade_spread ||
      poll_bursts != static_cast<std::uint32_t>(o.poll_bursts) ||
      burst_size != static_cast<std::uint32_t>(o.burst_size) ||
      burst_spread != o.burst_spread) {
    return make_error("checkpoint run-shape mismatch for shard " +
                      std::to_string(task.shard_id));
  }
  if (d.next_epoch == 0 || d.next_epoch >= epochs) {
    return make_error("checkpoint epoch out of range: " +
                      std::to_string(d.next_epoch));
  }

  r.enter(kSecClock);
  d.world.now = r.time_point();
  d.world.events_processed = r.u64();
  d.world.sequence_counter = r.u64();
  r.leave();

  r.enter(kSecHost);
  d.world.host = get_host(r);
  r.leave();

  r.enter(kSecUser);
  d.world.user = get_user(r);
  r.leave();

  r.enter(kSecEmail);
  d.world.email = get_email_server(r);
  r.leave();

  r.enter(kSecBus);
  d.world.bus_stats = sim::get_counters(r);
  r.leave();

  r.enter(kSecTrace);
  d.world.trace = get_spans(r);
  r.leave();

  r.enter(kSecPlan);
  const std::uint64_t arrivals = r.u64();
  for (std::uint64_t i = 0; i < arrivals && r.ok(); ++i) {
    Arrival arrival;
    arrival.t = r.time_point();
    arrival.stream = r.u8();
    d.plan.push_back(arrival);
  }
  d.cursor = r.u64();
  r.leave();

  r.enter(kSecChecker);
  const sim::InvariantChecker::State checker_state = get_checker(r);
  r.leave();

  r.enter(kSecDriver);
  const std::uint64_t sent = r.u64();
  for (std::uint64_t i = 0; i < sent && r.ok(); ++i) {
    std::string id = r.str();
    const TimePoint t = r.time_point();
    d.sent_at.emplace(std::move(id), t);
  }
  d.health = sim::get_counters(r);
  r.leave();

  const Status status = r.finish();
  if (!status.ok()) return make_error(status.error());
  if (d.cursor > d.plan.size()) {
    return make_error("checkpoint plan cursor out of range");
  }
  d.checker.restore_state(checker_state);
  return d;
}

// --- Epoch machinery --------------------------------------------------------

TimePoint epoch_boundary(const ResumableOptions& o, int i) {
  return kTimeZero +
         Duration{o.horizon.count() * static_cast<std::int64_t>(i) /
                  static_cast<std::int64_t>(o.epochs)};
}

/// Realizes the full arrival schedule from the shard seed (epoch 0
/// only), mirroring the legacy workloads' streams and stream names,
/// then drops arrivals inside the quiesce window before each interior
/// boundary and orders everything by time. An arrival's plan index is
/// its alert id number.
void build_plan(UserWorld& world, const ResumableOptions& o, ShardDriver& d) {
  std::vector<Arrival> plan;
  const TimePoint start = world.sim.now();
  const TimePoint end = kTimeZero + o.horizon;
  const auto poisson = [&](Rng& rng, double per_day, std::uint8_t stream) {
    if (per_day <= 0.0) return;
    const Duration mean_gap{
        static_cast<std::int64_t>(86400.0 / per_day * 1e6)};
    TimePoint t = start;
    while (true) {
      t += rng.exponential_duration(mean_gap);
      if (t >= end) break;
      plan.push_back(Arrival{t, stream});
    }
  };
  switch (o.kind) {
    case ResumeKind::kPortal: {
      Rng rng = world.sim.make_rng("portal");
      poisson(rng, o.alerts_per_user_day, kStreamPortal);
      break;
    }
    case ResumeKind::kChaos: {
      Rng rng = world.sim.make_rng("chaos.load");
      poisson(rng, o.alerts_per_user_day, kStreamChaos);
      break;
    }
    case ResumeKind::kStorm: {
      Rng rng = world.sim.make_rng("storm.load");
      poisson(rng, o.background_per_day, kStreamBackground);
      poisson(rng, o.critical_per_day, kStreamCritical);
      for (int c = 0; c < o.sensor_cascades; ++c) {
        TimePoint t =
            start + rng.uniform_duration(Duration::zero(), end - start);
        const Duration mean_gap{static_cast<std::int64_t>(
            to_seconds(o.cascade_spread) / std::max(1, o.cascade_size) * 1e6)};
        for (int i = 0; i < o.cascade_size; ++i) {
          if (i > 0) t += rng.exponential_duration(mean_gap);
          if (t >= end) break;
          plan.push_back(Arrival{t, kStreamCascade});
        }
      }
      for (int b = 0; b < o.poll_bursts; ++b) {
        TimePoint t =
            start + rng.uniform_duration(Duration::zero(), end - start);
        const Duration mean_gap{static_cast<std::int64_t>(
            to_seconds(o.burst_spread) / std::max(1, o.burst_size) * 1e6)};
        for (int i = 0; i < o.burst_size; ++i) {
          if (i > 0) t += rng.exponential_duration(mean_gap);
          if (t >= end) break;
          plan.push_back(Arrival{t, kStreamBurst});
        }
      }
      break;
    }
  }
  // Quiesce: no arrivals this close before an interior boundary, so
  // source-side deliveries resolve before the planned restart.
  std::erase_if(plan, [&](const Arrival& a) {
    for (int j = 1; j < o.epochs; ++j) {
      const TimePoint b = epoch_boundary(o, j);
      if (a.t >= b - o.boundary_gap && a.t < b) return true;
    }
    return false;
  });
  std::stable_sort(plan.begin(), plan.end(),
                   [](const Arrival& x, const Arrival& y) { return x.t < y.t; });
  d.plan = std::move(plan);
}

/// Schedules every not-yet-scheduled arrival with t < window_end into
/// this epoch's kernel, mirroring the legacy workloads' submission
/// closures (ids in the shard bump arena, checker fed on submit and on
/// the source's done callback).
void schedule_arrivals(UserWorld& world, const ResumableOptions& o,
                       const ShardTask& task, ShardDriver& d,
                       TimePoint window_end) {
  while (d.cursor < d.plan.size() && d.plan[d.cursor].t < window_end) {
    const Arrival arrival = d.plan[d.cursor];
    const std::uint64_t number = d.cursor++;
    if (o.kind == ResumeKind::kPortal) {
      world.sim.at(arrival.t, [&world, number] {
        email::Email mail;
        mail.from = "Yahoo! Alerts - Stocks <alerts@yahoo.example>";
        mail.to = world.host->email_address();
        mail.subject = "portal alert " + std::to_string(number);
        world.email_server.submit(std::move(mail));
      });
      continue;
    }
    const StreamInfo info = stream_info(arrival.stream);
    char shard_buf[20];
    char number_buf[20];
    const std::string_view id = world.id_arena.concat(
        {"s", util::format_u64(task.shard_id, shard_buf), "-",
         util::format_u64(number, number_buf)});
    sim::InvariantChecker* checker = &d.checker;
    world.sim.at(arrival.t, [&world, checker, id, number, info] {
      core::Alert alert;
      // std::string rvalues: sidestep a GCC 12 -Werror=restrict false
      // positive on the const char* assign path at -O2.
      alert.source = std::string(info.source);
      alert.native_category = std::string(info.native);
      alert.subject = std::string(info.subject_prefix) + std::to_string(number);
      alert.high_importance = info.critical;
      alert.id = std::string(id);
      alert.created_at = world.sim.now();
      checker->on_submitted(alert.id, world.sim.now());
      world.source->send_alert(
          alert,
          [&world, checker, id](const core::DeliveryOutcome& outcome) {
            const std::string id_str(id);
            if (outcome.delivered) {
              checker->on_acked(id_str, outcome.block_used,
                                world.host->alert_log().contains(id_str),
                                outcome.completed_at);
            } else {
              checker->on_failed(id_str, outcome.completed_at);
            }
          });
    });
  }
}

/// Counter keys copied from a component bag into the shard result (see
/// chaos_workload.cc).
void copy_counters_with_prefix(const Counters& from, const std::string& prefix,
                               Counters& into) {
  for (const auto& [name, value] : from.all()) {
    if (name.rfind(prefix, 0) == 0) into.bump(name, value);
  }
}

/// Final-epoch scoring, while the last world is still alive. Mirrors
/// the per-kind scoring of portal_workload / chaos_workload /
/// storm_workload, over the whole run's history (sightings, the
/// checker, and all counter bags span every epoch via WorldState).
ShardResult score_shard(UserWorld& world, const ResumableOptions& o,
                        const ShardTask& task, ShardDriver& d) {
  ShardResult result;

  util::FlatMap<std::string, TimePoint> sent_at;
  util::FlatSet<std::string> critical_ids;
  if (o.kind == ResumeKind::kPortal) {
    sent_at = d.sent_at;
  } else {
    for (std::size_t n = 0; n < d.plan.size(); ++n) {
      std::string id =
          "s" + std::to_string(task.shard_id) + "-" + std::to_string(n);
      if (d.plan[n].stream == kStreamCritical) critical_ids.insert(id);
      sent_at.emplace(std::move(id), d.plan[n].t);
    }
  }

  if (o.kind != ResumeKind::kPortal) {
    // Horizon-time sweep (see chaos_workload.cc): an unresolved alert
    // must be recoverable — in the persistent log or unread in the
    // buddy's mailbox — never silently lost.
    util::FlatSet<std::string> mailbox_ids;
    for (const email::Email& mail :
         world.email_server.mailbox(world.host->email_address())) {
      const auto it = mail.headers.find("alert_id");
      if (it != mail.headers.end()) mailbox_ids.insert(it->second);
    }
    for (const std::string& id : d.checker.unresolved()) {
      if (world.host->alert_log().contains(id) || mailbox_ids.count(id) > 0) {
        d.checker.on_recoverable(id);
      }
    }
    sim::InvariantChecker::LoggedNowMap logged_now;
    for (const auto& [id, submitted] : sent_at) {
      (void)submitted;
      logged_now[id] = world.host->alert_log().contains(id);
    }
    const sim::InvariantChecker::Report report = d.checker.check(&logged_now);
    report.export_to(result.counters);
    if (!report.ok()) {
      result.violation_details = report.describe(world.trace.get());
    }
  }

  result.counters.bump("alerts.sent",
                       static_cast<std::int64_t>(d.plan.size()));
  if (o.kind == ResumeKind::kStorm) {
    result.counters.bump("alerts.critical",
                         static_cast<std::int64_t>(critical_ids.size()));
  }
  std::int64_t delivered = 0;
  std::int64_t critical_delivered = 0;
  std::int64_t duplicates = 0;
  for (const auto& [id, submitted] : sent_at.sorted_items()) {
    const auto seen = world.user->first_seen(id);
    if (!seen) continue;
    ++delivered;
    const double latency = to_seconds(*seen - submitted);
    result.delivery_latency.add(latency);
    result.delivery_histogram.add(latency);
    if (critical_ids.count(id) > 0) {
      ++critical_delivered;
      result.critical_latency.add(latency);
    }
    duplicates += world.user->sightings(id) - 1;
  }
  result.counters.bump("alerts.delivered", delivered);
  if (o.kind == ResumeKind::kStorm) {
    result.counters.bump("alerts.critical_delivered", critical_delivered);
  }
  result.counters.bump(
      "alerts.lost", static_cast<std::int64_t>(d.plan.size()) - delivered);
  result.counters.bump("alerts.duplicates", duplicates);

  if (o.kind == ResumeKind::kPortal) {
    result.counters.merge(d.health);
    result.counters.bump(
        "conservation.invented",
        static_cast<std::int64_t>(world.user->alerts_seen()) - delivered);
  } else {
    copy_counters_with_prefix(world.bus.stats(), "chaos.", result.counters);
    copy_counters_with_prefix(world.bus.stats(), "dropped.chaos",
                              result.counters);
    copy_counters_with_prefix(world.host->stats(), "chaos.", result.counters);
    copy_counters_with_prefix(world.host->stats(), "power_losses",
                              result.counters);
    copy_counters_with_prefix(world.host->alert_log().stats(), "torn_appends",
                              result.counters);
    if (o.kind == ResumeKind::kStorm) {
      const Counters mab_totals = world.host->mab_stats_total();
      copy_counters_with_prefix(mab_totals, "admission.", result.counters);
      copy_counters_with_prefix(mab_totals, "coalesce.", result.counters);
      copy_counters_with_prefix(mab_totals, "inbox.", result.counters);
      copy_counters_with_prefix(mab_totals, "routing.shed", result.counters);
      copy_counters_with_prefix(world.bus.stats(), "pending.shed",
                                result.counters);
    }
  }

  result.events_processed = world.sim.events_processed();
  if (world.trace) result.trace = std::move(*world.trace);
  return result;
}

/// One shard's remaining epochs: rebuild the world (cold or from the
/// carried WorldState), feed it its slice of the plan, run to the
/// boundary (or to horizon + drain on the last epoch), tear down. The
/// checkpoint, when requested, is encoded at the boundary — a pure
/// function of the driver, safe inside the parallel body.
ShardResult run_shard_epochs(const ResumableOptions& o, const ShardTask& task,
                             ShardDriver& d, int ckpt_epoch, bool stop) {
  const TimePoint end = kTimeZero + o.horizon;
  for (std::uint32_t epoch = d.next_epoch;
       epoch < static_cast<std::uint32_t>(o.epochs); ++epoch) {
    UserWorldOptions world_options = o.world;
    world_options.user = "user" + std::to_string(task.shard_id);
    world_options.fault_horizon = o.horizon;
    if (o.kind != ResumeKind::kPortal) {
      world_options.with_source = true;
      world_options.chaos = o.scenario;
      world_options.trace = true;
      world_options.shared_invariants = &d.checker;
    }
    if (o.kind == ResumeKind::kStorm) world_options.storm_config = true;
    world_options.resume = epoch > 0 ? &d.world : nullptr;
    UserWorld world(task.seed, world_options);

    if (epoch == 0) build_plan(world, o, d);

    if (o.kind == ResumeKind::kPortal) {
      world.host->set_alert_observer(
          [&d](const core::Alert& alert, TimePoint) {
            d.sent_at.emplace(alert.id, alert.created_at);
          });
    }
    std::optional<sim::ScopedTask> health_probe;
    if (o.kind == ResumeKind::kPortal) {
      health_probe.emplace(world.sim.every(
          minutes(10),
          [&d, &world] {
            d.health.bump("health.samples");
            if (world.host->healthy()) d.health.bump("health.healthy");
          },
          "fleet.health"));
    }

    const bool last = epoch + 1 == static_cast<std::uint32_t>(o.epochs);
    const TimePoint boundary = last ? end : epoch_boundary(o, epoch + 1);
    schedule_arrivals(world, o, task, d, boundary);
    world.sim.run_until(last ? end + o.drain : boundary);

    // Epoch boundary: every closure holding an arena view has fired
    // (or dies with this world); rewind the id scratch in O(1).
    world.id_arena.reset();

    if (last) return score_shard(world, o, task, d);

    d.world = save_world_state(world);
    d.next_epoch = epoch + 1;
    if (static_cast<int>(epoch) + 1 == ckpt_epoch) {
      d.image = encode_shard(o, task, d);
      if (stop) return ShardResult{};  // the run dies here; only the
                                       // checkpoint image survives
    }
  }
  return ShardResult{};
}

// --- Fleet image ------------------------------------------------------------

std::string encode_fleet(const ResumableOptions& o,
                         const std::vector<ShardDriver>& drivers,
                         std::uint32_t next_epoch) {
  sim::SnapshotWriter w(kFleetImageKind);
  w.begin_section(kSecFleetMeta);
  w.u32(static_cast<std::uint32_t>(o.kind));
  w.u64(o.fleet.base_seed);
  w.u64(drivers.size());
  w.u32(static_cast<std::uint32_t>(o.epochs));
  w.u32(next_epoch);
  w.end_section();
  for (const ShardDriver& d : drivers) {
    w.begin_section(kSecFleetShard);
    w.str(d.image);
    w.end_section();
  }
  return w.finish();
}

Result<std::vector<ShardDriver>> decode_fleet(const ResumableOptions& o,
                                              std::string_view image) {
  sim::SnapshotReader r(image, kFleetImageKind);
  r.enter(kSecFleetMeta);
  const std::uint32_t kind = r.u32();
  const std::uint64_t base_seed = r.u64();
  const std::uint64_t shards = r.u64();
  const std::uint32_t epochs = r.u32();
  const std::uint32_t next_epoch = r.u32();
  r.leave();
  if (!r.ok()) return make_error(r.status().error());
  if (kind != static_cast<std::uint32_t>(o.kind)) {
    return make_error("fleet checkpoint kind mismatch");
  }
  if (base_seed != o.fleet.base_seed || shards != o.fleet.shards) {
    return make_error("fleet checkpoint seed/shard-count mismatch");
  }
  if (epochs != static_cast<std::uint32_t>(o.epochs) || next_epoch == 0 ||
      next_epoch >= epochs) {
    return make_error("fleet checkpoint epoch mismatch");
  }
  std::vector<std::string> blobs;
  for (std::uint64_t i = 0; i < shards && r.ok(); ++i) {
    r.enter(kSecFleetShard);
    blobs.push_back(r.str());
    r.leave();
  }
  const Status status = r.finish();
  if (!status.ok()) return make_error(status.error());

  std::vector<ShardDriver> drivers;
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    const ShardTask task{i, shard_seed(o.fleet.base_seed, i)};
    Result<ShardDriver> decoded = decode_shard(o, task, blobs[i]);
    if (!decoded.ok()) {
      return make_error("shard " + std::to_string(i) + ": " +
                        decoded.error());
    }
    if (decoded.value().next_epoch != next_epoch) {
      return make_error("shard " + std::to_string(i) +
                        ": epoch disagrees with fleet meta");
    }
    drivers.push_back(std::move(decoded).take());
  }
  return drivers;
}

// --- Shared run loop --------------------------------------------------------

ResumableRun run_epochs(const ResumableOptions& o, const ResumeControl& control,
                        Counters* ckpt_stats,
                        std::vector<ShardDriver>& drivers) {
  const bool want_ckpt = control.checkpoint_after_epoch > 0 &&
                         control.checkpoint_after_epoch < o.epochs;
  const int ckpt_epoch = want_ckpt ? control.checkpoint_after_epoch : 0;
  const bool stop = want_ckpt && control.stop_at_checkpoint;

  ResumableRun run;
  FleetReport report = run_fleet(o.fleet, [&](const ShardTask& task) {
    return run_shard_epochs(o, task, drivers[task.shard_id], ckpt_epoch, stop);
  });
  run.completed = !stop;
  if (run.completed) run.report = std::move(report);

  if (want_ckpt) {
    // A resumed run past the requested epoch has no image to cut.
    bool all_cut = !drivers.empty();
    for (const ShardDriver& d : drivers) all_cut = all_cut && !d.image.empty();
    if (all_cut) {
      run.checkpoint =
          encode_fleet(o, drivers, static_cast<std::uint32_t>(ckpt_epoch));
      if (ckpt_stats != nullptr) {
        ckpt_stats->bump("ckpt.saved",
                         static_cast<std::int64_t>(drivers.size()));
        ckpt_stats->bump("ckpt.bytes",
                         static_cast<std::int64_t>(run.checkpoint.size()));
      }
    }
  }
  return run;
}

}  // namespace

ResumableRun run_resumable_fleet(const ResumableOptions& options,
                                 const ResumeControl& control,
                                 Counters* ckpt_stats) {
  std::vector<ShardDriver> drivers(options.fleet.shards);
  return run_epochs(options, control, ckpt_stats, drivers);
}

Result<ResumableRun> resume_fleet(const ResumableOptions& options,
                                  std::string_view image,
                                  const ResumeControl& control,
                                  Counters* ckpt_stats) {
  Result<std::vector<ShardDriver>> decoded = decode_fleet(options, image);
  if (!decoded.ok()) {
    if (ckpt_stats != nullptr) ckpt_stats->bump("ckpt.decode_failed");
    return make_error(decoded.error());
  }
  std::vector<ShardDriver> drivers = std::move(decoded).take();
  if (ckpt_stats != nullptr) {
    ckpt_stats->bump("ckpt.restored",
                     static_cast<std::int64_t>(drivers.size()));
  }
  return run_epochs(options, control, ckpt_stats, drivers);
}

}  // namespace simba::fleet
