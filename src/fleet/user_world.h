// One fleet shard = one user's complete MyAlertBuddy deployment:
// its own Simulator, message infrastructure, buddy host, the human
// endpoint, and (optionally) one SIMBA-library source. Nothing in a
// UserWorld is shared with any other shard, which is what makes the
// fleet embarrassingly parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/mab_host.h"
#include "core/source_endpoint.h"
#include "core/user_endpoint.h"
#include "email/email_server.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "sim/chaos.h"
#include "sim/invariants.h"
#include "sim/simulator.h"
#include "sms/sms.h"
#include "util/arena.h"
#include "util/trace.h"

namespace simba::fleet {

struct WorldState;

/// Delay-model fidelity. Tests want the fast loss-free models of
/// tests/test_world.h; benches want the Section-5-calibrated models of
/// bench/common.cc. Both are reproduced here so src/fleet depends on
/// neither tree.
enum class ModelFidelity { kFast, kCalibrated };

struct UserWorldOptions {
  std::string user = "user";
  ModelFidelity fidelity = ModelFidelity::kCalibrated;
  Duration email_check_interval = minutes(60);
  /// Wire a SourceEndpoint targeting the buddy (the IM-with-ack
  /// followed-by-email path). Without one the shard only receives
  /// legacy portal email.
  bool with_source = false;
  /// Fault plans: IM service outages and session resets, user-away
  /// windows, and a flaky buddy IM client — the conservation-matrix
  /// environment. All derived from the shard seed.
  bool faults = false;
  /// Horizon the fault plans should cover.
  Duration fault_horizon = days(1);
  /// Chaos scenario realized deterministically from the shard seed
  /// over fault_horizon (sim/chaos.h). An empty scenario (no clauses)
  /// injects nothing.
  sim::ChaosScenario chaos;
  /// Builds the per-world InvariantChecker and wires the user's
  /// sighting feed into it. The chaos workload turns this on.
  bool track_invariants = false;
  /// Builds a util::Trace and arms lifecycle tracing in the bus, the
  /// alert log, and every MAB incarnation. Off by default: the portal
  /// scale bench opts in, the chaos workload traces always.
  bool trace = false;
  /// Overload defenses (DESIGN.md §14): token-bucket admission,
  /// semantic coalescing, priority lanes, bounded queues. The all-zero
  /// default disables every defense, leaving pre-storm worlds (and
  /// their golden traces) untouched.
  core::OverloadOptions overload;
  /// Bounds the bus in-flight pool; over-bound sends are shed with
  /// accounting ("pending.shed"). 0 = unbounded.
  std::size_t bus_pending_bound = 0;
  /// Adds the storm category plumbing (Motion → Aladdin/Urgent,
  /// Poll → Portal/Casual) on top of the legacy fleet config. Purely
  /// additive; off keeps the config identical to the pre-storm one.
  bool storm_config = false;
  /// Crash-restart state (fleet/world_state.h) to rebuild this world
  /// around, or null for a cold start. With resume set, construction
  /// re-aligns the kernel clock, restores every persistent component
  /// before its start(), replays the carried trace, and skips fault /
  /// chaos triggers that already fired before the checkpoint (their
  /// sim.at() times would otherwise clamp to the restored clock and
  /// re-fire at epoch start). Must outlive the constructor call only.
  const WorldState* resume = nullptr;
  /// When set, the world's conservation observers feed this external
  /// checker instead of building an own one, letting a multi-epoch
  /// driver track alert conservation across world rebuilds. Overrides
  /// track_invariants; the caller owns the checker's lifetime.
  sim::InvariantChecker* shared_invariants = nullptr;
};

struct UserWorld {
  UserWorld(std::uint64_t seed, const UserWorldOptions& options);

  sim::Simulator sim;
  /// Lifecycle trace; null unless options.trace. Declared before the
  /// components that emit into it so it outlives them all.
  std::unique_ptr<util::Trace> trace;
  /// Per-shard scratch arena (DESIGN.md §13) for per-alert id strings
  /// the workloads build by the thousand. Views stay valid for the
  /// shard's epoch; the workload resets the arena only at the epoch
  /// boundary (after the drain), when every closure that captured a
  /// view has fired. Declared before the bus and components so it
  /// outlives anything that could hold a view.
  util::BumpArena id_arena;
  net::MessageBus bus;
  im::ImServer im_server;
  email::EmailServer email_server;
  sms::SmsGateway sms_gateway;
  /// Realized chaos schedule; null when options.chaos is empty.
  std::unique_ptr<sim::ChaosPlan> chaos_plan;
  /// Conservation tracker; null unless options.track_invariants.
  std::unique_ptr<sim::InvariantChecker> invariants;
  std::unique_ptr<core::UserEndpoint> user;
  std::unique_ptr<core::MabHost> host;
  std::unique_ptr<core::SourceEndpoint> source;  // null unless with_source
};

}  // namespace simba::fleet
