// The storm workload run inside one fleet shard (experiment E12).
//
// A storm is correlated overload: Aladdin home sensors cascading
// (one motion event trips many sensors within seconds) and legacy
// proxy pollers bursting (a poll cycle finds many changed pages at
// once), stacked on the normal background and a sparse stream of
// high-importance critical alerts. The shard replays that mix against
// one user's MyAlertBuddy deployment and scores what the overload
// defenses (DESIGN.md §14) protect: the critical alerts' delivery
// latency, and the extended conservation identity
//
//   submitted = delivered + failed + shed + coalesced + in-flight
//
// with every shed and coalesce accounted and traced. Everything is a
// pure function of the shard seed, so the defended and undefended
// configurations are comparable burst for burst.
#pragma once

#include <string>

#include "core/mab.h"
#include "fleet/fleet.h"
#include "fleet/user_world.h"
#include "sim/chaos.h"

namespace simba::fleet {

/// The standard defended configuration: per-user and per-source
/// token-bucket admission, semantic coalescing into digests, strict
/// priority lanes, and bounded queues everywhere.
core::OverloadOptions storm_defenses();

/// The ablation control: identical engine concurrency, but a single
/// unbounded FIFO lane, no admission control, and no coalescing —
/// critical alerts wait behind the whole storm backlog.
core::OverloadOptions storm_no_defenses();

struct StormWorkloadOptions {
  UserWorldOptions world;
  /// Optional fault mix realized from the shard seed (storm_crash is
  /// the designed companion). An empty scenario injects nothing.
  sim::ChaosScenario scenario;
  Duration horizon = hours(4);
  /// Extra virtual time so queued deliveries, digest flushes, and
  /// recovery replays land before the invariants are scored.
  Duration drain = hours(2);

  /// Poisson floor of ordinary "src" alerts (per day).
  double background_per_day = 48.0;
  /// Sparse high-importance stream (per day) whose p99 latency the
  /// defenses exist to protect.
  double critical_per_day = 96.0;

  /// Correlated Aladdin sensor cascades: each cascade fires
  /// `cascade_size` alerts spread over ~`cascade_spread`.
  int sensor_cascades = 6;
  int cascade_size = 40;
  Duration cascade_spread = seconds(20);

  /// Proxy poll bursts: each burst fires `burst_size` alerts spread
  /// over ~`burst_spread`.
  int poll_bursts = 4;
  int burst_size = 60;
  Duration burst_spread = seconds(45);
};

/// Builds one storm UserWorld from the shard seed, replays the storm,
/// scores the InvariantChecker at horizon, and reports. On top of the
/// chaos-workload counter set it emits:
///   alerts.critical           — critical alerts submitted
///   invariant.shed/coalesced  — terminal overload outcomes
///   admission.* / coalesce.* / inbox.* / routing.* — MAB-side
///     overload accounting, aggregated across incarnations
///   pending.shed        — bus transport sheds
/// and fills ShardResult::critical_latency alongside the usual
/// delivery statistics.
ShardResult run_storm_shard(const ShardTask& task,
                            const StormWorkloadOptions& options);

}  // namespace simba::fleet
