#include "fleet/storm_workload.h"

#include <algorithm>
#include "util/flat_map.h"
#include <string>
#include <string_view>

#include "util/arena.h"

namespace simba::fleet {

core::OverloadOptions storm_defenses() {
  core::OverloadOptions o;
  // Admission sized for the legitimate load (background + criticals,
  // well under 0.01/s) with enough burst to ride out small clumps;
  // storm cascades blow through and coalesce.
  o.per_user.rate_per_sec = 0.5;
  o.per_user.burst = 30.0;
  o.per_source.rate_per_sec = 0.25;
  o.per_source.burst = 15.0;
  o.coalesce_enabled = true;
  o.coalesce.window = seconds(30);
  o.coalesce.max_batch = 100;
  o.coalesce.representatives = 3;
  o.inbox_bound = 64;
  o.engine.max_concurrent = 4;
  o.engine.lane_bound = 64;
  o.engine.priority_lanes = true;
  return o;
}

core::OverloadOptions storm_no_defenses() {
  core::OverloadOptions o;
  // Same delivery concurrency, no protection: one unbounded FIFO lane,
  // every storm alert admitted. The comparison isolates the defenses.
  o.engine.max_concurrent = 4;
  o.engine.lane_bound = 0;
  o.engine.priority_lanes = false;
  return o;
}

namespace {

/// Counter keys copied from a component bag into the shard result (see
/// chaos_workload.cc), so overload accounting and chaos sanity checks
/// survive into the merged report.
void copy_counters_with_prefix(const Counters& from, const std::string& prefix,
                               Counters& into) {
  for (const auto& [name, value] : from.all()) {
    if (name.rfind(prefix, 0) == 0) into.bump(name, value);
  }
}

}  // namespace

ShardResult run_storm_shard(const ShardTask& task,
                            const StormWorkloadOptions& options) {
  ShardResult result;

  UserWorldOptions world_options = options.world;
  world_options.user = "user" + std::to_string(task.shard_id);
  world_options.with_source = true;
  world_options.storm_config = true;
  world_options.fault_horizon = options.horizon;
  world_options.chaos = options.scenario;
  world_options.track_invariants = true;
  // Always traced, as in the chaos workload: a violation must print
  // the offending alert's lifecycle, and tracing consumes no
  // randomness and schedules no events.
  world_options.trace = true;
  UserWorld world(task.seed, world_options);
  sim::InvariantChecker& checker = *world.invariants;

  util::FlatMap<std::string, TimePoint> sent_at;
  util::FlatSet<std::string> critical_ids;
  Rng rng = world.sim.make_rng("storm.load");
  const TimePoint start = world.sim.now();
  const TimePoint end = kTimeZero + options.horizon;
  std::int64_t sent = 0;

  // Schedules one submission at t. `source`/`native` are string
  // literals, so closures capture pointers; ids live in the shard's
  // bump arena until the epoch boundary after the drain.
  auto submit_at = [&](TimePoint t, const char* source, const char* native,
                       bool critical) {
    const std::int64_t alert_number = sent++;
    char shard_buf[20];
    char number_buf[20];
    const std::string_view id = world.id_arena.concat(
        {"s", util::format_u64(task.shard_id, shard_buf), "-",
         util::format_u64(static_cast<std::uint64_t>(alert_number),
                          number_buf)});
    sent_at.emplace(id, t);
    if (critical) critical_ids.emplace(id);
    world.sim.at(t, [&world, &checker, id, source, native, critical,
                     alert_number] {
      core::Alert alert;
      // std::string rvalues: sidestep a GCC 12 -Werror=restrict false
      // positive on the const char* assign path at -O2.
      alert.source = std::string(source);
      alert.native_category = std::string(native);
      alert.subject = "storm alert " + std::to_string(alert_number);
      alert.high_importance = critical;
      alert.id = std::string(id);
      alert.created_at = world.sim.now();
      checker.on_submitted(alert.id, world.sim.now());
      world.source->send_alert(
          alert, [&world, &checker, id](const core::DeliveryOutcome& outcome) {
            const std::string id_str(id);
            if (outcome.delivered) {
              checker.on_acked(id_str, outcome.block_used,
                               world.host->alert_log().contains(id_str),
                               outcome.completed_at);
            } else {
              checker.on_failed(id_str, outcome.completed_at);
            }
          });
    });
  };

  // Pre-schedule every stream from the dedicated "storm.load" stream,
  // in a fixed order, so the storm shape is a pure function of the
  // shard seed.
  // 1. Background floor: ordinary library alerts on the legacy path.
  if (options.background_per_day > 0.0) {
    const Duration mean_gap{static_cast<std::int64_t>(
        86400.0 / options.background_per_day * 1e6)};
    TimePoint t = start;
    while (true) {
      t += rng.exponential_duration(mean_gap);
      if (t >= end) break;
      submit_at(t, "src", "K", /*critical=*/false);
    }
  }
  // 2. Critical stream: sparse, high-importance, admission-exempt.
  if (options.critical_per_day > 0.0) {
    const Duration mean_gap{static_cast<std::int64_t>(
        86400.0 / options.critical_per_day * 1e6)};
    TimePoint t = start;
    while (true) {
      t += rng.exponential_duration(mean_gap);
      if (t >= end) break;
      submit_at(t, "aladdin", "Motion", /*critical=*/true);
    }
  }
  // 3. Aladdin sensor cascades: one trigger, many sensors, seconds
  // apart — the correlated burst admission control exists for.
  for (int c = 0; c < options.sensor_cascades; ++c) {
    TimePoint t = start + rng.uniform_duration(Duration::zero(), end - start);
    const Duration mean_gap{static_cast<std::int64_t>(
        to_seconds(options.cascade_spread) /
        std::max(1, options.cascade_size) * 1e6)};
    for (int i = 0; i < options.cascade_size; ++i) {
      if (i > 0) t += rng.exponential_duration(mean_gap);
      if (t >= end) break;
      submit_at(t, "aladdin", "Motion", /*critical=*/false);
    }
  }
  // 4. Proxy poll bursts: a poll cycle finds many changed pages.
  for (int b = 0; b < options.poll_bursts; ++b) {
    TimePoint t = start + rng.uniform_duration(Duration::zero(), end - start);
    const Duration mean_gap{static_cast<std::int64_t>(
        to_seconds(options.burst_spread) / std::max(1, options.burst_size) *
        1e6)};
    for (int i = 0; i < options.burst_size; ++i) {
      if (i > 0) t += rng.exponential_duration(mean_gap);
      if (t >= end) break;
      submit_at(t, "proxy", "Poll", /*critical=*/false);
    }
  }

  world.sim.run_until(end + options.drain);

  // Epoch boundary: every closure holding an arena view has fired (or
  // will never run); rewind the id scratch in O(1).
  world.id_arena.reset();

  // --- Horizon-time sweep (see chaos_workload.cc) ---------------------------
  // An unresolved alert must be recoverable: in the persistent log or
  // unread in the buddy's mailbox. Shed and coalesced alerts are
  // terminal and never reach this sweep.
  util::FlatSet<std::string> mailbox_ids;
  for (const email::Email& mail :
       world.email_server.mailbox(world.host->email_address())) {
    const auto it = mail.headers.find("alert_id");
    if (it != mail.headers.end()) mailbox_ids.insert(it->second);
  }
  for (const std::string& id : checker.unresolved()) {
    if (world.host->alert_log().contains(id) || mailbox_ids.count(id) > 0) {
      checker.on_recoverable(id);
    }
  }
  sim::InvariantChecker::LoggedNowMap logged_now;
  for (const auto& [id, submitted] : sent_at) {
    (void)submitted;
    logged_now[id] = world.host->alert_log().contains(id);
  }
  const sim::InvariantChecker::Report report = checker.check(&logged_now);
  report.export_to(result.counters);
  if (!report.ok()) {
    result.violation_details = report.describe(world.trace.get());
  }

  // Delivery scoring, plus the critical-alert latency the defenses
  // protect. Deterministic sorted_items() order, like the other
  // workloads.
  result.counters.bump("alerts.sent", sent);
  result.counters.bump("alerts.critical",
                       static_cast<std::int64_t>(critical_ids.size()));
  std::int64_t delivered = 0;
  std::int64_t critical_delivered = 0;
  std::int64_t duplicates = 0;
  for (const auto& [id, submitted] : sent_at.sorted_items()) {
    const auto seen = world.user->first_seen(id);
    if (!seen) continue;
    ++delivered;
    const double latency = to_seconds(*seen - submitted);
    result.delivery_latency.add(latency);
    result.delivery_histogram.add(latency);
    if (critical_ids.count(id) > 0) {
      ++critical_delivered;
      result.critical_latency.add(latency);
    }
    duplicates += world.user->sightings(id) - 1;
  }
  result.counters.bump("alerts.delivered", delivered);
  result.counters.bump("alerts.critical_delivered", critical_delivered);
  result.counters.bump("alerts.lost", sent - delivered);
  result.counters.bump("alerts.duplicates", duplicates);

  // Overload accounting, aggregated across MAB incarnations, plus the
  // transport sheds and any chaos that was injected.
  const Counters mab_totals = world.host->mab_stats_total();
  copy_counters_with_prefix(mab_totals, "admission.", result.counters);
  copy_counters_with_prefix(mab_totals, "coalesce.", result.counters);
  copy_counters_with_prefix(mab_totals, "inbox.", result.counters);
  copy_counters_with_prefix(mab_totals, "routing.shed", result.counters);
  copy_counters_with_prefix(world.bus.stats(), "pending.shed", result.counters);
  copy_counters_with_prefix(world.bus.stats(), "chaos.", result.counters);
  copy_counters_with_prefix(world.host->stats(), "chaos.", result.counters);

  result.events_processed = world.sim.events_processed();
  if (world.trace) result.trace = std::move(*world.trace);
  return result;
}

}  // namespace simba::fleet
