#include "fleet/chaos_workload.h"

#include "util/flat_map.h"
#include <string>
#include <string_view>

#include "util/arena.h"

namespace simba::fleet {

namespace {

/// Chaos-relevant counter keys copied from a component bag into the
/// shard result, so scenario sanity checks and the merged report can
/// see how much adversity was actually injected.
void copy_counters_with_prefix(const Counters& from, const std::string& prefix,
                               Counters& into) {
  for (const auto& [name, value] : from.all()) {
    if (name.rfind(prefix, 0) == 0) into.bump(name, value);
  }
}

}  // namespace

ShardResult run_chaos_shard(const ShardTask& task,
                            const ChaosWorkloadOptions& options) {
  ShardResult result;

  UserWorldOptions world_options = options.world;
  world_options.user = "user" + std::to_string(task.shard_id);
  world_options.with_source = true;
  world_options.fault_horizon = options.horizon;
  world_options.chaos = options.scenario;
  world_options.track_invariants = true;
  // Always traced: a violated invariant must be able to print the
  // offending alert's full lifecycle, and traces consume no randomness
  // and schedule no events, so the counters are unchanged either way.
  world_options.trace = true;
  UserWorld world(task.seed, world_options);
  sim::InvariantChecker& checker = *world.invariants;

  // One alert day against the chaos schedule: Poisson arrivals,
  // pre-scheduled, every submission and outcome fed to the checker.
  util::FlatMap<std::string, TimePoint> sent_at;
  Rng rng = world.sim.make_rng("chaos.load");
  const TimePoint end = kTimeZero + options.horizon;
  const Duration mean_gap{static_cast<std::int64_t>(
      86400.0 / options.alerts_per_user_day * 1e6)};
  std::int64_t sent = 0;
  TimePoint t = world.sim.now();
  while (true) {
    t += rng.exponential_duration(mean_gap);
    if (t >= end) break;
    const std::int64_t alert_number = sent++;
    // Ids live in the shard's bump arena (see portal_workload.cc):
    // closures capture 16-byte views, and the arena rewinds in one
    // step at the epoch boundary below.
    char shard_buf[20];
    char number_buf[20];
    const std::string_view id = world.id_arena.concat(
        {"s", util::format_u64(task.shard_id, shard_buf), "-",
         util::format_u64(static_cast<std::uint64_t>(alert_number),
                          number_buf)});
    sent_at.emplace(id, t);
    world.sim.at(t, [&world, &checker, id, alert_number] {
      core::Alert alert;
      // std::string rvalues: sidestep a GCC 12 -Werror=restrict
      // false positive on the const char* assign path at -O2.
      alert.source = std::string("src");
      alert.native_category = std::string("K");
      alert.subject = "chaos alert " + std::to_string(alert_number);
      alert.id = std::string(id);
      alert.created_at = world.sim.now();
      checker.on_submitted(alert.id, world.sim.now());
      world.source->send_alert(
          alert, [&world, &checker, id](const core::DeliveryOutcome& outcome) {
            const std::string id_str(id);
            if (outcome.delivered) {
              // Probe the pessimistic log at the instant the source
              // learns of success: log-before-ack demands the record
              // is already on disk for a primary-leg (block 0) ack.
              checker.on_acked(id_str, outcome.block_used,
                               world.host->alert_log().contains(id_str),
                               outcome.completed_at);
            } else {
              checker.on_failed(id_str, outcome.completed_at);
            }
          });
    });
  }

  world.sim.run_until(end + options.drain);

  // Epoch boundary: every closure holding an arena view has fired (or
  // will never run); rewind the id scratch in O(1).
  world.id_arena.reset();

  // --- Horizon-time sweep ---------------------------------------------------
  // An alert with no terminal state must still be *recoverable*: in
  // the persistent log (the restart scan will process it) or sitting
  // unread in the buddy's mailbox (the next email pump will). Anything
  // else has been silently lost — the violation the paper's whole
  // architecture exists to prevent.
  util::FlatSet<std::string> mailbox_ids;
  for (const email::Email& mail :
       world.email_server.mailbox(world.host->email_address())) {
    const auto it = mail.headers.find("alert_id");
    if (it != mail.headers.end()) mailbox_ids.insert(it->second);
  }
  for (const std::string& id : checker.unresolved()) {
    if (world.host->alert_log().contains(id) || mailbox_ids.count(id) > 0) {
      checker.on_recoverable(id);
    }
  }
  // Acked-as-logged records must still be present now (a torn append
  // can only ever hit an unacked record).
  sim::InvariantChecker::LoggedNowMap logged_now;
  for (const auto& [id, submitted] : sent_at) {
    (void)submitted;
    logged_now[id] = world.host->alert_log().contains(id);
  }
  const sim::InvariantChecker::Report report = checker.check(&logged_now);
  report.export_to(result.counters);
  if (!report.ok()) {
    result.violation_details = report.describe(world.trace.get());
  }

  // Portal-style delivery scoring, same deterministic sorted order.
  result.counters.bump("alerts.sent", sent);
  std::int64_t delivered = 0;
  std::int64_t duplicates = 0;
  for (const auto& [id, submitted] : sent_at.sorted_items()) {
    const auto seen = world.user->first_seen(id);
    if (!seen) continue;
    ++delivered;
    const double latency = to_seconds(*seen - submitted);
    result.delivery_latency.add(latency);
    result.delivery_histogram.add(latency);
    duplicates += world.user->sightings(id) - 1;
  }
  result.counters.bump("alerts.delivered", delivered);
  result.counters.bump("alerts.lost", sent - delivered);
  result.counters.bump("alerts.duplicates", duplicates);

  // How much chaos actually bit, for scenario sanity checks.
  copy_counters_with_prefix(world.bus.stats(), "chaos.", result.counters);
  copy_counters_with_prefix(world.bus.stats(), "dropped.chaos",
                            result.counters);
  copy_counters_with_prefix(world.host->stats(), "chaos.", result.counters);
  copy_counters_with_prefix(world.host->stats(), "power_losses",
                            result.counters);
  copy_counters_with_prefix(world.host->alert_log().stats(), "torn_appends",
                            result.counters);

  result.events_processed = world.sim.events_processed();
  if (world.trace) result.trace = std::move(*world.trace);
  return result;
}

}  // namespace simba::fleet
