// The portal-day workload run inside one fleet shard (experiment E9).
//
// Each shard replays one user's slice of the paper's portal trace —
// Poisson arrivals at 778k/225k ≈ 3.46 alerts/user/day — through that
// user's own MyAlertBuddy world, then scores delivery, loss,
// duplicates, and the conservation invariants from inside the shard
// (while the world is still alive) into the ShardResult counters.
#pragma once

#include "fleet/fleet.h"
#include "fleet/user_world.h"

namespace simba::fleet {

enum class Traffic {
  /// Legacy portal mail straight to the buddy's mailbox (the intro's
  /// email-only services); the MAB classifies by sender display name.
  kPortalEmail,
  /// A SIMBA-library source: IM-with-acknowledgement followed by email,
  /// with source-side ack outcomes — enables the log-before-ack check.
  kSourceIm,
};

struct PortalWorkloadOptions {
  UserWorldOptions world;
  Traffic traffic = Traffic::kPortalEmail;
  double alerts_per_user_day = 778000.0 / 225000.0;
  Duration horizon = days(1);
  /// Extra virtual time after the last arrival so email tails land.
  Duration drain = hours(6);
};

/// Builds one UserWorld from the shard seed, replays the portal day,
/// and reports. Counters emitted (all deterministic per seed):
///   alerts.sent / alerts.delivered / alerts.lost / alerts.duplicates
///   conservation.invented      — user sightings with no matching send
///   conservation.ack_unlogged  — IM-leg acks missing from the alert
///                                log (kSourceIm only; must stay 0)
///   health.samples / health.healthy — periodic MAB availability probe
ShardResult run_portal_shard(const ShardTask& task,
                             const PortalWorkloadOptions& options);

}  // namespace simba::fleet
