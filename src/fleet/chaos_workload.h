// The chaos-matrix workload run inside one fleet shard (experiment
// E10).
//
// Each shard is one user's complete MyAlertBuddy deployment living
// through one chaos scenario: a SIMBA-library source submits alerts on
// the IM-with-ack-then-email path while the ChaosPlan duplicates,
// reorders, delays, and drops messages, kills and hangs the daemon,
// reboots and power-cycles the machine, and tears unsynced log
// appends. The per-world InvariantChecker follows every alert from
// submit to its terminal state and the shard exports the conservation
// report through the ShardResult counters — so `run_fleet` can sweep a
// scenario x seed matrix whose merged `correctness_json()` is
// bit-identical for any thread count.
#pragma once

#include <string>

#include "fleet/fleet.h"
#include "fleet/user_world.h"
#include "sim/chaos.h"

namespace simba::fleet {

struct ChaosWorkloadOptions {
  UserWorldOptions world;
  /// The fault mix; ChaosScenario::presets() is the standard matrix.
  sim::ChaosScenario scenario;
  /// Dense enough that every fault window has traffic to bite.
  double alerts_per_user_day = 72.0;
  Duration horizon = hours(8);
  /// Extra virtual time so fallback email tails and watchdog-driven
  /// recovery land before the invariants are scored.
  Duration drain = hours(2);
};

/// Builds one chaos UserWorld from the shard seed, replays the alert
/// day, scores the InvariantChecker at horizon, and reports. Counters
/// emitted on top of the portal set:
///   invariant.submitted / delivered / failed / in_flight / ...
///   invariant.violations.* — every key must stay 0 (asserted by
///                            tests/chaos_test.cc per shard and merged)
///   chaos.* — per-fault injection counts, for scenario sanity checks
ShardResult run_chaos_shard(const ShardTask& task,
                            const ChaosWorkloadOptions& options);

}  // namespace simba::fleet
