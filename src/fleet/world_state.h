// The persistent state of one UserWorld across a crash-restart.
//
// A checkpoint (sim/snapshot.h) models a simulator process image that
// died: pending kernel events and in-flight messages are gone, and the
// next epoch rebuilds a fresh UserWorld around what would genuinely
// survive a machine restart in the paper's deployment — the
// pessimistic alert log, the digest store, open coalescing windows,
// server-side mailboxes, the user's sighting memory, and the counter
// bags. WorldState is exactly that surviving set, plus the kernel
// clock alignment (now / events_processed / sequence counter) that
// keeps a resumed run's statistics and FIFO ordering monotonic with
// its past.
//
// Equivalence contract (tests/resume_test.cc): a run that carries
// WorldState in memory across its epoch boundaries and a run that
// encodes it to a snapshot image at epoch k, dies, and decodes it in a
// fresh process must produce byte-identical traces and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mab_host.h"
#include "core/user_endpoint.h"
#include "email/email_server.h"
#include "util/stats.h"
#include "util/time.h"

namespace simba::fleet {

struct UserWorld;

/// One trace span carried across an epoch boundary. Spans inside a
/// live util::Trace point at interned label storage; across a rebuild
/// the labels travel as plain strings and are re-interned on replay
/// (Trace::emit_owned).
struct CarriedSpan {
  std::string alert_id;
  std::string component;
  std::string stage;
  TimePoint start{};
  TimePoint end{};
  std::string detail;
};

struct WorldState {
  // --- Kernel clock ----------------------------------------------------------
  TimePoint now{};
  std::uint64_t events_processed = 0;
  std::uint64_t sequence_counter = 1;

  // --- Component state -------------------------------------------------------
  core::MabHost::State host;
  core::UserEndpoint::State user;
  email::EmailServer::State email;
  Counters bus_stats;

  // --- Accumulated trace -----------------------------------------------------
  /// Every span emitted before the boundary, in emission order (empty
  /// when the world ran untraced).
  std::vector<CarriedSpan> trace;
};

/// Captures the persistent state of a world at its current virtual
/// instant. Call at an epoch boundary, after the workload's drain,
/// while the world is still alive.
WorldState save_world_state(const UserWorld& world);

}  // namespace simba::fleet
