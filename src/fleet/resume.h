// Resumable multi-epoch fleet runs: deterministic world checkpoint /
// restore, proven by the resume-equivalence matrix (tests/resume_test.cc,
// DESIGN.md §15).
//
// A resumable run divides its horizon into epochs. Every epoch — in
// every run, resumed or not — tears the per-shard UserWorld down at the
// boundary and rebuilds it from the persistent WorldState
// (fleet/world_state.h): pending kernel events and in-flight messages
// die, exactly as in a machine restart, and recovery flows through the
// paper's own path (pessimistic-log replay on the next MAB start). The
// boundary is therefore a *planned crash-restart* — the simulator
// sibling of the paper's nightly software rejuvenation — and because
// the baseline run crosses the same boundaries, carrying WorldState in
// memory, the equivalence proof reduces to:
//
//   run A (carry state in memory across all boundaries)
//     ==  run B (encode state to a snapshot image at epoch k, stop)
//       + run C (decode the image in a fresh process, run to the end)
//
// byte-for-byte: identical correctness_json() and identical JSONL
// traces, across seeds x checkpoint epochs x {portal, chaos, storm}
// workloads, serial == threaded. The checkpoint itself is the new
// chaos dimension: a simulator crash-restart at an arbitrary epoch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fleet/fleet.h"
#include "fleet/user_world.h"
#include "sim/chaos.h"
#include "util/result.h"
#include "util/stats.h"

namespace simba::fleet {

/// Which workload family the resumable driver replays. The traffic
/// plans mirror portal_workload / chaos_workload / storm_workload; the
/// whole arrival schedule is realized up front from the shard seed
/// (epoch 0) and carried as data, so a resumed run never re-draws it.
enum class ResumeKind : std::uint32_t {
  kPortal = 1,  // legacy portal mail straight to the buddy's mailbox
  kChaos = 2,   // SIMBA-library source under a chaos scenario
  kStorm = 3,   // correlated overload (cascades + bursts + criticals)
};

const char* to_string(ResumeKind kind);

struct ResumableOptions {
  ResumeKind kind = ResumeKind::kChaos;
  /// Base world knobs (fidelity, overload, tracing, ...). The driver
  /// overrides the per-kind plumbing (source, storm config, chaos
  /// scenario, shared invariant checker) itself.
  UserWorldOptions world;
  /// Fault mix for kChaos / kStorm, realized per shard seed.
  sim::ChaosScenario scenario;
  FleetOptions fleet;

  // --- Run shape -------------------------------------------------------------
  Duration horizon = hours(8);
  /// Extra virtual time after the last arrival window (final epoch
  /// only) so email tails, digest flushes, and recovery replays land.
  Duration drain = hours(2);
  /// Number of equal arrival windows; boundaries at horizon * i/epochs.
  int epochs = 4;
  /// No arrivals land this close before an interior boundary, so
  /// source-side deliveries resolve before the world is torn down —
  /// the quiesce window of a planned restart.
  Duration boundary_gap = minutes(15);

  // --- Traffic (kPortal / kChaos) --------------------------------------------
  double alerts_per_user_day = 72.0;

  // --- Storm shape (kStorm), mirroring StormWorkloadOptions -----------------
  double background_per_day = 48.0;
  double critical_per_day = 96.0;
  int sensor_cascades = 6;
  int cascade_size = 40;
  Duration cascade_spread = seconds(20);
  int poll_bursts = 4;
  int burst_size = 60;
  Duration burst_spread = seconds(45);
};

struct ResumeControl {
  /// Cut a checkpoint image once this many epochs have completed
  /// (1 <= k < epochs). 0 = never checkpoint.
  int checkpoint_after_epoch = 0;
  /// Kill the run at the checkpoint instead of continuing — the "B"
  /// half of the equivalence matrix. The report of a stopped run is
  /// meaningless; only the checkpoint image survives.
  bool stop_at_checkpoint = false;
};

struct ResumableRun {
  /// True when the run reached horizon + drain; false when it was
  /// stopped at a checkpoint.
  bool completed = false;
  /// The merged fleet report; valid only when completed.
  FleetReport report;
  /// The fleet checkpoint image; non-empty when a checkpoint was cut.
  std::string checkpoint;
};

/// Runs the whole resumable fleet from epoch 0. `ckpt_stats` (nullable)
/// receives the ckpt.* accounting — saved/restored images, bytes — and
/// is bumped outside the parallel shard bodies so it never perturbs the
/// deterministic report.
ResumableRun run_resumable_fleet(const ResumableOptions& options,
                                 const ResumeControl& control = {},
                                 Counters* ckpt_stats = nullptr);

/// Restores a fleet checkpoint produced by run_resumable_fleet (with
/// the same options) into fresh worlds and runs it to completion. Any
/// malformed image — truncated, bit-flipped, version-skewed, reordered,
/// or cut from mismatched options — yields a clean error, never UB.
Result<ResumableRun> resume_fleet(const ResumableOptions& options,
                                  std::string_view image,
                                  const ResumeControl& control = {},
                                  Counters* ckpt_stats = nullptr);

}  // namespace simba::fleet
