#include "net/bus.h"

#include <algorithm>

#include "util/log.h"

namespace simba::net {

namespace {
std::pair<std::string, std::string> ordered(const std::string& a,
                                            const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

MessageBus::MessageBus(sim::Simulator& sim)
    : sim_(sim), rng_(sim.make_rng("net.bus")) {}

void MessageBus::attach(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
}

void MessageBus::detach(const std::string& address) {
  endpoints_.erase(address);
}

bool MessageBus::attached(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

void MessageBus::set_link(const std::string& from, const std::string& to,
                          LinkModel model) {
  links_[{from, to}] = model;
}

void MessageBus::partition(const std::string& a, const std::string& b) {
  partitions_[ordered(a, b)]++;
}

void MessageBus::heal(const std::string& a, const std::string& b) {
  const auto key = ordered(a, b);
  const auto it = partitions_.find(key);
  if (it == partitions_.end()) return;
  if (--it->second <= 0) partitions_.erase(it);
}

bool MessageBus::partitioned(const std::string& a,
                             const std::string& b) const {
  return partitions_.count(ordered(a, b)) > 0;
}

const LinkModel& MessageBus::link_for(const std::string& from,
                                      const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

std::uint64_t MessageBus::send(Message message) {
  message.id = next_id_++;
  message.sent_at = sim_.now();
  stats_.bump("sent");

  if (partitioned(message.from, message.to)) {
    stats_.bump("dropped.partition");
    log_debug("net", "partition drop " + message.from + " -> " + message.to);
    return message.id;
  }
  const LinkModel& link = link_for(message.from, message.to);
  if (rng_.chance(link.loss_probability)) {
    stats_.bump("dropped.loss");
    log_debug("net", "loss drop " + message.from + " -> " + message.to);
    return message.id;
  }
  const Duration latency = link.sample_latency(rng_);
  const std::uint64_t id = message.id;
  sim_.after(
      latency,
      [this, message = std::move(message)] {
        // Partition state and endpoint liveness are re-checked at arrival
        // time: a link that failed mid-flight loses the message.
        if (partitioned(message.from, message.to)) {
          stats_.bump("dropped.partition");
          return;
        }
        const auto it = endpoints_.find(message.to);
        if (it == endpoints_.end()) {
          stats_.bump("dropped.unreachable");
          log_debug("net", "no endpoint " + message.to);
          return;
        }
        stats_.bump("delivered");
        it->second(message);
      },
      "net.deliver:" + message.type);
  return id;
}

}  // namespace simba::net
