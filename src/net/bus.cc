#include "net/bus.h"

#include <algorithm>

#include "util/log.h"

namespace simba::net {

namespace {
std::pair<std::string, std::string> ordered(const std::string& a,
                                            const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

MessageBus::MessageBus(sim::Simulator& sim)
    : sim_(sim), rng_(sim.make_rng("net.bus")) {}

void MessageBus::attach(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
  detached_.erase(address);
}

void MessageBus::detach(const std::string& address) {
  if (endpoints_.erase(address) > 0) detached_.insert(address);
}

bool MessageBus::attached(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

void MessageBus::set_link(const std::string& from, const std::string& to,
                          LinkModel model) {
  links_[{from, to}] = model;
}

void MessageBus::partition(const std::string& a, const std::string& b) {
  partitions_[ordered(a, b)]++;
}

void MessageBus::heal(const std::string& a, const std::string& b) {
  const auto key = ordered(a, b);
  const auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    // Never partitioned (or already fully healed): a no-op, so the
    // nesting count cannot underflow into a permanently-severed link.
    stats_.bump("heal.unmatched");
    return;
  }
  if (--it->second <= 0) partitions_.erase(it);
}

void MessageBus::set_chaos(const sim::NetChaosConfig& config, Rng rng) {
  chaos_ = config;
  chaos_rng_.emplace(std::move(rng));
}

bool MessageBus::partitioned(const std::string& a,
                             const std::string& b) const {
  return partitions_.count(ordered(a, b)) > 0;
}

const LinkModel& MessageBus::link_for(const std::string& from,
                                      const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

std::uint64_t MessageBus::send(Message message) {
  message.id = next_id_++;
  message.sent_at = sim_.now();
  stats_.bump("sent");

  if (partitioned(message.from, message.to)) {
    stats_.bump("dropped.partition");
    log_debug("net", "partition drop " + message.from + " -> " + message.to);
    return message.id;
  }
  const LinkModel& link = link_for(message.from, message.to);
  if (rng_.chance(link.loss_probability)) {
    stats_.bump("dropped.loss");
    log_debug("net", "loss drop " + message.from + " -> " + message.to);
    return message.id;
  }
  Duration latency = link.sample_latency(rng_);
  const std::uint64_t id = message.id;

  // Chaos message faults (sim/chaos.h). All dice roll on the dedicated
  // chaos stream, in a fixed order, so a chaos world's benign stream
  // stays aligned with its control's.
  bool late_loss = false;
  if (chaos_rng_ && chaos_.any()) {
    const TimePoint now = sim_.now();
    if (chaos_.delay_spike.active_at(now) &&
        chaos_rng_->chance(chaos_.delay_spike.probability)) {
      latency += chaos_rng_->lognormal_duration(chaos_.delay_spike.magnitude,
                                                chaos_.delay_spike.sigma);
      stats_.bump("chaos.delay_spike");
    }
    if (chaos_.reorder.active_at(now) &&
        chaos_rng_->chance(chaos_.reorder.probability)) {
      // Reordering via delay: holding this message back lets later
      // sends on the link overtake it.
      latency += chaos_rng_->uniform_duration(Duration::zero(),
                                              chaos_.reorder.magnitude);
      stats_.bump("chaos.reorder");
    }
    if (chaos_.late_loss.active_at(now) &&
        chaos_rng_->chance(chaos_.late_loss.probability)) {
      late_loss = true;  // dies at arrival time, not now
    }
    if (chaos_.duplicate.active_at(now) &&
        chaos_rng_->chance(chaos_.duplicate.probability)) {
      // At-least-once transport: a second arrival of the same message
      // (same id) with its own independently-sampled latency.
      stats_.bump("chaos.duplicate");
      schedule_delivery(message, link.sample_latency(*chaos_rng_),
                        /*chaos_late_loss=*/false);
    }
  }
  schedule_delivery(std::move(message), latency, late_loss);
  return id;
}

void MessageBus::schedule_delivery(Message message, Duration latency,
                                   bool chaos_late_loss) {
  const std::string label = "net.deliver:" + message.type;
  sim_.after(
      latency,
      [this, message = std::move(message), chaos_late_loss] {
        // Partition state and endpoint liveness are re-checked at arrival
        // time: a link that failed mid-flight loses the message.
        if (partitioned(message.from, message.to)) {
          stats_.bump("dropped.partition");
          return;
        }
        if (chaos_late_loss) {
          stats_.bump("dropped.chaos_late_loss");
          log_debug("net", "chaos late loss " + message.from + " -> " +
                               message.to);
          return;
        }
        const auto it = endpoints_.find(message.to);
        if (it == endpoints_.end()) {
          stats_.bump(detached_.count(message.to) > 0
                          ? "dropped.undeliverable"
                          : "dropped.unreachable");
          log_debug("net", "no endpoint " + message.to);
          return;
        }
        stats_.bump("delivered");
        it->second(message);
      },
      label);
}

}  // namespace simba::net
