#include "net/bus.h"

#include <algorithm>

#include "util/log.h"

namespace simba::net {

namespace {
// View-typed key for transparent probes of the partition/link maps:
// no strings are copied on the per-send hot path.
std::pair<std::string_view, std::string_view> ordered(std::string_view a,
                                                      std::string_view b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

MessageBus::MessageBus(sim::Simulator& sim)
    : sim_(sim), rng_(sim.make_rng("net.bus")) {}

void MessageBus::attach(const std::string& address, Handler handler) {
  endpoints_[address] = std::move(handler);
  detached_.erase(address);
}

void MessageBus::detach(const std::string& address) {
  if (endpoints_.erase(address) > 0) detached_.insert(address);
}

bool MessageBus::attached(const std::string& address) const {
  return endpoints_.count(address) > 0;
}

void MessageBus::set_link(const std::string& from, const std::string& to,
                          LinkModel model) {
  links_[AddressPair{from, to}] = model;
}

void MessageBus::partition(const std::string& a, const std::string& b) {
  const auto key = ordered(a, b);
  const auto it = partitions_.find(key);
  if (it != partitions_.end()) {
    it->second++;
    return;
  }
  partitions_.emplace(std::make_pair(std::string(key.first),
                                     std::string(key.second)),
                      1);
}

void MessageBus::heal(const std::string& a, const std::string& b) {
  const auto key = ordered(a, b);
  const auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    // Never partitioned (or already fully healed): a no-op, so the
    // nesting count cannot underflow into a permanently-severed link.
    stats_.bump("heal.unmatched");
    return;
  }
  if (--it->second <= 0) partitions_.erase(it);
}

void MessageBus::set_chaos(const sim::NetChaosConfig& config, Rng rng) {
  chaos_ = config;
  chaos_rng_.emplace(std::move(rng));
}

bool MessageBus::partitioned(const std::string& a,
                             const std::string& b) const {
  return partitions_.find(ordered(a, b)) != partitions_.end();
}

std::string MessageBus::trace_id(const Message& message) const {
  // Mirrors the core wire headers (core/alert.cc "alert_id",
  // core/delivery_engine.h wire::kAckFor). The bus sits below core in
  // the layering DAG, so the keys are repeated here rather than
  // included; both ends are pinned by the golden-trace tests.
  auto it = message.headers.find("alert_id");
  if (it == message.headers.end()) it = message.headers.find("simba_ack_for");
  return it == message.headers.end() ? std::string() : it->second;
}

void MessageBus::trace_event(const Message& message, const char* stage,
                             std::string detail) {
  if (trace_ == nullptr) return;
  // Only alert-correlated traffic: logins, pings, and presence would
  // drown the lifecycle trace (and the golden files) in keepalive
  // noise.
  std::string id = trace_id(message);
  if (id.empty()) return;
  trace_->emit(std::move(id), "bus", stage, sim_.now(), std::move(detail));
}

const LinkModel& MessageBus::link_for(std::string_view from,
                                      std::string_view to) const {
  const auto it = links_.find(std::make_pair(from, to));
  return it == links_.end() ? default_link_ : it->second;
}

const char* MessageBus::deliver_label(const std::string& type) {
  const auto it = deliver_labels_.find(type);
  if (it != deliver_labels_.end()) return it->second;
  const char* label = label_interner_.intern("net.deliver:" + type);
  deliver_labels_.emplace(type, label);
  return label;
}

std::uint64_t MessageBus::send(Message message) {
  message.id = next_id_++;
  message.sent_at = sim_.now();
  stats_.bump("sent");
  if (traced(message)) {
    trace_event(message, "send",
                message.type + " " + message.from + " -> " + message.to);
  }

  if (partitioned(message.from, message.to)) {
    stats_.bump("dropped.partition");
    trace_event(message, "drop", "partition");
    SIMBA_LOG_DEBUG("net",
                    "partition drop " + message.from + " -> " + message.to);
    return message.id;
  }
  if (pending_bound_ != 0 && pending() >= pending_bound_) {
    // Transport queue full: the message is shed before transmission,
    // with explicit accounting. Not terminal for an alert — the sender
    // side sees no ack and falls back, exactly as for a loss.
    stats_.bump("pending.shed");
    trace_event(message, "shed", "pending bound");
    SIMBA_LOG_DEBUG("net",
                    "pending-bound shed " + message.from + " -> " + message.to);
    return message.id;
  }
  const LinkModel& link = link_for(message.from, message.to);
  if (rng_.chance(link.loss_probability)) {
    stats_.bump("dropped.loss");
    trace_event(message, "drop", "loss");
    SIMBA_LOG_DEBUG("net", "loss drop " + message.from + " -> " + message.to);
    return message.id;
  }
  Duration latency = link.sample_latency(rng_);
  const std::uint64_t id = message.id;

  // Chaos message faults (sim/chaos.h). All dice roll on the dedicated
  // chaos stream, in a fixed order, so a chaos world's benign stream
  // stays aligned with its control's.
  bool late_loss = false;
  if (chaos_rng_ && chaos_.any()) {
    const TimePoint now = sim_.now();
    if (chaos_.delay_spike.active_at(now) &&
        chaos_rng_->chance(chaos_.delay_spike.probability)) {
      latency += chaos_rng_->lognormal_duration(chaos_.delay_spike.magnitude,
                                                chaos_.delay_spike.sigma);
      stats_.bump("chaos.delay_spike");
      if (tracing()) trace_event(message, "delay_spike", message.type);
    }
    if (chaos_.reorder.active_at(now) &&
        chaos_rng_->chance(chaos_.reorder.probability)) {
      // Reordering via delay: holding this message back lets later
      // sends on the link overtake it.
      latency += chaos_rng_->uniform_duration(Duration::zero(),
                                              chaos_.reorder.magnitude);
      stats_.bump("chaos.reorder");
      if (tracing()) trace_event(message, "reorder", message.type);
    }
    if (chaos_.late_loss.active_at(now) &&
        chaos_rng_->chance(chaos_.late_loss.probability)) {
      late_loss = true;  // dies at arrival time, not now
    }
    if (chaos_.duplicate.active_at(now) &&
        chaos_rng_->chance(chaos_.duplicate.probability)) {
      // At-least-once transport: a second arrival of the same message
      // (same id) with its own independently-sampled latency.
      stats_.bump("chaos.duplicate");
      if (tracing()) trace_event(message, "duplicate", message.type);
      schedule_delivery(message, link.sample_latency(*chaos_rng_),
                        /*chaos_late_loss=*/false);
    }
  }
  schedule_delivery(std::move(message), latency, late_loss);
  return id;
}

std::uint32_t MessageBus::acquire_inflight(Message&& message) {
  if (!inflight_free_.empty()) {
    const std::uint32_t slot = inflight_free_.back();
    inflight_free_.pop_back();
    inflight_pool_[slot] = std::move(message);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(inflight_pool_.size());
  inflight_pool_.push_back(std::move(message));
  return slot;
}

void MessageBus::recycle_inflight(std::uint32_t slot) {
  // Drop references to the payload now rather than at reuse time, so
  // a quiet link is not pinning its last message's body.
  Message& message = inflight_pool_[slot];
  message.body.clear();
  message.headers.clear();
  inflight_free_.push_back(slot);
}

void MessageBus::schedule_delivery(Message message, Duration latency,
                                   bool chaos_late_loss) {
  const char* label = deliver_label(message.type);
  const std::uint32_t slot = acquire_inflight(std::move(message));
  // (this, slot, flag) fits std::function's inline buffer: scheduling
  // an arrival allocates nothing beyond the pooled slot itself.
  sim_.after(latency,
             [this, slot, chaos_late_loss] { arrive(slot, chaos_late_loss); },
             label);
}

void MessageBus::arrive(std::uint32_t slot, bool chaos_late_loss) {
  {
    // Scoped: the reference must not outlive the handler call below,
    // which may send and grow the pool (deque references hold, but the
    // recycle after this block must be the slot's last touch).
    const Message& message = inflight_pool_[slot];
    // Partition state and endpoint liveness are re-checked at arrival
    // time: a link that failed mid-flight loses the message.
    if (partitioned(message.from, message.to)) {
      stats_.bump("dropped.partition");
      trace_event(message, "drop", "partition_at_arrival");
    } else if (chaos_late_loss) {
      stats_.bump("dropped.chaos_late_loss");
      trace_event(message, "drop", "chaos_late_loss");
      SIMBA_LOG_DEBUG("net",
                      "chaos late loss " + message.from + " -> " + message.to);
    } else {
      const auto it = endpoints_.find(message.to);
      if (it == endpoints_.end()) {
        const bool undeliverable = detached_.count(message.to) > 0;
        stats_.bump(undeliverable ? "dropped.undeliverable"
                                  : "dropped.unreachable");
        trace_event(message, "drop",
                    undeliverable ? "undeliverable" : "unreachable");
        SIMBA_LOG_DEBUG("net", "no endpoint " + message.to);
      } else {
        stats_.bump("delivered");
        if (tracing()) {
          std::string id = trace_id(message);
          if (!id.empty()) {
            trace_->emit(std::move(id), "bus", "deliver", message.sent_at,
                         sim_.now(), message.type);
          }
        }
        it->second(message);
      }
    }
  }
  recycle_inflight(slot);
}

}  // namespace simba::net
