// Simulated message transport shared by the IM, email, and SMS
// substrates. One bus per simulation; endpoints are string addresses.
//
// The bus models what the paper's dependability story needs:
// per-link latency distributions (IM "< 1 second", email "seconds to
// days"), message loss, and link partitions (corporate proxy failures,
// network disconnection) — plus, for the chaos harness (sim/chaos.h),
// adversarial message faults: duplication, reordering, delay spikes,
// and late loss (the message dies at arrival time, after the sender
// committed to it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/chaos.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/trace.h"

namespace simba::net {

/// (from, to) address-pair key for the link and partition maps. The
/// composed util::PairStringHash/Eq are transparent, so the per-send
/// partition check probes with a pair of string_views and builds no
/// temporary strings.
using AddressPair = std::pair<std::string, std::string>;

/// An in-flight message. `type` is a protocol discriminator (e.g.
/// "im.send", "smtp.mail"); `headers` carry protocol fields; `body`
/// carries the payload.
struct Message {
  std::string from;
  std::string to;
  std::string type;
  std::string body;
  /// Header lookups (alert ids, wire kinds, acks) are the hottest
  /// string probes on the submit→deliver path, and every message
  /// construction used to pay one tree-node allocation per header.
  /// The snapshot codec serialises headers via sorted_items(), so the
  /// wire image stays byte-identical to the old ordered map's.
  util::FlatMap<std::string, std::string> headers;
  TimePoint sent_at{};
  std::uint64_t id = 0;
};

/// Latency/loss model for one direction of a link.
struct LinkModel {
  Duration base_latency = millis(20);
  Duration jitter = millis(10);  // additional, uniform in [0, jitter]
  double loss_probability = 0.0;

  Duration sample_latency(Rng& rng) const {
    return base_latency + rng.uniform_duration(Duration::zero(), jitter);
  }
};

class MessageBus {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit MessageBus(sim::Simulator& sim);

  /// Registers the handler for an address, replacing any previous one.
  void attach(const std::string& address, Handler handler);
  /// Removes the endpoint; in-flight messages to it are dropped on
  /// arrival (counted as "undeliverable").
  void detach(const std::string& address);
  bool attached(const std::string& address) const;

  /// Model applied when no per-link override matches.
  void set_default_link(LinkModel model) { default_link_ = model; }
  /// Override for the ordered pair (from, to).
  void set_link(const std::string& from, const std::string& to,
                LinkModel model);

  /// Severs both directions between two addresses until healed.
  void partition(const std::string& a, const std::string& b);
  /// Undoes one matching partition(). Healing a pair that was never
  /// partitioned is a counted no-op ("heal.unmatched") — the partition
  /// count can never underflow.
  void heal(const std::string& a, const std::string& b);
  bool partitioned(const std::string& a, const std::string& b) const;

  /// Arms chaos-driven message faults (duplicate / reorder / delay
  /// spike / late loss). The decisions roll on `rng`, a dedicated
  /// stream, so arming chaos never perturbs the benign loss/latency
  /// stream — a chaos world and its control stay comparable.
  void set_chaos(const sim::NetChaosConfig& config, Rng rng);

  /// Sends a message. Delivery (or loss) is decided now; arrival is a
  /// scheduled simulator event. Returns the assigned message id.
  std::uint64_t send(Message message);

  /// Bounds the number of messages concurrently in flight; a send over
  /// the bound is shed with explicit accounting ("pending.shed")
  /// instead of scheduled. 0 (default) = unbounded.
  void set_pending_bound(std::size_t bound) { pending_bound_ = bound; }

  /// Messages currently awaiting arrival.
  std::size_t pending() const {
    return inflight_pool_.size() - inflight_free_.size();
  }

  const Counters& stats() const { return stats_; }

  /// Checkpoint restore (sim/snapshot.h): carries the transport counter
  /// bag across a crash-restart. In-flight messages are deliberately
  /// NOT carried — they die with the process image, and end-to-end
  /// recovery flows through the pessimistic log, not the wire.
  void restore_stats(Counters stats) {
    stats_.restore_state(std::move(stats));
  }

  /// In-flight pool introspection for tests and benches: slots ever
  /// created, and slots currently free. Steady-state traffic plateaus
  /// at the link's bandwidth-delay product and then recycles.
  std::size_t inflight_slots() const { return inflight_pool_.size(); }
  std::size_t inflight_free() const { return inflight_free_.size(); }

  /// Arms lifecycle tracing (null disables it). Spans are correlated
  /// to an alert through the message headers, so transit, chaos
  /// injections, and drops show up on the alert's timeline.
  void set_trace(util::Trace* trace) { trace_ = trace; }

 private:
  const LinkModel& link_for(std::string_view from, std::string_view to) const;
  /// Schedules one arrival. `chaos_late_loss` kills the message at
  /// arrival time (counted "dropped.chaos_late_loss").
  void schedule_delivery(Message message, Duration latency,
                         bool chaos_late_loss);
  /// Runs one arrival (the delivery-event body) for the pooled
  /// message in `slot`, then recycles the slot.
  void arrive(std::uint32_t slot, bool chaos_late_loss);
  /// Moves `message` into a pooled slot (reusing a free one when
  /// possible) and returns its index.
  std::uint32_t acquire_inflight(Message&& message);
  void recycle_inflight(std::uint32_t slot);
  /// The alert id a message belongs to ("" for non-alert traffic).
  std::string trace_id(const Message& message) const;
  /// True when lifecycle tracing is armed. Call sites that build a
  /// detail string must check this first so disabled tracing costs
  /// nothing (ISSUE satellite: no detail construction when off).
  bool tracing() const { return trace_ != nullptr; }
  /// True when this message would actually emit a span: tracing armed
  /// AND alert-correlated. Keepalive traffic (pings, logins, presence)
  /// dominates message volume, so call sites that concatenate a detail
  /// string must gate on this — not just tracing() — or every ping
  /// pays string-building for a span trace_event then discards.
  bool traced(const Message& message) const {
    return trace_ != nullptr && (message.headers.contains("alert_id") ||
                                 message.headers.contains("simba_ack_for"));
  }
  void trace_event(const Message& message, const char* stage,
                   std::string detail);
  /// Stable interned "net.deliver:<type>" label for the simulator
  /// event, built once per distinct message type.
  const char* deliver_label(const std::string& type);

  sim::Simulator& sim_;
  Rng rng_;
  /// Lookup-only flat maps (DESIGN.md §16): nothing iterates these, so
  /// insertion-order traversal is irrelevant and every per-send /
  /// per-arrival probe is a single open-addressing hash lookup.
  util::FlatMap<std::string, Handler> endpoints_;
  util::FlatMap<AddressPair, LinkModel> links_;
  util::FlatMap<AddressPair, int> partitions_;
  LinkModel default_link_;
  /// Addresses that were attached once and detached since; in-flight
  /// messages to them count under "dropped.undeliverable" rather than
  /// "dropped.unreachable" (never-attached).
  util::FlatSet<std::string> detached_;
  sim::NetChaosConfig chaos_;
  std::optional<Rng> chaos_rng_;
  std::uint64_t next_id_ = 1;
  Counters stats_;
  util::Trace* trace_ = nullptr;
  /// Event labels handed to the simulator must outlive their events;
  /// the interner owns them, the cache makes the per-send lookup a
  /// single allocation-free transparent map probe.
  util::StringInterner label_interner_;
  util::FlatMap<std::string, const char*> deliver_labels_;
  /// In-flight message pool (DESIGN.md §13). A message awaiting
  /// arrival lives in a pooled slot so the delivery closure captures
  /// only (this, slot, late_loss) — small enough for std::function's
  /// inline buffer, making a send schedule its arrival with no
  /// per-send closure allocation. std::deque keeps slot references
  /// stable while handlers send (and thus grow the pool) mid-arrival;
  /// a chaos duplicate occupies its own slot. Slots recycle after the
  /// handler returns, so the pool plateaus at the peak number of
  /// concurrently in-flight messages.
  // simba-lint: bounded(pending_bound_, shed in send())
  std::deque<Message> inflight_pool_;
  std::vector<std::uint32_t> inflight_free_;
  std::size_t pending_bound_ = 0;
};

}  // namespace simba::net
