// Virtual-time types used throughout SIMBA.
//
// Everything in the reproduction runs on a discrete-event simulator
// (src/sim) with a virtual clock, so a one-month fault-injection run
// (experiment E6) completes in milliseconds and is bit-for-bit
// reproducible. These types give virtual time the same type safety as
// std::chrono wall-clock time.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace simba {

/// Resolution of the virtual clock. Microseconds comfortably cover both
/// sub-second IM latencies (experiment E1) and month-long runs (E6):
/// 31 days is ~2.7e12 us, well within int64 range.
using Duration = std::chrono::microseconds;

/// Tag clock for virtual time. Never ticks on its own; the simulator
/// advances it by popping events.
struct VirtualClock {
  using duration = Duration;
  using rep = Duration::rep;
  using period = Duration::period;
  using time_point = std::chrono::time_point<VirtualClock, Duration>;
  static constexpr bool is_steady = true;
};

/// A point in virtual time. Time zero is the start of the simulation run.
using TimePoint = VirtualClock::time_point;

inline constexpr TimePoint kTimeZero{};

/// Convenience literals-in-spirit: `seconds(2.5)` etc. accept fractional
/// amounts and round to the clock resolution.
constexpr Duration micros(std::int64_t n) { return Duration{n}; }
constexpr Duration millis(double n) {
  return Duration{static_cast<std::int64_t>(n * 1e3)};
}
constexpr Duration seconds(double n) {
  return Duration{static_cast<std::int64_t>(n * 1e6)};
}
constexpr Duration minutes(double n) { return seconds(n * 60.0); }
constexpr Duration hours(double n) { return seconds(n * 3600.0); }
constexpr Duration days(double n) { return seconds(n * 86400.0); }

/// Duration expressed as floating-point seconds, for stats and reports.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
constexpr double to_seconds(TimePoint t) {
  return to_seconds(t.time_since_epoch());
}
constexpr double to_minutes(Duration d) { return to_seconds(d) / 60.0; }

/// Formats a duration humanely: "953ms", "2.50s", "4m13s", "1d03:12:09".
std::string format_duration(Duration d);

/// Formats a time point as "d+hh:mm:ss.mmm" (day number + time of day).
std::string format_time(TimePoint t);

}  // namespace simba
