// Calendar arithmetic over virtual time: time-of-day and "next 23:30"
// scheduling for MyAlertBuddy's nightly software rejuvenation, and
// delivery-time windows ("disable these alerts during certain hours").
#pragma once

#include "util/time.h"

namespace simba {

/// Time of day within a virtual 24h day, in whole minutes since midnight.
struct TimeOfDay {
  int minutes_since_midnight = 0;

  static TimeOfDay at(int hour, int minute) {
    return TimeOfDay{hour * 60 + minute};
  }
  int hour() const { return minutes_since_midnight / 60; }
  int minute() const { return minutes_since_midnight % 60; }
  auto operator<=>(const TimeOfDay&) const = default;
};

/// Day number (0-based) of a virtual time point.
std::int64_t day_of(TimePoint t);

/// Time-of-day of a virtual time point (truncated to minutes).
TimeOfDay time_of_day(TimePoint t);

/// Offset within the current virtual day.
Duration since_midnight(TimePoint t);

/// The next time point strictly after `now` whose time-of-day is `tod`.
TimePoint next_occurrence(TimePoint now, TimeOfDay tod);

/// A daily window [start, end); wraps midnight when end <= start.
/// An empty window (start == end) contains nothing.
struct DailyWindow {
  TimeOfDay start;
  TimeOfDay end;
  bool contains(TimePoint t) const;
};

}  // namespace simba
