// The one sanctioned doorway to the real clock.
//
// Everything under src/ runs on the simulator's virtual clock so runs
// are bit-identical across seeds and thread counts; simba-lint bans
// std::chrono::{system,steady}_clock, time(), etc. tree-wide. Code
// that legitimately needs wall time — and only for timing that is
// excluded from correctness output, like the fleet runner's
// wall_seconds — goes through this shim. The implementation file
// (wall_clock.cc) is the determinism linter's allowlisted real-clock
// reader; nothing here may leak into merged reports or any other
// correctness-relevant state.
#pragma once

namespace simba::util {

/// Monotonic wall-clock seconds since an arbitrary process-local
/// epoch. Timing-only: never fold this into deterministic output.
double wall_seconds();

/// Stopwatch over wall_seconds(), started at construction.
class WallTimer {
 public:
  WallTimer() : start_(wall_seconds()) {}
  double seconds() const { return wall_seconds() - start_; }

 private:
  double start_;
};

}  // namespace simba::util
