// Deterministic alert-lifecycle tracing.
//
// A Trace is an append-only list of Spans, each stamped with virtual
// time only (the simulator clock) so that a fixed seed and scenario
// produce a byte-identical trace on every run, on every platform, at
// every fleet thread count. Components hold a `Trace*` (null means
// tracing is off) and emit spans at the interesting points of an
// alert's lifecycle: bus send/deliver and chaos injections, log
// append/ack/recovery, MAB classify → aggregate → filter → route, and
// delivery-engine block/action attempts with fallback and skip
// reasons.
//
// Like Counters/Summary/Histogram, traces merge: fleet shards each
// record their own Trace and run_fleet folds them together in shard
// order, so the merged trace is independent of the thread count.
// Export is canonical sorted JSONL (integer microsecond timestamps,
// no floats) — the format the golden-trace tests byte-compare.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/interner.h"
#include "util/stats.h"
#include "util/time.h"

namespace simba::util {

/// One lifecycle event. `component` and `stage` MUST be string
/// literals (static storage duration): spans copy only the pointer,
/// which keeps emission allocation-light and makes merged traces safe
/// to outlive the emitting component. Instant events have start == end;
/// stages with real latency (log write, bus transit, delivery blocks)
/// carry their duration as [start, end].
struct Span {
  std::string alert_id;  // empty for non-alert traffic (sign-in, sweeps)
  const char* component = "";
  const char* stage = "";
  TimePoint start{};
  TimePoint end{};
  std::string detail;

  Duration duration() const { return end - start; }
};

class Trace {
 public:
  /// Instant event at `at`.
  void emit(std::string alert_id, const char* component, const char* stage,
            TimePoint at, std::string detail = {});
  /// Event spanning [start, end].
  void emit(std::string alert_id, const char* component, const char* stage,
            TimePoint start, TimePoint end, std::string detail = {});

  /// Emits a span whose component/stage labels are NOT string literals
  /// (checkpoint decode, sim/snapshot.h): the labels are interned into
  /// trace-owned storage first, preserving the static-lifetime contract
  /// of Span for as long as this trace (or anything it is merged or
  /// moved into) lives.
  void emit_owned(std::string alert_id, std::string_view component,
                  std::string_view stage, TimePoint start, TimePoint end,
                  std::string detail = {});

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  /// Appends `other`'s spans in order. Merging shard traces in shard
  /// order yields the same span sequence for any thread count, exactly
  /// like Counters::merge / Summary::merge. Labels are re-interned into
  /// this trace's own storage, so the merged trace stays valid after
  /// `other` (which may own labels of checkpoint-restored spans) dies.
  void merge(const Trace& other);

  /// Spans in canonical order: (start, alert_id, component, stage,
  /// end, detail), stable for full ties. Emission order within a shard
  /// is deterministic, so this order is too.
  std::vector<Span> sorted_spans() const;

  /// Canonical export: one JSON object per line, sorted_spans() order,
  /// integer microsecond timestamps only — byte-identical across runs,
  /// platforms, and fleet thread counts for a fixed seed + scenario.
  /// {"t":1500000,"dur":250000,"alert":"s0-1","comp":"log",
  ///  "stage":"append","detail":"fresh"}
  std::string to_jsonl() const;

  /// Per-stage latency distributions keyed "component.stage", over
  /// span durations in seconds (instant spans contribute 0).
  // simba-lint: ordered (report-time; callers print stages sorted)
  std::map<std::string, Summary> stage_latency() const;

  /// Per-stage latency histograms over span durations in seconds, all
  /// sharing `boundaries`. Keyed like stage_latency().
  // simba-lint: ordered
  std::map<std::string, Histogram> stage_histograms(
      const std::vector<double>& boundaries) const;

  /// Human-oriented per-stage latency table (one stage per line), for
  /// the bench report sections.
  std::string stage_report() const;

  /// All spans for one alert, in canonical order.
  std::vector<Span> spans_for(const std::string& alert_id) const;

  /// Multi-line lifecycle listing for one alert, for invariant-failure
  /// reports: "  [d+hh:mm:ss.mmm +dur] comp.stage detail".
  std::string describe(const std::string& alert_id) const;

 private:
  std::vector<Span> spans_;
  /// Storage for non-literal labels (emit_owned / merge). Set nodes are
  /// address-stable, so moving the trace keeps span pointers valid;
  /// copying a Trace is safe only while the source outlives the copy.
  StringInterner owned_labels_;
};

}  // namespace simba::util
