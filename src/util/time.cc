#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace simba {

std::string format_duration(Duration d) {
  char buf[64];
  const std::int64_t us = d.count();
  const std::int64_t abs_us = us < 0 ? -us : us;
  const char* sign = us < 0 ? "-" : "";
  if (abs_us < 1000) {
    std::snprintf(buf, sizeof buf, "%s%lldus", sign,
                  static_cast<long long>(abs_us));
  } else if (abs_us < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%s%lldms", sign,
                  static_cast<long long>(abs_us / 1000));
  } else if (abs_us < 60LL * 1'000'000) {
    std::snprintf(buf, sizeof buf, "%s%.2fs", sign,
                  static_cast<double>(abs_us) / 1e6);
  } else if (abs_us < 3600LL * 1'000'000) {
    const std::int64_t s = abs_us / 1'000'000;
    std::snprintf(buf, sizeof buf, "%s%lldm%02llds", sign,
                  static_cast<long long>(s / 60),
                  static_cast<long long>(s % 60));
  } else {
    const std::int64_t s = abs_us / 1'000'000;
    const std::int64_t dd = s / 86400;
    const std::int64_t hh = (s % 86400) / 3600;
    const std::int64_t mm = (s % 3600) / 60;
    const std::int64_t ss = s % 60;
    if (dd > 0) {
      std::snprintf(buf, sizeof buf, "%s%lldd%02lld:%02lld:%02lld", sign,
                    static_cast<long long>(dd), static_cast<long long>(hh),
                    static_cast<long long>(mm), static_cast<long long>(ss));
    } else {
      std::snprintf(buf, sizeof buf, "%s%lld:%02lld:%02lld", sign,
                    static_cast<long long>(hh), static_cast<long long>(mm),
                    static_cast<long long>(ss));
    }
  }
  return buf;
}

std::string format_time(TimePoint t) {
  const std::int64_t us = t.time_since_epoch().count();
  const std::int64_t s = us / 1'000'000;
  const std::int64_t ms = (us % 1'000'000) / 1000;
  const std::int64_t day = s / 86400;
  const std::int64_t hh = (s % 86400) / 3600;
  const std::int64_t mm = (s % 3600) / 60;
  const std::int64_t ss = s % 60;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld+%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(day), static_cast<long long>(hh),
                static_cast<long long>(mm), static_cast<long long>(ss),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace simba
