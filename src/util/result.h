// Minimal expected-like result type (std::expected is C++23; we target
// C++20). Errors are strings: this codebase reports failures to humans
// (the paper's "dependability" is user experience), not to dispatchers.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace simba {

/// Error wrapper so `Result<std::string>` stays unambiguous.
struct Error {
  std::string message;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : error_(std::move(error.message)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  std::optional<T> value_;
  std::string error_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error.message)), ok_(false) {}  // NOLINT

  static Status success() { return Status{}; }
  static Status failure(std::string message) {
    return Status{Error{std::move(message)}};
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  std::string error_;
  bool ok_ = true;
};

}  // namespace simba
