// Lightweight component logger. Quiet by default so tests and benches
// stay readable; examples turn it up to narrate scenarios.
#pragma once

#include <functional>
#include <string>

#include "util/time.h"

namespace simba {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. The threshold is process-wide (atomic);
/// the time source and sink are thread-local, so each fleet shard
/// thread's own Simulator stamps its lines with that shard's virtual
/// time without racing the other shards' simulators.
class Log {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// The simulator installs itself here so log lines carry virtual time.
  static void set_time_source(std::function<TimePoint()> source);
  static void clear_time_source();

  /// Optional sink override (default: stderr). Used by tests asserting
  /// on log output and by benches capturing recovery logs.
  static void set_sink(std::function<void(const std::string&)> sink);
  static void clear_sink();

  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

void log_trace(const std::string& component, const std::string& message);
void log_debug(const std::string& component, const std::string& message);
void log_info(const std::string& component, const std::string& message);
void log_warn(const std::string& component, const std::string& message);
void log_error(const std::string& component, const std::string& message);

}  // namespace simba
