// Lightweight component logger. Quiet by default so tests and benches
// stay readable; examples turn it up to narrate scenarios.
#pragma once

#include <functional>
#include <string>

#include "util/time.h"

namespace simba {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. The threshold is process-wide (atomic);
/// the time source and sink are thread-local, so each fleet shard
/// thread's own Simulator stamps its lines with that shard's virtual
/// time without racing the other shards' simulators.
class Log {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// True when a line at `level` would actually be emitted. The lazy
  /// SIMBA_LOG_* macros below consult this before evaluating their
  /// message expression, so disabled-level logging costs one atomic
  /// load and nothing else — no string building, no allocation.
  static bool enabled(LogLevel level) { return level >= threshold(); }

  /// The simulator installs itself here so log lines carry virtual time.
  static void set_time_source(std::function<TimePoint()> source);
  static void clear_time_source();

  /// Optional sink override (default: stderr). Used by tests asserting
  /// on log output and by benches capturing recovery logs.
  static void set_sink(std::function<void(const std::string&)> sink);
  static void clear_sink();

  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

void log_trace(const std::string& component, const std::string& message);
void log_debug(const std::string& component, const std::string& message);
void log_info(const std::string& component, const std::string& message);
void log_warn(const std::string& component, const std::string& message);
void log_error(const std::string& component, const std::string& message);

}  // namespace simba

/// Lazy logging: the message expression is evaluated only when the
/// level clears the threshold, so hot paths can log rich concatenated
/// detail without paying for string construction when (as in benches
/// and fleets) logging is off. `message_expr` may be any expression
/// convertible to std::string. Usage:
///
///   SIMBA_LOG_DEBUG("net", "loss drop " + from + " -> " + to);
///
/// simba-lint's [alloc] rule requires these macros (instead of the
/// eager log_debug/log_trace functions) wherever the message argument
/// builds a temporary string.
#define SIMBA_LOG_AT(level, component, message_expr)            \
  do {                                                          \
    if (::simba::Log::enabled(level)) {                         \
      ::simba::Log::write((level), (component), (message_expr)); \
    }                                                           \
  } while (0)

#define SIMBA_LOG_TRACE(component, message_expr) \
  SIMBA_LOG_AT(::simba::LogLevel::kTrace, (component), (message_expr))
#define SIMBA_LOG_DEBUG(component, message_expr) \
  SIMBA_LOG_AT(::simba::LogLevel::kDebug, (component), (message_expr))
#define SIMBA_LOG_INFO(component, message_expr) \
  SIMBA_LOG_AT(::simba::LogLevel::kInfo, (component), (message_expr))
#define SIMBA_LOG_WARN(component, message_expr) \
  SIMBA_LOG_AT(::simba::LogLevel::kWarn, (component), (message_expr))
#define SIMBA_LOG_ERROR(component, message_expr) \
  SIMBA_LOG_AT(::simba::LogLevel::kError, (component), (message_expr))
