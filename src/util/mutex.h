// Annotated mutex wrapper — the only sanctioned synchronisation
// primitive outside util/.
//
// simba-lint bans raw std::mutex/lock_guard/condition_variable in
// src/ (outside util/) so that every lock in the tree carries Clang
// thread-safety annotations: on Clang builds, -Wthread-safety turns
// "which mutex guards this field?" from a code-review question into a
// compile error. GCC compiles the same code with the attributes
// expanding to nothing.
#pragma once

#include <mutex>

#if defined(__clang__)
#define SIMBA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIMBA_THREAD_ANNOTATION(x)
#endif

/// A type that acts as a lock: util::Mutex below, or any future
/// reader/writer capability.
#define SIMBA_CAPABILITY(x) SIMBA_THREAD_ANNOTATION(capability(x))
/// RAII types that acquire in the constructor and release in the
/// destructor (util::MutexLock).
#define SIMBA_SCOPED_CAPABILITY SIMBA_THREAD_ANNOTATION(scoped_lockable)
/// Data members: may only be read/written while `x` is held.
#define SIMBA_GUARDED_BY(x) SIMBA_THREAD_ANNOTATION(guarded_by(x))
/// Pointer members: the pointee (not the pointer) is guarded by `x`.
#define SIMBA_PT_GUARDED_BY(x) SIMBA_THREAD_ANNOTATION(pt_guarded_by(x))
/// Functions: caller must already hold the listed capabilities.
#define SIMBA_REQUIRES(...) \
  SIMBA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Functions: acquire/release the listed capabilities.
#define SIMBA_ACQUIRE(...) \
  SIMBA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SIMBA_RELEASE(...) \
  SIMBA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SIMBA_TRY_ACQUIRE(...) \
  SIMBA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Functions: must NOT be called with the listed capabilities held.
#define SIMBA_EXCLUDES(...) SIMBA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot follow; use sparingly and
/// explain why at the call site.
#define SIMBA_NO_THREAD_SAFETY_ANALYSIS \
  SIMBA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace simba::util {

/// std::mutex carrying the "capability" annotation so Clang can check
/// SIMBA_GUARDED_BY fields against it.
class SIMBA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SIMBA_ACQUIRE() { mu_.lock(); }
  void unlock() SIMBA_RELEASE() { mu_.unlock(); }
  bool try_lock() SIMBA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for util::Mutex (std::lock_guard is banned outside util/
/// because it carries no annotations).
class SIMBA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIMBA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SIMBA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace simba::util
