#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace simba {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(text, sep)) {
    const auto trimmed = trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  // Case-insensitive search without materialising lowered copies:
  // this sits on per-message hot paths (IM command sniffing, alert
  // keyword classification).
  const auto ieq = [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  };
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end(), ieq) != haystack.end();
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::pair<std::string, std::string> parse_email_from(std::string_view from) {
  const std::size_t open = from.find('<');
  if (open == std::string_view::npos) {
    return {std::string{}, std::string(trim(from))};
  }
  const std::size_t close = from.find('>', open);
  const std::size_t end =
      close == std::string_view::npos ? from.size() : close;
  return {std::string(trim(from.substr(0, open))),
          std::string(trim(from.substr(open + 1, end - open - 1)))};
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace simba
