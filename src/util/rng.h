// Deterministic random-number generation for the simulator.
//
// All randomness in SIMBA flows from named child streams of one root
// seed, so every experiment is reproducible: same seed, same trace.
// The generator is xoshiro256** (public domain, Blackman & Vigna),
// seeded through splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.h"

namespace simba {

/// splitmix64 step; used for seeding and for hashing stream names.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit hash of a string, for deriving named child streams.
std::uint64_t hash_name(std::string_view name);

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it also composes with <random>,
/// but the built-in distributions below are preferred: they are stable
/// across standard-library implementations, which keeps experiment
/// output identical everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Child generator whose stream is independent of, but fully
  /// determined by, this generator's seed and `name`. Does not consume
  /// randomness from this stream.
  Rng child(std::string_view name) const;

  /// Serializable generator position (sim/snapshot.h). Because child
  /// streams derive from the *seed*, not the stream position, restoring
  /// a state reproduces both the exact continuation of this stream and
  /// every child derivation — a child re-derived after restore emits
  /// the same sequence it would have before the checkpoint, whether or
  /// not it had ever been drawn from.
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t seed = 0;
  };
  State state() const { return State{s_, seed_}; }
  void restore(const State& state) {
    s_ = state.s;
    seed_ = state.seed;
  }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p (clamped to [0,1]).
  bool chance(double p);
  /// Exponential with the given mean (not rate). mean <= 0 returns 0.
  double exponential(double mean);
  /// Standard normal via Box-Muller (one value per call, no caching,
  /// so streams stay position-independent).
  double normal(double mean, double stddev);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail).
  double pareto(double xm, double alpha);
  /// Picks an index in [0, weights.size()) proportional to weights.
  /// Zero/negative weights are treated as zero; all-zero picks 0.
  std::size_t weighted_index(const double* weights, std::size_t n);

  /// Duration helpers (clamped at zero).
  Duration exponential_duration(Duration mean);
  Duration uniform_duration(Duration lo, Duration hi);
  Duration normal_duration(Duration mean, Duration stddev);
  /// Log-normal duration with the given median and sigma of the
  /// underlying normal; heavy-tailed, always positive. Used for email
  /// and SMS delays ("seconds to days").
  Duration lognormal_duration(Duration median, double sigma);

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;
};

}  // namespace simba
