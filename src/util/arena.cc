#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace simba::util {

BumpArena::BumpArena(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {}

char* BumpArena::allocate(std::size_t n) {
  if (n == 0) n = 1;  // distinct non-null pointers, keeps views simple
  if (chunks_.empty() || offset_ + n > chunks_[chunk_index_].size) {
    return refill(n);
  }
  char* p = chunks_[chunk_index_].data.get() + offset_;
  offset_ += n;
  used_ += n;
  return p;
}

char* BumpArena::refill(std::size_t n) {
  // Later chunks may exist from a previous, larger epoch; reuse the
  // first one that fits before reserving anything new.
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    offset_ = 0;
    if (n <= chunks_[chunk_index_].size) return allocate(n);
  }
  Chunk chunk;
  chunk.size = std::max(chunk_bytes_, n);
  chunk.data = std::make_unique<char[]>(chunk.size);
  chunks_.push_back(std::move(chunk));
  chunk_index_ = chunks_.size() - 1;
  offset_ = 0;
  return allocate(n);
}

std::string_view BumpArena::copy(std::string_view s) {
  char* p = allocate(s.size());
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  return std::string_view(p, s.size());
}

std::string_view BumpArena::concat(
    std::initializer_list<std::string_view> parts) {
  std::size_t total = 0;
  for (const std::string_view part : parts) total += part.size();
  char* p = allocate(total);
  char* cursor = p;
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    std::memcpy(cursor, part.data(), part.size());
    cursor += part.size();
  }
  return std::string_view(p, total);
}

void BumpArena::reset() {
  chunk_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t BumpArena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

std::string_view format_u64(std::uint64_t v, char* buf) {
  char* end = buf + 20;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  const auto n = static_cast<std::size_t>(end - p);
  std::memmove(buf, p, n);
  return std::string_view(buf, n);
}

}  // namespace simba::util
