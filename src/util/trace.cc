#include "util/trace.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace simba::util {
namespace {

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters. Span ids and details are ASCII by construction, but the
/// exporter must never emit an unparseable line.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool canonical_less(const Span& a, const Span& b) {
  if (a.start != b.start) return a.start < b.start;
  if (int c = a.alert_id.compare(b.alert_id); c != 0) return c < 0;
  if (int c = std::strcmp(a.component, b.component); c != 0) return c < 0;
  if (int c = std::strcmp(a.stage, b.stage); c != 0) return c < 0;
  if (a.end != b.end) return a.end < b.end;
  return a.detail < b.detail;
}

}  // namespace

void Trace::emit(std::string alert_id, const char* component,
                 const char* stage, TimePoint at, std::string detail) {
  emit(std::move(alert_id), component, stage, at, at, std::move(detail));
}

void Trace::emit(std::string alert_id, const char* component,
                 const char* stage, TimePoint start, TimePoint end,
                 std::string detail) {
  spans_.push_back(Span{std::move(alert_id), component, stage, start, end,
                        std::move(detail)});
}

void Trace::emit_owned(std::string alert_id, std::string_view component,
                       std::string_view stage, TimePoint start, TimePoint end,
                       std::string detail) {
  spans_.push_back(Span{std::move(alert_id), owned_labels_.intern(component),
                        owned_labels_.intern(stage), start, end,
                        std::move(detail)});
}

void Trace::merge(const Trace& other) {
  spans_.reserve(spans_.size() + other.spans_.size());
  for (const Span& span : other.spans_) {
    spans_.push_back(Span{span.alert_id, owned_labels_.intern(span.component),
                          owned_labels_.intern(span.stage), span.start,
                          span.end, span.detail});
  }
}

std::vector<Span> Trace::sorted_spans() const {
  std::vector<Span> sorted = spans_;
  std::stable_sort(sorted.begin(), sorted.end(), canonical_less);
  return sorted;
}

std::string Trace::to_jsonl() const {
  std::string out;
  for (const Span& s : sorted_spans()) {
    out += strformat(
        "{\"t\":%lld,\"dur\":%lld,\"alert\":\"%s\",\"comp\":\"%s\","
        "\"stage\":\"%s\",\"detail\":\"%s\"}\n",
        static_cast<long long>(s.start.time_since_epoch().count()),
        static_cast<long long>(s.duration().count()),
        json_escape(s.alert_id).c_str(), json_escape(s.component).c_str(),
        json_escape(s.stage).c_str(), json_escape(s.detail).c_str());
  }
  return out;
}

// simba-lint: ordered (report-time only; printed in sorted order)
std::map<std::string, Summary> Trace::stage_latency() const {
  // simba-lint: ordered
  std::map<std::string, Summary> stages;
  for (const Span& s : spans_) {
    stages[std::string(s.component) + "." + s.stage].add(s.duration());
  }
  return stages;
}

// simba-lint: ordered
std::map<std::string, Histogram> Trace::stage_histograms(
    const std::vector<double>& boundaries) const {
  // simba-lint: ordered
  std::map<std::string, Histogram> stages;
  for (const Span& s : spans_) {
    const std::string key = std::string(s.component) + "." + s.stage;
    auto [it, inserted] = stages.try_emplace(key, boundaries);
    it->second.add(s.duration());
  }
  return stages;
}

std::string Trace::stage_report() const {
  std::string out;
  for (const auto& [stage, latency] : stage_latency()) {
    out += strformat("%-28s %s\n", stage.c_str(), latency.report().c_str());
  }
  return out;
}

std::vector<Span> Trace::spans_for(const std::string& alert_id) const {
  std::vector<Span> mine;
  for (const Span& s : spans_) {
    if (s.alert_id == alert_id) mine.push_back(s);
  }
  std::stable_sort(mine.begin(), mine.end(), canonical_less);
  return mine;
}

std::string Trace::describe(const std::string& alert_id) const {
  std::string out;
  for (const Span& s : spans_for(alert_id)) {
    out += strformat("  [%s +%s] %s.%s", format_time(s.start).c_str(),
                     format_duration(s.duration()).c_str(), s.component,
                     s.stage);
    if (!s.detail.empty()) out += " " + s.detail;
    out += "\n";
  }
  if (out.empty()) out = "  (no spans recorded)\n";
  return out;
}

}  // namespace simba::util
