// Streaming statistics and percentile reporting for the benchmark
// harnesses. Every experiment in EXPERIMENTS.md reports through these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/flat_map.h"
#include "util/time.h"

namespace simba {

/// Streaming mean/variance via Welford's algorithm, plus retained
/// samples for exact percentiles. Holds doubles; callers decide units.
class Summary {
 public:
  void add(double x);
  void add(Duration d) { add(to_seconds(d)); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Exact percentile by nearest-rank on sorted samples; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double total() const { return sum_; }

  const std::vector<double>& samples() const { return samples_; }

  /// Folds another summary into this one, exactly as if the other's
  /// samples had been add()ed here one by one. Merging the same
  /// sequence of summaries in the same order always yields bit-identical
  /// statistics, which is what lets the fleet runner produce the same
  /// merged report for any thread count.
  void merge(const Summary& other);

  /// "n=100 mean=0.93 p50=0.91 p99=1.40 min=0.52 max=1.61" with the
  /// given printf format for values (default "%.3f").
  std::string report(const char* value_format = "%.3f") const;

  /// Checkpoint state (sim/snapshot.h): every field verbatim, including
  /// the retained samples in their *current* order and the sorted flag.
  /// Re-adding the samples one by one would NOT restore bit-exactly —
  /// percentile() sorts samples_ in place, and Welford replay depends
  /// on insertion order — so restore is field-for-field.
  struct State {
    std::vector<double> samples;
    bool sorted = true;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State save_state() const {
    return State{samples_, sorted_, mean_, m2_, sum_, min_, max_};
  }
  void restore_state(State state) {
    samples_ = std::move(state.samples);
    sorted_ = state.sorted;
    mean_ = state.mean;
    m2_ = state.m2;
    sum_ = state.sum;
    min_ = state.min;
    max_ = state.max;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counter bag: named integer counters for fault logs and recovery
/// statistics (experiment E6 reports these directly).
///
/// bump()/get() take string_view and look up through a transparent
/// hash, so the ubiquitous string-literal call sites
/// (`stats_.bump("delivered")`) never materialise a std::string on the
/// hot path — a key is copied once, on first insertion. The bag is an
/// open-addressing util::FlatMap (bump is the single hottest map op in
/// the fleet); all() materialises the sorted view every report/
/// snapshot/merge-comparison site relied on when this was a std::map.
class Counters {
 public:
  void bump(std::string_view name, std::int64_t by = 1);
  std::int64_t get(std::string_view name) const;
  /// Every counter, sorted by name. Returned by value: the underlying
  /// flat map iterates in insertion order, and every caller (reports,
  /// snapshot serialisation, merged-report JSON, test comparisons)
  /// wants the deterministic sorted sequence.
  std::vector<std::pair<std::string, std::int64_t>> all() const;
  /// Adds every counter from `other` into this bag (sums on key
  /// collision, inserts otherwise). Associative and commutative.
  void merge(const Counters& other);
  /// Checkpoint restore (sim/snapshot.h): replaces the whole bag.
  void restore_state(Counters state) { counts_ = std::move(state.counts_); }
  std::string report() const;

 private:
  util::FlatMap<std::string, std::int64_t> counts_;
};

/// Fixed-boundary histogram for latency distributions.
class Histogram {
 public:
  /// Buckets are [b0,b1), [b1,b2), ..., plus an overflow bucket.
  explicit Histogram(std::vector<double> boundaries);

  void add(double x);
  void add(Duration d) { add(to_seconds(d)); }
  std::size_t count() const { return total_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }
  const std::vector<double>& boundaries() const { return boundaries_; }
  /// True when both histograms share identical bucket boundaries.
  bool compatible_with(const Histogram& other) const {
    return boundaries_ == other.boundaries_;
  }
  /// Adds `other`'s bucket counts into this histogram. Requires
  /// compatible boundaries (asserted); an incompatible merge is a
  /// no-op in release builds.
  void merge(const Histogram& other);
  /// Multi-line ASCII rendering with bars, for bench output.
  std::string render(const char* unit = "s") const;

  /// Checkpoint state (sim/snapshot.h).
  struct State {
    std::vector<double> boundaries;
    std::vector<std::size_t> counts;
    std::size_t total = 0;
  };
  State save_state() const { return State{boundaries_, counts_, total_}; }
  void restore_state(State state) {
    boundaries_ = std::move(state.boundaries);
    counts_ = std::move(state.counts);
    total_ = state.total;
  }

 private:
  std::vector<double> boundaries_;
  std::vector<std::size_t> counts_;  // boundaries_.size()+1 entries
  std::size_t total_ = 0;
};

}  // namespace simba
