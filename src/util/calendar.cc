#include "util/calendar.h"

namespace simba {

namespace {
constexpr std::int64_t kDayUs = 86400LL * 1'000'000;
constexpr std::int64_t kMinuteUs = 60LL * 1'000'000;
}  // namespace

std::int64_t day_of(TimePoint t) {
  return t.time_since_epoch().count() / kDayUs;
}

TimeOfDay time_of_day(TimePoint t) {
  const std::int64_t in_day = t.time_since_epoch().count() % kDayUs;
  return TimeOfDay{static_cast<int>(in_day / kMinuteUs)};
}

Duration since_midnight(TimePoint t) {
  return Duration{t.time_since_epoch().count() % kDayUs};
}

TimePoint next_occurrence(TimePoint now, TimeOfDay tod) {
  const std::int64_t day_start =
      now.time_since_epoch().count() - since_midnight(now).count();
  const std::int64_t target_in_day = tod.minutes_since_midnight * kMinuteUs;
  std::int64_t candidate = day_start + target_in_day;
  if (candidate <= now.time_since_epoch().count()) candidate += kDayUs;
  return TimePoint{Duration{candidate}};
}

bool DailyWindow::contains(TimePoint t) const {
  if (start == end) return false;
  const TimeOfDay tod = time_of_day(t);
  if (start < end) return start <= tod && tod < end;
  return tod >= start || tod < end;  // wraps midnight
}

}  // namespace simba
