#include "util/wall_clock.h"

#include <chrono>

namespace simba::util {

// This file is on simba-lint's determinism allowlist: the only place
// in src/ allowed to read a real clock.
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace simba::util
