// Bump-pointer arena for short-lived scratch bytes.
//
// The fleet workloads build one small id string per alert ("s7-12345")
// whose useful life is bounded by the shard's epoch: once the shard
// has drained, every closure that captured a view of it has fired.
// Allocating each of those through the global heap is pure churn, so a
// UserWorld carries a BumpArena (DESIGN.md §13): allocation is a
// pointer bump into chunked storage, views stay valid until reset(),
// and reset() at the epoch boundary rewinds the whole arena in O(1)
// while keeping its chunks for the next epoch.
//
// Not thread-safe — arenas are per-shard, like everything else in a
// UserWorld. Memory is never returned to the heap until destruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string_view>
#include <vector>

namespace simba::util {

class BumpArena {
 public:
  /// `chunk_bytes` sizes every chunk; oversized allocations get a
  /// dedicated chunk of their own.
  explicit BumpArena(std::size_t chunk_bytes = 16 * 1024);

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Uninitialized bytes, alignment 1 (byte storage for string data).
  /// Valid until reset() or destruction.
  char* allocate(std::size_t n);

  /// Copies `s` into the arena and returns the arena-backed view.
  std::string_view copy(std::string_view s);

  /// Concatenates the parts into one contiguous arena allocation.
  /// The workloads' id builder: no temporary std::string, one bump.
  std::string_view concat(std::initializer_list<std::string_view> parts);

  /// Rewinds to empty, retaining every chunk already reserved. All
  /// views handed out so far become invalid — callers run this only at
  /// an epoch boundary, after the last closure using them has fired.
  void reset();

  /// Bytes handed out since the last reset.
  std::size_t bytes_used() const { return used_; }
  /// Bytes of chunk storage reserved (high-water mark across epochs).
  std::size_t bytes_reserved() const;

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Makes the chunk at `chunk_index_` able to hold `n` more bytes,
  /// advancing to (or creating) a later chunk if needed.
  char* refill(std::size_t n);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;  // chunk currently being bumped
  std::size_t offset_ = 0;       // bump position within that chunk
  std::size_t used_ = 0;
};

/// Formats v's decimal digits into `buf` (at least 20 bytes) and
/// returns the written view. Pairs with BumpArena::concat to build ids
/// like "s7-12345" with no heap traffic at all.
std::string_view format_u64(std::uint64_t v, char* buf);

}  // namespace simba::util
