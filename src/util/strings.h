// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace simba {

std::vector<std::string> split(std::string_view text, char sep);
/// Split on sep, trimming whitespace from each piece and dropping empties.
std::vector<std::string> split_trimmed(std::string_view text, char sep);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool iequals(std::string_view a, std::string_view b);
bool contains(std::string_view haystack, std::string_view needle);
bool icontains(std::string_view haystack, std::string_view needle);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits an RFC-822-style sender "Display Name <addr@host>" into
/// {display, address}. Without angle brackets the whole string is the
/// address and the display name is empty.
std::pair<std::string, std::string> parse_email_from(std::string_view from);

}  // namespace simba
