#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace simba {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::child(std::string_view name) const {
  // Mix the parent's seed with the child name so distinct names give
  // independent streams and the same name always gives the same stream.
  std::uint64_t mix = seed_ ^ rotl(hash_name(name), 31);
  return Rng{splitmix64(mix)};
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo (Lemire-style rejection kept simple).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  double u = uniform();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -mean * std::log1p(-u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = std::nextafter(0.0, 1.0);
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::max(weights[i], 0.0);
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    r -= std::max(weights[i], 0.0);
    if (r < 0.0) return i;
  }
  return n - 1;
}

Duration Rng::exponential_duration(Duration mean) {
  return Duration{static_cast<std::int64_t>(
      exponential(static_cast<double>(mean.count())))};
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  return Duration{uniform_int(lo.count(), hi.count())};
}

Duration Rng::normal_duration(Duration mean, Duration stddev) {
  const double v = normal(static_cast<double>(mean.count()),
                          static_cast<double>(stddev.count()));
  return Duration{static_cast<std::int64_t>(std::max(v, 0.0))};
}

Duration Rng::lognormal_duration(Duration median, double sigma) {
  const double mu = std::log(std::max<double>(
      1.0, static_cast<double>(median.count())));
  return Duration{static_cast<std::int64_t>(lognormal(mu, sigma))};
}

}  // namespace simba
