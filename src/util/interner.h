// String interning for event labels and other small, repeated names.
//
// The simulator kernel stores event labels as `const char*` so that
// scheduling never allocates for the (overwhelmingly common) case of a
// string-literal label. Call sites that genuinely build a label at
// runtime — e.g. net::MessageBus's per-message-type delivery label —
// intern it once and reuse the stable pointer forever after.
//
// A StringInterner is deliberately per-instance, not global: every
// fleet shard owns its own component graph (bus, MAB, endpoints), so
// per-component interners need no locking and TSan stays quiet.
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace simba::util {

/// Owns a deduplicated set of strings and hands out stable C-string
/// pointers into them. Pointers stay valid for the interner's lifetime
/// (std::set nodes never move). Not thread-safe; intended to be owned
/// by a single-threaded component alongside its Simulator.
class StringInterner {
 public:
  /// Returns a stable NUL-terminated pointer to a string equal to
  /// `text`, inserting it on first sight. O(log n) with no allocation
  /// when `text` was seen before.
  const char* intern(std::string_view text) {
    const auto it = strings_.find(text);
    if (it != strings_.end()) return it->c_str();
    return strings_.emplace(text).first->c_str();
  }

  std::size_t size() const { return strings_.size(); }

 private:
  // std::less<> enables heterogeneous string_view lookups.
  std::set<std::string, std::less<>> strings_;
};

}  // namespace simba::util
