// String interning for event labels and other small, repeated names.
//
// The simulator kernel stores event labels as `const char*` so that
// scheduling never allocates for the (overwhelmingly common) case of a
// string-literal label. Call sites that genuinely build a label at
// runtime — e.g. net::MessageBus's per-message-type delivery label —
// intern it once and reuse the stable pointer forever after.
//
// A StringInterner is deliberately per-instance, not global: every
// fleet shard owns its own component graph (bus, MAB, endpoints), so
// per-component interners need no locking and TSan stays quiet.
#pragma once

#include <deque>
#include <string>
#include <string_view>

#include "util/flat_map.h"

namespace simba::util {

/// Owns a deduplicated set of strings and hands out stable C-string
/// pointers into them. The flat-map index is keyed by string_views
/// into a std::deque backing store — the deque never moves a stored
/// std::string (SSO would otherwise invalidate c_str() on short
/// strings when a vector reallocates), so pointers stay valid for the
/// interner's lifetime. Not thread-safe; intended to be owned by a
/// single-threaded component alongside its Simulator.
class StringInterner {
 public:
  /// Returns a stable NUL-terminated pointer to a string equal to
  /// `text`, inserting it on first sight. One hash probe with no
  /// allocation when `text` was seen before.
  const char* intern(std::string_view text) {
    const auto it = index_.find(text);
    if (it != index_.end()) return it->second;
    storage_.emplace_back(text);
    const std::string& stored = storage_.back();
    index_.emplace(std::string_view(stored), stored.c_str());
    return stored.c_str();
  }

  std::size_t size() const { return storage_.size(); }

 private:
  std::deque<std::string> storage_;
  FlatMap<std::string_view, const char*> index_;
};

}  // namespace simba::util
