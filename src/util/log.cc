#include "util/log.h"

#include <atomic>
#include <cstdio>

#include "util/mutex.h"

namespace simba {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
// Serialises the default stderr sink so concurrent fleet shards can't
// interleave partial lines. Annotated so Clang's -Wthread-safety
// checks every touch; function-local so initialisation is race-free.
util::Mutex& stderr_mutex() {
  static util::Mutex mu;
  return mu;
}
// Thread-local: every fleet shard thread runs its own Simulator, which
// installs itself here for virtual-time stamping. stderr writes stay
// safe because fprintf locks the stream.
thread_local std::function<TimePoint()> g_time_source;
thread_local std::function<void(const std::string&)> g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel Log::threshold() { return g_threshold.load(std::memory_order_relaxed); }
void Log::set_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void Log::set_time_source(std::function<TimePoint()> source) {
  g_time_source = std::move(source);
}
void Log::clear_time_source() { g_time_source = nullptr; }

void Log::set_sink(std::function<void(const std::string&)> sink) {
  g_sink = std::move(sink);
}
void Log::clear_sink() { g_sink = nullptr; }

void Log::write(LogLevel level, const std::string& component,
                const std::string& message) {
  if (level < g_threshold.load(std::memory_order_relaxed)) return;
  std::string line;
  line.reserve(component.size() + message.size() + 48);
  if (g_time_source) {
    line += '[';
    line += format_time(g_time_source());
    line += "] ";
  }
  line += level_name(level);
  line += " [";
  line += component;
  line += "] ";
  line += message;
  if (g_sink) {
    g_sink(line);
  } else {
    util::MutexLock lock(stderr_mutex());
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void log_trace(const std::string& c, const std::string& m) {
  Log::write(LogLevel::kTrace, c, m);
}
void log_debug(const std::string& c, const std::string& m) {
  Log::write(LogLevel::kDebug, c, m);
}
void log_info(const std::string& c, const std::string& m) {
  Log::write(LogLevel::kInfo, c, m);
}
void log_warn(const std::string& c, const std::string& m) {
  Log::write(LogLevel::kWarn, c, m);
}
void log_error(const std::string& c, const std::string& m) {
  Log::write(LogLevel::kError, c, m);
}

}  // namespace simba
