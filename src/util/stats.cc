#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace simba {

void Summary::add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  // Welford update.
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

void Summary::merge(const Summary& other) {
  if (other.samples_.empty()) return;
  // Re-adding sample by sample (rather than the closed-form Chan
  // variance merge) keeps the result bit-identical to a sequential run
  // that saw the same samples in the same order.
  if (&other == this) {
    const std::vector<double> copy = other.samples_;
    for (const double x : copy) add(x);
    return;
  }
  for (const double x : other.samples_) add(x);
}

std::string Summary::report(const char* value_format) const {
  char val[64];
  std::string out = "n=" + std::to_string(count());
  auto append = [&](const char* label, double v) {
    std::snprintf(val, sizeof val, value_format, v);
    out += ' ';
    out += label;
    out += '=';
    out += val;
  };
  if (!empty()) {
    append("mean", mean());
    append("p50", percentile(50));
    append("p90", percentile(90));
    append("p99", percentile(99));
    append("min", min());
    append("max", max());
  }
  return out;
}

void Counters::bump(std::string_view name, std::int64_t by) {
  // Single transparent probe: after a counter's first bump, subsequent
  // bumps are allocation-free flat-map hits. The std::string key is
  // built only on the insert path (inside try_emplace).
  counts_[name] += by;
}

std::int64_t Counters::get(std::string_view name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::int64_t>> Counters::all() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counts_.size());
  for (const auto& [name, value] : counts_.sorted_items()) {
    out.emplace_back(name, value);
  }
  return out;
}

void Counters::merge(const Counters& other) {
  if (&other == this) {
    for (auto& [name, value] : counts_) value *= 2;
    return;
  }
  for (const auto& [name, value] : other.counts_) counts_[name] += value;
}

std::string Counters::report() const {
  std::string out;
  for (const auto& [name, value] : counts_.sorted_items()) {
    out += "  " + name + " = " + std::to_string(value) + "\n";
  }
  return out;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size() + 1, 0) {
  std::sort(boundaries_.begin(), boundaries_.end());
}

void Histogram::add(double x) {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())]++;
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  assert(compatible_with(other));
  if (!compatible_with(other)) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::string Histogram::render(const char* unit) const {
  if (total_ == 0) return "  (empty)\n";
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char range[64];
    if (i == 0) {
      std::snprintf(range, sizeof range, "        < %6.2f%s", boundaries_[0],
                    unit);
    } else if (i == boundaries_.size()) {
      std::snprintf(range, sizeof range, "       >= %6.2f%s",
                    boundaries_.back(), unit);
    } else {
      std::snprintf(range, sizeof range, "%6.2f .. %6.2f%s",
                    boundaries_[i - 1], boundaries_[i], unit);
    }
    const int bar =
        peak == 0 ? 0 : static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                         static_cast<double>(peak));
    std::snprintf(line, sizeof line, "  %s | %-40.*s %zu\n", range, bar,
                  "########################################", counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace simba
