// Open-addressing flat hash containers for the hot lookup paths
// (DESIGN.md §16). Every bus delivery, counter bump, and label lookup
// used to walk red-black std::map nodes with string keys; FlatMap /
// FlatSet replace those with a power-of-two bucket array of slot
// indices probed linearly, plus dense slot storage. Lookups hash a
// std::string_view (transparent hash/eq), so string-literal call sites
// never materialise a std::string; a key is copied once, on first
// insertion.
//
// Determinism contract:
//  - Hashing is a fixed FNV-1a / splitmix64 scheme, NOT std::hash —
//    std::hash is implementation-defined, and per-platform iteration
//    or probe differences would leak into anything seeded from a map.
//  - Unordered iteration (begin()/end()) walks the dense slot array in
//    insertion order as mutated by erases (erase swap-removes the last
//    slot into the hole). That order is a pure function of the
//    operation sequence — identical runs iterate identically — but it
//    is NOT sorted. Any site whose iteration order feeds a report, a
//    golden trace, a Summary's add order, or a snapshot image must use
//    sorted_items() instead, which yields key-sorted (key, value)
//    views exactly like the std::map iteration it replaces.
//  - Rehash points are a pure function of the insertion sequence
//    (power-of-two growth at 7/8 load, tombstones included), so
//    pointer/iterator invalidation is deterministic too.
//
// Iterators and references are invalidated by insert (vector growth +
// rehash) and by erase (swap-remove moves the last element). erase(it)
// returns an iterator at the same dense position, which now holds the
// swapped-in element — the idiomatic `it = m.erase(it)` sweep visits
// every element exactly once.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace simba::util {

/// Deterministic 64-bit FNV-1a over bytes. constexpr so tests can pin
/// golden hash values.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: avalanches integral keys (and combines pair
/// hashes) so power-of-two masking sees all input bits.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Transparent string hashing: std::string, std::string_view, and
/// const char* all hash through one string_view overload, so lookups
/// never copy the key.
struct StringHash {
  using is_transparent = void;
  std::uint64_t operator()(std::string_view s) const { return fnv1a(s); }
};

struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// Composed hash over (from, to) address pairs: lets the bus link and
/// partition maps be probed with a pair of string_views, so the
/// per-send partition check builds no temporary strings (the FlatMap
/// analog of the old AddressPairLess transparent comparator).
struct PairStringHash {
  using is_transparent = void;
  template <typename P>
  std::uint64_t operator()(const P& p) const {
    const std::uint64_t a = fnv1a(std::string_view(p.first));
    const std::uint64_t b = fnv1a(std::string_view(p.second));
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
  }
};

struct PairStringEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return std::string_view(a.first) == std::string_view(b.first) &&
           std::string_view(a.second) == std::string_view(b.second);
  }
};

struct IntHash {
  using is_transparent = void;
  std::uint64_t operator()(std::uint64_t v) const { return mix64(v); }
};

/// Default hash/eq selection by key type. Integral keys mix through
/// splitmix64; string-ish and (string, string) pair keys get the
/// transparent functors above.
template <typename Key>
struct FlatHashFor {
  static_assert(std::is_integral_v<Key>,
                "provide explicit Hash/Eq for this key type");
  using Hash = IntHash;
  using Eq = std::equal_to<>;
};
template <>
struct FlatHashFor<std::string> {
  using Hash = StringHash;
  using Eq = StringEq;
};
template <>
struct FlatHashFor<std::string_view> {
  using Hash = StringHash;
  using Eq = StringEq;
};
template <>
struct FlatHashFor<std::pair<std::string, std::string>> {
  using Hash = PairStringHash;
  using Eq = PairStringEq;
};

/// Open-addressing hash map: power-of-two bucket array of 32-bit slot
/// indices (linear probing, tombstones on erase, 7/8 max load counting
/// tombstones) over a dense std::vector of (key, value) slots.
///
/// Small-map mode: until the map outgrows kSmallCap entries no bucket
/// array exists at all — lookups linearly scan the dense slots (a
/// handful of string_view compares beats hashing at this size), and
/// the first insert reserves exactly kSmallCap slots. A wire-header
/// map (4-7 entries) therefore costs one allocation total, where the
/// std::map it replaced paid one node per header. Crossing kSmallCap
/// builds the bucket array; the graduation point is a pure function
/// of the insertion sequence, so determinism is unaffected.
template <typename Key, typename T,
          typename Hash = typename FlatHashFor<Key>::Hash,
          typename Eq = typename FlatHashFor<Key>::Eq>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<const Key, T>;
  using iterator = value_type*;
  using const_iterator = const value_type*;

  FlatMap() = default;

  /// Wire-header style literal construction: later duplicates win,
  /// matching `m[k] = v` applied in list order. No up-front reserve:
  /// the first insert grabs all kSmallCap slots at once, which also
  /// covers the headers a transport layer appends afterwards.
  FlatMap(std::initializer_list<std::pair<Key, T>> init) {
    for (const auto& [key, value] : init) (*this)[key] = value;
  }

  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// Drops every element but keeps the bucket array's capacity, so a
  /// clear()-then-refill cycle (per-epoch scratch maps) allocates
  /// nothing after the first epoch.
  void clear() {
    slots_.clear();
    tombstones_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), kEmpty);
  }

  void reserve(std::size_t n) {
    slots_.reserve(n);
    // A small reservation stays in small-map mode (no bucket array);
    // the initializer_list ctor relies on this to keep wire-header
    // literals at one allocation.
    if (buckets_.empty() && n <= kSmallCap) return;
    const std::size_t want = bucket_count_for(n);
    if (want > buckets_.size()) rehash(want);
  }

  /// Bucket-array size; exposed so tests can pin growth and
  /// tombstone-reuse behaviour.
  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t tombstones() const { return tombstones_; }

  iterator begin() { return slots_view(); }
  iterator end() { return slots_view() + slots_.size(); }
  const_iterator begin() const { return slots_view(); }
  const_iterator end() const { return slots_view() + slots_.size(); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  template <typename K>
  iterator find(const K& key) {
    const std::size_t s = find_slot(key);
    return s == kNpos ? end() : begin() + s;
  }
  template <typename K>
  const_iterator find(const K& key) const {
    const std::size_t s = find_slot(key);
    return s == kNpos ? end() : begin() + s;
  }
  template <typename K>
  bool contains(const K& key) const {
    return find_slot(key) != kNpos;
  }
  template <typename K>
  std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  /// std::map::emplace semantics: inserts (key, args...) unless the
  /// key is present; never overwrites. Accepts heterogeneous keys
  /// (string_view / const char* against std::string) and copies the
  /// key only when actually inserting.
  template <typename K, typename... Args>
  std::pair<iterator, bool> emplace(K&& key, Args&&... args) {
    return try_emplace(std::forward<K>(key), std::forward<Args>(args)...);
  }
  template <typename K, typename... Args>
  std::pair<iterator, bool> try_emplace(K&& key, Args&&... args) {
    if (buckets_.empty()) {
      const std::size_t s = find_slot(key);
      if (s != kNpos) return {begin() + s, false};
      if (slots_.size() < kSmallCap) {
        if (slots_.capacity() == 0) slots_.reserve(kSmallCap);
        slots_.emplace_back(Key(std::forward<K>(key)),
                            T(std::forward<Args>(args)...));
        return {begin() + (slots_.size() - 1), true};
      }
      // Fall through: prepare_insert builds the bucket array.
    }
    const InsertPos pos = prepare_insert(key);
    if (!pos.fresh) return {begin() + buckets_[pos.bucket], false};
    slots_.emplace_back(Key(std::forward<K>(key)),
                        T(std::forward<Args>(args)...));
    commit_insert(pos);
    return {begin() + (slots_.size() - 1), true};
  }
  template <typename K, typename V>
  std::pair<iterator, bool> insert_or_assign(K&& key, V&& value) {
    const auto [it, fresh] = try_emplace(std::forward<K>(key));
    it->second = std::forward<V>(value);
    return {it, fresh};
  }

  template <typename K>
  T& operator[](K&& key) {
    return try_emplace(std::forward<K>(key)).first->second;
  }

  /// Lookup that must hit (asserted by the std::map-compatible
  /// contract at call sites that probe after inserting).
  template <typename K>
  T& at(const K& key) {
    return find(key)->second;
  }
  template <typename K>
  const T& at(const K& key) const {
    return find(key)->second;
  }

  template <typename K>
  std::size_t erase(const K& key) {
    if (buckets_.empty()) {
      const std::size_t s = find_slot(key);
      if (s == kNpos) return 0;
      erase_slot_linear(s);
      return 1;
    }
    const std::size_t b = find_bucket(key);
    if (b == kNpos) return 0;
    erase_bucket(b);
    return 1;
  }
  /// Swap-remove erase: the last slot moves into the hole, and the
  /// returned iterator points at that same dense position — an
  /// `it = m.erase(it)` sweep still visits every element once. (The
  /// exact-match non-template overloads keep the heterogeneous
  /// erase(const K&) template from swallowing iterator arguments.)
  iterator erase(const_iterator pos) {
    const std::size_t slot = static_cast<std::size_t>(pos - cbegin());
    if (buckets_.empty()) {
      erase_slot_linear(slot);
    } else {
      erase_bucket(find_bucket(slots_[slot].first));
    }
    return begin() + slot;
  }
  iterator erase(iterator pos) { return erase(const_iterator(pos)); }

  /// Key-sorted view for order-sensitive iteration (reports, golden
  /// traces, Summary add order, snapshot images). Yields the same
  /// `const std::pair<const Key, T>&` sequence the std::map iteration
  /// it replaces produced.
  class SortedView {
   public:
    explicit SortedView(const FlatMap& map) {
      items_.reserve(map.size());
      for (const value_type& v : map) items_.push_back(&v);
      std::sort(items_.begin(), items_.end(),
                [](const value_type* a, const value_type* b) {
                  return a->first < b->first;
                });
    }
    class iterator {
     public:
      explicit iterator(const value_type* const* p) : p_(p) {}
      const value_type& operator*() const { return **p_; }
      const value_type* operator->() const { return *p_; }
      iterator& operator++() {
        ++p_;
        return *this;
      }
      bool operator==(const iterator& o) const { return p_ == o.p_; }
      bool operator!=(const iterator& o) const { return p_ != o.p_; }

     private:
      const value_type* const* p_;
    };
    iterator begin() const { return iterator(items_.data()); }
    iterator end() const { return iterator(items_.data() + items_.size()); }
    std::size_t size() const { return items_.size(); }

   private:
    std::vector<const value_type*> items_;
  };
  SortedView sorted_items() const { return SortedView(*this); }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  // Small-map mode threshold: no bucket array until the map holds more
  // than this many entries. 8 keeps a wire-header map to a single
  // 8-slot allocation while a linear string_view scan stays cheaper
  // than hash+probe at this size.
  static constexpr std::size_t kSmallCap = 8;

  struct InsertPos {
    std::size_t bucket = kNpos;
    bool fresh = false;
    bool was_tombstone = false;
  };

  // The dense slots store std::pair<Key, T> (assignable, so erase can
  // swap-remove) but iterators expose std::pair<const Key, T> so call
  // sites cannot mutate a key in place and corrupt the bucket array.
  // The two specialisations are layout-identical; this is the
  // standard flat-hash-map aliasing trick.
  static_assert(sizeof(std::pair<Key, T>) == sizeof(value_type));
  static_assert(alignof(std::pair<Key, T>) == alignof(value_type));
  value_type* slots_view() {
    return reinterpret_cast<value_type*>(slots_.data());
  }
  const value_type* slots_view() const {
    return reinterpret_cast<const value_type*>(slots_.data());
  }

  static std::size_t bucket_count_for(std::size_t n_slots) {
    std::size_t want = 16;
    // Smallest power of two keeping n_slots strictly under 7/8 load.
    while (n_slots * 8 >= want * 7) want *= 2;
    return want;
  }

  template <typename K>
  std::size_t find_bucket(const K& key) const {
    if (buckets_.empty()) return kNpos;
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = hash_(key) & mask;
    while (true) {
      const std::uint32_t s = buckets_[b];
      if (s == kEmpty) return kNpos;
      if (s != kTombstone && eq_(slots_[s].first, key)) return b;
      b = (b + 1) & mask;
    }
  }

  /// Slot index for `key`, or kNpos: linear scan in small-map mode,
  /// bucket probe once graduated.
  template <typename K>
  std::size_t find_slot(const K& key) const {
    if (buckets_.empty()) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (eq_(slots_[i].first, key)) return i;
      }
      return kNpos;
    }
    const std::size_t b = find_bucket(key);
    return b == kNpos ? kNpos : buckets_[b];
  }

  /// Small-map erase: same swap-remove as erase_bucket, no bucket
  /// array to repoint and no tombstone to leave behind.
  void erase_slot_linear(std::size_t slot) {
    const std::size_t last = slots_.size() - 1;
    if (slot != last) slots_[slot] = std::move(slots_[last]);
    slots_.pop_back();
  }

  /// Probes for `key`, growing/rehashing first if the next insert
  /// could exceed 7/8 load (tombstones count — they lengthen probe
  /// chains just like live entries). Returns either the existing
  /// bucket (fresh=false) or the insertion bucket: the first tombstone
  /// on the probe path if any (reuse keeps long-lived churn maps from
  /// growing without bound), else the terminating empty bucket.
  template <typename K>
  InsertPos prepare_insert(const K& key) {
    if (buckets_.empty() ||
        (slots_.size() + tombstones_ + 1) * 8 >= buckets_.size() * 7) {
      rehash(bucket_count_for(slots_.size() + 1));
    }
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = hash_(key) & mask;
    InsertPos pos;
    while (true) {
      const std::uint32_t s = buckets_[b];
      if (s == kEmpty) break;
      if (s == kTombstone) {
        if (pos.bucket == kNpos) {
          pos.bucket = b;
          pos.was_tombstone = true;
        }
      } else if (eq_(slots_[s].first, key)) {
        return InsertPos{b, false, false};
      }
      b = (b + 1) & mask;
    }
    if (pos.bucket == kNpos) pos.bucket = b;
    pos.fresh = true;
    return pos;
  }
  /// Publishes the just-emplaced last slot under the bucket chosen by
  /// prepare_insert (split so the slot emplace can construct Key/T
  /// in place between the two calls).
  void commit_insert(const InsertPos& pos) {
    if (pos.was_tombstone) --tombstones_;
    buckets_[pos.bucket] = static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void erase_bucket(std::size_t b) {
    const std::uint32_t slot = buckets_[b];
    buckets_[b] = kTombstone;
    ++tombstones_;
    const std::uint32_t last = static_cast<std::uint32_t>(slots_.size() - 1);
    if (slot != last) {
      // Find the bucket that points at the last slot *before* moving
      // it, then swap-remove and repoint.
      const std::size_t lb = find_bucket(slots_[last].first);
      slots_[slot] = std::move(slots_[last]);
      buckets_[lb] = slot;
    }
    slots_.pop_back();
  }

  void rehash(std::size_t n_buckets) {
    buckets_.assign(n_buckets, kEmpty);
    tombstones_ = 0;
    const std::size_t mask = n_buckets - 1;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      std::size_t b = hash_(slots_[i].first) & mask;
      while (buckets_[b] != kEmpty) b = (b + 1) & mask;
      buckets_[b] = i;
    }
  }

  std::vector<std::uint32_t> buckets_;
  std::vector<std::pair<Key, T>> slots_;
  std::size_t tombstones_ = 0;
  [[no_unique_address]] Hash hash_;
  [[no_unique_address]] Eq eq_;
};

/// FlatSet: the same table with key-only slots. Iteration is dense
/// insertion order (erase swap-removes); sorted_items() yields the
/// keys in sorted order for report/snapshot sites.
template <typename Key, typename Hash = typename FlatHashFor<Key>::Hash,
          typename Eq = typename FlatHashFor<Key>::Eq>
class FlatSet {
 public:
  using key_type = Key;
  using value_type = Key;
  using const_iterator = const Key*;
  using iterator = const_iterator;

  FlatSet() = default;

  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  void clear() {
    slots_.clear();
    tombstones_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), kEmpty);
  }
  std::size_t bucket_count() const { return buckets_.size(); }

  const_iterator begin() const { return slots_.data(); }
  const_iterator end() const { return slots_.data() + slots_.size(); }

  template <typename K>
  const_iterator find(const K& key) const {
    const std::size_t s = find_slot(key);
    return s == kNpos ? end() : begin() + s;
  }
  template <typename K>
  bool contains(const K& key) const {
    return find_slot(key) != kNpos;
  }
  template <typename K>
  std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  template <typename K>
  std::pair<const_iterator, bool> insert(K&& key) {
    if (buckets_.empty()) {
      const std::size_t s = find_slot(key);
      if (s != kNpos) return {begin() + s, false};
      if (slots_.size() < kSmallCap) {
        if (slots_.capacity() == 0) slots_.reserve(kSmallCap);
        slots_.emplace_back(Key(std::forward<K>(key)));
        return {begin() + (slots_.size() - 1), true};
      }
      // Fall through: graduate to a bucket array.
    }
    if (buckets_.empty() ||
        (slots_.size() + tombstones_ + 1) * 8 >= buckets_.size() * 7) {
      rehash();
    }
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = hash_(key) & mask;
    std::size_t target = kNpos;
    bool was_tombstone = false;
    while (true) {
      const std::uint32_t s = buckets_[b];
      if (s == kEmpty) break;
      if (s == kTombstone) {
        if (target == kNpos) {
          target = b;
          was_tombstone = true;
        }
      } else if (eq_(slots_[s], key)) {
        return {begin() + s, false};
      }
      b = (b + 1) & mask;
    }
    if (target == kNpos) target = b;
    slots_.emplace_back(Key(std::forward<K>(key)));
    if (was_tombstone) --tombstones_;
    buckets_[target] = static_cast<std::uint32_t>(slots_.size() - 1);
    return {begin() + (slots_.size() - 1), true};
  }
  template <typename K>
  std::pair<const_iterator, bool> emplace(K&& key) {
    return insert(std::forward<K>(key));
  }

  template <typename K>
  std::size_t erase(const K& key) {
    if (buckets_.empty()) {
      const std::size_t s = find_slot(key);
      if (s == kNpos) return 0;
      const std::size_t last = slots_.size() - 1;
      if (s != last) slots_[s] = std::move(slots_[last]);
      slots_.pop_back();
      return 1;
    }
    const std::size_t b = find_bucket(key);
    if (b == kNpos) return 0;
    const std::uint32_t slot = buckets_[b];
    buckets_[b] = kTombstone;
    ++tombstones_;
    const std::uint32_t last = static_cast<std::uint32_t>(slots_.size() - 1);
    if (slot != last) {
      const std::size_t lb = find_bucket(slots_[last]);
      slots_[slot] = std::move(slots_[last]);
      buckets_[lb] = slot;
    }
    slots_.pop_back();
    return 1;
  }

  /// Key-sorted view, mirroring FlatMap::sorted_items().
  class SortedView {
   public:
    explicit SortedView(const FlatSet& set) {
      items_.reserve(set.size());
      for (const Key& k : set) items_.push_back(&k);
      std::sort(items_.begin(), items_.end(),
                [](const Key* a, const Key* b) { return *a < *b; });
    }
    class iterator {
     public:
      explicit iterator(const Key* const* p) : p_(p) {}
      const Key& operator*() const { return **p_; }
      const Key* operator->() const { return *p_; }
      iterator& operator++() {
        ++p_;
        return *this;
      }
      bool operator==(const iterator& o) const { return p_ == o.p_; }
      bool operator!=(const iterator& o) const { return p_ != o.p_; }

     private:
      const Key* const* p_;
    };
    iterator begin() const { return iterator(items_.data()); }
    iterator end() const { return iterator(items_.data() + items_.size()); }
    std::size_t size() const { return items_.size(); }

   private:
    std::vector<const Key*> items_;
  };
  SortedView sorted_items() const { return SortedView(*this); }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kSmallCap = 8;  // same rationale as FlatMap

  template <typename K>
  std::size_t find_bucket(const K& key) const {
    if (buckets_.empty()) return kNpos;
    const std::size_t mask = buckets_.size() - 1;
    std::size_t b = hash_(key) & mask;
    while (true) {
      const std::uint32_t s = buckets_[b];
      if (s == kEmpty) return kNpos;
      if (s != kTombstone && eq_(slots_[s], key)) return b;
      b = (b + 1) & mask;
    }
  }

  template <typename K>
  std::size_t find_slot(const K& key) const {
    if (buckets_.empty()) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (eq_(slots_[i], key)) return i;
      }
      return kNpos;
    }
    const std::size_t b = find_bucket(key);
    return b == kNpos ? kNpos : buckets_[b];
  }

  void rehash() {
    std::size_t want = buckets_.empty() ? 16 : buckets_.size();
    while ((slots_.size() + 1) * 8 >= want * 7) want *= 2;
    buckets_.assign(want, kEmpty);
    tombstones_ = 0;
    const std::size_t mask = want - 1;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      std::size_t b = hash_(slots_[i]) & mask;
      while (buckets_[b] != kEmpty) b = (b + 1) & mask;
      buckets_[b] = i;
    }
  }

  std::vector<std::uint32_t> buckets_;
  std::vector<Key> slots_;
  std::size_t tombstones_ = 0;
  [[no_unique_address]] Hash hash_;
  [[no_unique_address]] Eq eq_;
};

}  // namespace simba::util
