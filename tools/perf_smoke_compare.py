#!/usr/bin/env python3
"""Compares perf-smoke bench JSON against the checked-in baselines.

CI's perf-smoke job runs bench_kernel and bench_portal_scale with
--json and hands each output here next to its repo-root baseline
(BENCH_kernel.json / BENCH_portal_scale.json). Throughput-style keys
are compared at a relative tolerance (default +/-15%); every breach is
surfaced as a GitHub `::warning::` annotation and a row in the step
summary, but the exit code is always 0 — shared runners are far too
noisy to gate merges on wall-clock numbers (ci.yml keeps the job
continue-on-error for the same reason).

Usage:
  perf_smoke_compare.py --tolerance 0.15 \
      --pair BENCH_kernel.json:perf-artifacts/BENCH_kernel.json \
      --pair BENCH_portal_scale.json:perf-artifacts/BENCH_portal_scale.json

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import sys

# Keys worth comparing. Rates regress when the code slows down;
# peak RSS regresses when something starts hoarding memory; the storm
# bench's critical-p99 speedup regresses when the overload defenses
# stop protecting the critical path. Identity and count keys (seed,
# users, alerts_sent, ...) are deterministic and belong to correctness
# tests, not a perf smoke.
COMPARED_SUFFIXES = ("_per_sec",)
COMPARED_KEYS = (
    "events_per_sec",
    "peak_rss_bytes",
    "critical_p99_speedup_x",
    "map_ops_per_sec",
)


def compared(key):
    return key in COMPARED_KEYS or any(
        key.endswith(suffix) for suffix in COMPARED_SUFFIXES
    )


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_pair(baseline_path, current_path, tolerance):
    """Returns a list of (key, base, cur, ratio, breached) rows."""
    baseline = load(baseline_path)
    current = load(current_path)
    rows = []
    for key, base in sorted(baseline.items()):
        if not compared(key) or not isinstance(base, (int, float)) or base == 0:
            continue
        cur = current.get(key)
        if not isinstance(cur, (int, float)):
            rows.append((key, base, None, None, True))
            continue
        ratio = cur / base
        # Lower throughput and higher RSS are the bad directions, but a
        # large move either way deserves eyes: an unexplained speedup
        # usually means the bench stopped measuring what it used to.
        breached = abs(ratio - 1.0) > tolerance
        rows.append((key, base, cur, ratio, breached))
    return rows


def fmt(value):
    if value is None:
        return "missing"
    if isinstance(value, float) and abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:g}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pair",
        action="append",
        required=True,
        metavar="BASELINE:CURRENT",
        help="baseline and current JSON paths, colon-separated",
    )
    parser.add_argument("--tolerance", type=float, default=0.15)
    args = parser.parse_args()

    summary_lines = [
        "### Perf smoke vs baselines",
        "",
        f"Tolerance: +/-{args.tolerance:.0%} (advisory, never blocks)",
        "",
        "| bench | key | baseline | current | ratio | |",
        "|---|---|---|---|---|---|",
    ]
    breaches = 0
    for pair in args.pair:
        baseline_path, _, current_path = pair.partition(":")
        if not current_path:
            print(f"::warning::perf-smoke: bad --pair {pair!r}")
            breaches += 1
            continue
        try:
            rows = compare_pair(baseline_path, current_path, args.tolerance)
        except (OSError, ValueError) as error:
            print(f"::warning::perf-smoke: cannot compare {pair}: {error}")
            breaches += 1
            continue
        bench = os.path.basename(baseline_path)
        for key, base, cur, ratio, breached in rows:
            mark = ""
            if breached:
                breaches += 1
                mark = ":warning:"
                print(
                    f"::warning::perf-smoke: {bench} {key} "
                    f"{fmt(cur)} vs baseline {fmt(base)} "
                    f"({'n/a' if ratio is None else f'{ratio:.2f}x'}, "
                    f"tolerance +/-{args.tolerance:.0%})"
                )
            summary_lines.append(
                f"| {bench} | {key} | {fmt(base)} | {fmt(cur)} | "
                f"{'n/a' if ratio is None else f'{ratio:.2f}x'} | {mark} |"
            )

    summary_lines.append("")
    summary_lines.append(
        f"{breaches} key(s) outside tolerance."
        if breaches
        else "All compared keys within tolerance."
    )
    summary = "\n".join(summary_lines)
    print(summary)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write(summary + "\n")
    return 0  # advisory by design


if __name__ == "__main__":
    sys.exit(main())
