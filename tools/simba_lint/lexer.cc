#include "lexer.h"

#include <cctype>
#include <sstream>

namespace simba::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

// Punctuation pairs kept as one token.
bool is_two_char_punct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>');
}

}  // namespace

LexedFile lex(const std::string& content) {
  LexedFile file;
  std::istringstream in(content);
  std::string raw;
  enum class State { kCode, kString, kChar, kBlock };
  State state = State::kCode;  // block comments carry across lines
  for (int line_no = 1; std::getline(in, raw); ++line_no) {
    LexedLine lexed;
    lexed.raw = raw;
    lexed.code.assign(raw.size(), ' ');
    lexed.tokens.assign(raw.size(), ' ');
    // Strings and char literals do not span lines in this codebase;
    // an unterminated one resets at the newline rather than eating
    // the rest of the file.
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    std::string ident;   // word token being accumulated
    int ident_line = line_no;
    std::string literal;  // string-literal contents being accumulated
    auto flush_ident = [&] {
      if (ident.empty()) return;
      file.tokens.push_back({Token::Kind::kIdent, ident_line, ident});
      ident.clear();
    };
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            flush_ident();
            lexed.comment.append(raw.substr(i + 2));
            i = raw.size();  // rest of the line is comment
            break;
          }
          if (c == '/' && next == '*') {
            flush_ident();
            state = State::kBlock;
            ++i;
            break;
          }
          if (c == '"') {
            flush_ident();
            state = State::kString;
            lexed.code[i] = c;
            literal.clear();
            break;
          }
          if (c == '\'') {
            flush_ident();
            state = State::kChar;
            lexed.code[i] = c;
            break;
          }
          lexed.code[i] = c;
          lexed.tokens[i] = c;
          if (is_ident_char(c)) {
            if (ident.empty()) ident_line = line_no;
            ident.push_back(c);
          } else {
            flush_ident();
            if (!std::isspace(static_cast<unsigned char>(c))) {
              if (is_two_char_punct(c, next)) {
                file.tokens.push_back(
                    {Token::Kind::kPunct, line_no, std::string{c, next}});
                lexed.code[i + 1] = next;
                lexed.tokens[i + 1] = next;
                ++i;
              } else {
                file.tokens.push_back(
                    {Token::Kind::kPunct, line_no, std::string(1, c)});
              }
            }
          }
          break;
        case State::kString:
          lexed.code[i] = c;
          if (c == '\\') {
            if (i + 1 < raw.size()) {
              lexed.code[i + 1] = next;
              literal.push_back(c);
              literal.push_back(next);
            }
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            file.tokens.push_back({Token::Kind::kString, line_no, literal});
            literal.clear();
          } else {
            literal.push_back(c);
          }
          break;
        case State::kChar:
          lexed.code[i] = c;
          if (c == '\\') {
            if (i + 1 < raw.size()) lexed.code[i + 1] = next;
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kBlock:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            lexed.comment.push_back(c);
          }
          break;
      }
    }
    flush_ident();
    file.lines.push_back(std::move(lexed));
  }
  return file;
}

}  // namespace simba::lint
