#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

namespace simba::lint {
namespace {

// ---------------------------------------------------------------------------
// Layering DAG. Rank strictly increases up the stack; a file may
// include its own directory or any strictly lower rank. Same-rank
// sibling directories are independent by construction (no sideways
// includes), which is what keeps this a DAG rather than a partial
// order with cycles. bench/tests/examples sit above everything.
// ---------------------------------------------------------------------------
constexpr std::array<std::pair<std::string_view, int>, 19> kLayerRanks{{
    {"util", 0},
    {"xml", 1},
    {"sim", 1},
    {"net", 2},
    {"gui", 2},
    {"im", 3},
    {"email", 3},
    {"sms", 4},
    {"automation", 4},
    {"sss", 4},
    {"core", 5},
    {"aladdin", 6},
    {"wish", 6},
    {"assistant", 6},
    {"proxy", 6},
    {"fleet", 7},
    {"bench", 8},
    {"tests", 8},
    {"examples", 8},
}};

int layer_rank(std::string_view module) {
  for (const auto& [name, rank] : kLayerRanks) {
    if (name == module) return rank;
  }
  return -1;
}

// Files allowed to read real clocks: the one shim everything else
// must route timing through.
constexpr std::array<std::string_view, 1> kDeterminismAllowlist{
    "src/util/wall_clock.cc",
};

// Nondeterministic calls: identifier immediately followed by '(' and
// not reached through member access ('.x(' / '->x(').
constexpr std::array<std::string_view, 8> kBannedCalls{
    "time",   "rand",          "srand",        "getenv",
    "clock",  "gettimeofday",  "clock_gettime", "timespec_get",
};

// Nondeterministic types/clocks, matched as whole identifiers.
constexpr std::array<std::string_view, 4> kBannedTokens{
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "random_device",
};

// Raw synchronisation primitives banned outside util/ (util/mutex.h
// wraps them with Clang thread-safety annotations).
constexpr std::array<std::string_view, 12> kBannedSync{
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
};

// Logging calls whose message argument must not be built eagerly:
// below the threshold they discard the string they just allocated.
// SIMBA_LOG_DEBUG/SIMBA_LOG_TRACE (util/log.h) evaluate the message
// expression only when the level is enabled.
constexpr std::array<std::string_view, 2> kLazyLogCalls{
    "log_debug",
    "log_trace",
};

// Argument patterns that mean "this line allocates to build the
// message": concatenation, formatting, number-to-string conversion.
constexpr std::array<std::string_view, 2> kAllocCalls{
    "strformat",
    "to_string",
};

// Wall-clock sources that must never stamp a lifecycle-trace span:
// merged traces are compared bit-for-bit across runs and thread
// counts, so spans carry virtual time only (util/trace.h).
constexpr std::array<std::string_view, 2> kWallClockSources{
    "WallTimer",
    "wall_seconds",
};

constexpr std::string_view kOrderedWaiver = "simba-lint: ordered";
constexpr std::string_view kBoundedWaiver = "simba-lint: bounded(";

// Modules on the alert hot path where an unbounded queue member is an
// overload hazard: a storm fills it without limit unless something
// sheds (DESIGN.md §14).
constexpr std::array<std::string_view, 2> kBoundedModules{"core", "net"};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Strips comments (and optionally string/char literals) from one line,
// preserving column positions by blanking with spaces. `in_block`
// carries /* ... */ state across lines.
std::string strip(const std::string& line, bool strip_strings,
                  bool& in_block) {
  std::string out(line.size(), ' ');
  enum class State { kCode, kString, kChar, kBlock } state =
      in_block ? State::kBlock : State::kCode;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          in_block = false;
          return out;  // rest of the line is comment
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
          break;
        }
        if (c == '"') {
          state = State::kString;
          if (!strip_strings) out[i] = c;
          break;
        }
        if (c == '\'') {
          state = State::kChar;
          if (!strip_strings) out[i] = c;
          break;
        }
        out[i] = c;
        break;
      case State::kString:
        if (!strip_strings) out[i] = c;
        if (c == '\\') {
          if (!strip_strings && i + 1 < line.size()) out[i + 1] = next;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (!strip_strings) out[i] = c;
        if (c == '\\') {
          if (!strip_strings && i + 1 < line.size()) out[i + 1] = next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
    }
  }
  in_block = state == State::kBlock;
  return out;
}

// Extracts `dir` from an `#include "dir/..."` directive, or "" if the
// line is not a quoted include with a path separator.
std::string include_module(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return "";
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) return "";
  i = line.find('"', i + 7);
  if (i == std::string::npos) return "";
  const std::size_t end = line.find('"', i + 1);
  const std::size_t slash = line.find('/', i + 1);
  if (end == std::string::npos || slash == std::string::npos || slash > end) {
    return "";
  }
  return line.substr(i + 1, slash - i - 1);
}

// True when `token` appears in `text` as a whole word (no identifier
// character on either side).
bool contains_token(const std::string& text, std::string_view token,
                    std::size_t* pos_out = nullptr) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) {
      if (pos_out) *pos_out = pos;
      return true;
    }
    ++pos;
  }
  return false;
}

// True when `name` appears as a free-function call: whole identifier,
// followed by '(', not reached via '.' or '->'.
bool contains_call(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      std::size_t paren = text.find_first_not_of(" \t", after);
      const bool calls = paren != std::string::npos && text[paren] == '(';
      const bool member =
          (pos >= 1 && text[pos - 1] == '.') ||
          (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
      if (calls && !member) return true;
    }
    ++pos;
  }
  return false;
}

// Position just past the '(' of a free-function call of `name` (see
// contains_call), or npos when the line has no such call.
std::size_t find_call_args(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      const std::size_t paren = text.find_first_not_of(" \t", after);
      const bool calls = paren != std::string::npos && text[paren] == '(';
      const bool member =
          (pos >= 1 && text[pos - 1] == '.') ||
          (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
      if (calls && !member) return paren + 1;
    }
    ++pos;
  }
  return std::string::npos;
}

// True when `name` appears as a call, member or free: whole identifier
// followed by '('. Trace::emit is normally reached as `trace_->emit(`,
// which contains_call deliberately skips.
bool contains_any_call(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      const std::size_t paren = text.find_first_not_of(" \t", after);
      if (paren != std::string::npos && text[paren] == '(') return true;
    }
    ++pos;
  }
  return false;
}

std::string file_module(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    const std::size_t slash = rel_path.find('/', 4);
    if (slash != std::string::npos) return rel_path.substr(4, slash - 4);
    return "";  // loose file directly under src/
  }
  const std::size_t slash = rel_path.find('/');
  return slash == std::string::npos ? "" : rel_path.substr(0, slash);
}

bool in_allowlist(const std::string& rel_path) {
  return std::find(kDeterminismAllowlist.begin(), kDeterminismAllowlist.end(),
                   rel_path) != kDeterminismAllowlist.end();
}

}  // namespace

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message;
  return os.str();
}

std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                  const std::string& content) {
  std::vector<Diagnostic> diags;
  const std::string module = file_module(rel_path);
  const int rank = layer_rank(module);
  const bool in_src = rel_path.rfind("src/", 0) == 0;
  const bool determinism_applies = in_src && !in_allowlist(rel_path);
  const bool sync_applies = in_src && module != "util";

  auto emit = [&](int line, const char* rule, std::string message) {
    diags.push_back(Diagnostic{rel_path, line, rule, std::move(message)});
  };

  if (in_src && rank < 0) {
    emit(1, "layer",
         "directory 'src/" + module +
             "' is not registered in the layering DAG (tools/simba_lint)");
  }

  std::istringstream in(content);
  std::string raw;
  std::string prev_raw;
  bool in_block = false;
  for (int line_no = 1; std::getline(in, raw); ++line_no) {
    bool block_for_code = in_block;
    const std::string code = strip(raw, /*strip_strings=*/false,
                                   block_for_code);
    bool block_for_tokens = in_block;
    const std::string tokens =
        strip(raw, /*strip_strings=*/true, block_for_tokens);
    in_block = block_for_code;

    // [layer] — includes must point down the DAG.
    const std::string target = include_module(code);
    if (!target.empty() && target != module) {
      const int target_rank = layer_rank(target);
      if (target_rank < 0) {
        emit(line_no, "layer",
             "include of unknown module '" + target +
                 "/' — register it in the layering DAG or fix the path");
      } else if (rank >= 0 && target_rank >= rank) {
        emit(line_no, "layer",
             "layer '" + module + "' (rank " + std::to_string(rank) +
                 ") may not include '" + target + "/' (rank " +
                 std::to_string(target_rank) +
                 "): includes must point strictly down the layering DAG");
      }
    }

    // [determinism] — bans in simulation code (src/ outside allowlist).
    if (determinism_applies) {
      for (const std::string_view name : kBannedCalls) {
        if (contains_call(tokens, name)) {
          emit(line_no, "determinism",
               "banned nondeterministic call '" + std::string(name) +
                   "(' in simulation code; use util/rng.h for randomness "
                   "and util/wall_clock.h for timing-only wall clocks");
        }
      }
      for (const std::string_view token : kBannedTokens) {
        if (contains_token(tokens, token)) {
          emit(line_no, "determinism",
               "banned real-clock/entropy source '" + std::string(token) +
                   "' in simulation code; virtual time comes from the "
                   "Simulator, wall timing from util/wall_clock.h");
        }
      }
      const bool unordered_use = contains_token(tokens, "unordered_map") ||
                                 contains_token(tokens, "unordered_set") ||
                                 contains_token(tokens, "unordered_multimap") ||
                                 contains_token(tokens, "unordered_multiset");
      // Usage, not the <unordered_map> include line itself.
      const bool is_include_line =
          code.find("#include") != std::string::npos;
      if (unordered_use && !is_include_line) {
        const bool waived =
            raw.find(kOrderedWaiver) != std::string::npos ||
            prev_raw.find(kOrderedWaiver) != std::string::npos;
        if (!waived) {
          emit(line_no, "determinism",
               "std::unordered_{map,set} use needs a '// simba-lint: "
               "ordered' waiver (same or previous line) asserting its "
               "iteration order is never observed; otherwise use "
               "std::map/std::set so merged reports stay deterministic");
        }
      }
    }

    // [sync] — raw synchronisation outside util/.
    if (sync_applies) {
      for (const std::string_view token : kBannedSync) {
        if (contains_token(tokens, token)) {
          emit(line_no, "sync",
               "raw '" + std::string(token) +
                   "' is banned outside util/; use util::Mutex / "
                   "util::MutexLock (util/mutex.h) so Clang thread-safety "
                   "annotations cover it");
        }
      }
    }

    // [bounded] — queue containers on the alert path must name their
    // bound. A raw std::deque/std::queue in core/ or net/ grows without
    // limit under storm load unless something sheds; the waiver names
    // the bound and the shed path so the claim is reviewable.
    if (in_src && std::find(kBoundedModules.begin(), kBoundedModules.end(),
                            module) != kBoundedModules.end()) {
      const bool queue_use = contains_token(tokens, "std::deque") ||
                             contains_token(tokens, "std::queue");
      const bool is_include_line = code.find("#include") != std::string::npos;
      if (queue_use && !is_include_line) {
        const bool waived =
            raw.find(kBoundedWaiver) != std::string::npos ||
            prev_raw.find(kBoundedWaiver) != std::string::npos;
        if (!waived) {
          emit(line_no, "bounded",
               "std::deque/std::queue on the alert path needs a "
               "'// simba-lint: bounded(<bound, shed path>)' waiver (same "
               "or previous line) naming the bound that keeps it from "
               "growing without limit under storm load");
        }
      }
    }

    // [alloc] — debug/trace log messages must not be built eagerly.
    // A log_debug/log_trace call whose argument text (same line)
    // concatenates, formats, or stringifies allocates the message even
    // when the level is off; the SIMBA_LOG_* macros defer that work.
    if (in_src) {
      for (const std::string_view name : kLazyLogCalls) {
        const std::size_t args = find_call_args(tokens, name);
        if (args == std::string::npos) continue;
        const std::string rest = tokens.substr(args);
        bool allocates = rest.find('+') != std::string::npos;
        for (const std::string_view call : kAllocCalls) {
          allocates = allocates || contains_any_call(rest, call);
        }
        if (allocates) {
          emit(line_no, "alloc",
               "message for '" + std::string(name) +
                   "(' is built eagerly (+/strformat/to_string in the "
                   "argument list) and allocates even when the level is "
                   "disabled; use " +
                   (name == "log_trace" ? "SIMBA_LOG_TRACE"
                                        : "SIMBA_LOG_DEBUG") +
                   " (util/log.h) so the message is only built when it "
                   "will be written");
        }
      }
    }

    // [trace] — span timestamps must come from the sim clock. A line
    // that touches the trace API (an emit(...) call or the Span type)
    // may not also mention a wall-clock source.
    if (in_src) {
      const bool span_line = contains_token(tokens, "Span") ||
                             contains_any_call(tokens, "emit");
      if (span_line) {
        for (const std::string_view token : kWallClockSources) {
          if (contains_token(tokens, token)) {
            emit(line_no, "trace",
                 "trace span stamped from wall-clock source '" +
                     std::string(token) +
                     "'; spans carry virtual time only "
                     "(sim::Simulator::now) so merged traces stay "
                     "bit-identical across runs and thread counts");
          }
        }
      }
    }

    prev_raw = raw;
  }
  return diags;
}

LintResult lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  LintResult result;
  std::vector<fs::path> files;
  for (const char* top : {"src", "bench", "tests", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::vector<std::string> rel_paths;
  rel_paths.reserve(files.size());
  for (const fs::path& p : files) {
    rel_paths.push_back(fs::relative(p, root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    ++result.files_scanned;
    std::vector<Diagnostic> diags = lint_file(rel, buf.str());
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(diags.begin()),
                              std::make_move_iterator(diags.end()));
  }
  return result;
}

int run_cli(int argc, const char* const* argv, std::string& out) {
  std::filesystem::path root = ".";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      out += "usage: simba_lint [--root DIR] [--quiet]\n";
      return 0;
    } else {
      out += "simba_lint: unknown argument '" + std::string(arg) + "'\n";
      return 2;
    }
  }
  const LintResult result = lint_tree(root);
  if (result.files_scanned == 0) {
    out += "simba_lint: no .h/.cc files under '" + root.string() +
           "' (wrong --root?)\n";
    return 2;
  }
  for (const Diagnostic& d : result.diagnostics) {
    out += format(d);
    out += '\n';
  }
  if (!quiet) {
    out += "simba-lint: " + std::to_string(result.files_scanned) +
           " files scanned, " + std::to_string(result.diagnostics.size()) +
           " violation(s)\n";
  }
  return result.diagnostics.empty() ? 0 : 1;
}

}  // namespace simba::lint
