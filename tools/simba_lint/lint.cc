// Orchestrator: per-file analysis (lexer + line rules + site
// extraction) and the tree driver that layers the repo-wide passes
// (counter registry, include graph) on top. Everything is built in
// one pass: each file is read and lexed exactly once, the registry
// and include graph exactly once per run.
#include "lint.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "include_graph.h"
#include "registry.h"
#include "rules.h"
#include "sarif.h"

namespace simba::lint {
namespace {

// ---------------------------------------------------------------------------
// Layering DAG. Rank strictly increases up the stack; a file may
// include its own directory or any strictly lower rank. Same-rank
// sibling directories are independent by construction (no sideways
// includes), which is what keeps this a DAG rather than a partial
// order with cycles. bench/tests/examples sit above everything.
// ---------------------------------------------------------------------------
constexpr std::array<std::pair<std::string_view, int>, 19> kLayerRanks{{
    {"util", 0},
    {"xml", 1},
    {"sim", 1},
    {"net", 2},
    {"gui", 2},
    {"im", 3},
    {"email", 3},
    {"sms", 4},
    {"automation", 4},
    {"sss", 4},
    {"core", 5},
    {"aladdin", 6},
    {"wish", 6},
    {"assistant", 6},
    {"proxy", 6},
    {"fleet", 7},
    {"bench", 8},
    {"tests", 8},
    {"examples", 8},
}};

// Where the [counters] registry lives, relative to the lint root.
constexpr std::string_view kRegistryPath = "src/util/counter_registry.def";

std::string file_module(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    const std::size_t slash = rel_path.find('/', 4);
    if (slash != std::string::npos) return rel_path.substr(4, slash - 4);
    return "";  // loose file directly under src/
  }
  const std::size_t slash = rel_path.find('/');
  return slash == std::string::npos ? "" : rel_path.substr(0, slash);
}

Tree file_tree(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) return Tree::kSrc;
  if (rel_path.rfind("tests/", 0) == 0) return Tree::kTests;
  if (rel_path.rfind("bench/", 0) == 0) return Tree::kBench;
  if (rel_path.rfind("tools/", 0) == 0) return Tree::kTools;
  // examples/ and anything unrecognised: top of the DAG, no src-only
  // rule families.
  return Tree::kExamples;
}

bool diag_order(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

}  // namespace

int layer_rank(std::string_view module) {
  for (const auto& [name, rank] : kLayerRanks) {
    if (name == module) return rank;
  }
  return -1;
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": "
     << (d.severity == Severity::kError ? "error" : "warning") << ": ["
     << d.rule << "] " << d.message;
  return os.str();
}

FileAnalysis analyze_file(std::string rel_path, const std::string& content,
                          bool with_layer) {
  FileAnalysis fa;
  fa.rel_path = std::move(rel_path);
  fa.tree = file_tree(fa.rel_path);
  fa.module = file_module(fa.rel_path);
  fa.rank = layer_rank(fa.module);
  fa.lex = lex(content);
  run_line_rules(fa, with_layer);
  collect_counter_sites(fa);
  return fa;
}

std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                  const std::string& content) {
  return analyze_file(rel_path, content, /*with_layer=*/true).diags;
}

LintResult lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  LintResult result;
  std::vector<std::string> rel_paths;
  for (const char* top : {"src", "bench", "tests", "examples", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      // Fixture trees hold deliberate violations; they are linted by
      // their own tests, not as part of the repo.
      if (it->is_directory() && it->path().filename() == "testdata") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        rel_paths.push_back(fs::relative(it->path(), root).generic_string());
      }
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<FileAnalysis> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    ++result.files_scanned;
    files.push_back(analyze_file(rel, buf.str(), /*with_layer=*/false));
  }

  for (const FileAnalysis& fa : files) {
    result.diagnostics.insert(result.diagnostics.end(), fa.diags.begin(),
                              fa.diags.end());
  }

  // [counters]: only when the tree ships a registry (fixture trees for
  // the other rules don't, and their counter-free sources stay clean).
  const fs::path def_path = root / kRegistryPath;
  if (fs::is_regular_file(def_path)) {
    std::ifstream in(def_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const CounterRegistry registry = CounterRegistry::parse(
        buf.str(), std::string(kRegistryPath), result.diagnostics);
    check_counters(registry, std::string(kRegistryPath), files,
                   result.diagnostics);
  }

  run_include_graph(files, result.diagnostics);

  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   diag_order);
  for (const Diagnostic& d : result.diagnostics) {
    ++(d.severity == Severity::kError ? result.error_count
                                      : result.warning_count);
  }
  return result;
}

int run_cli(int argc, const char* const* argv, std::string& out) {
  std::filesystem::path root = ".";
  std::string sarif_path;
  bool quiet = false;
  bool dump_counters = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--dump-counters") {
      dump_counters = true;
    } else if (arg == "--help" || arg == "-h") {
      out += "usage: simba_lint [--root DIR] [--quiet] [--sarif FILE] "
             "[--dump-counters]\n";
      return 0;
    } else {
      out += "simba_lint: unknown argument '" + std::string(arg) + "'\n";
      return 2;
    }
  }

  if (dump_counters) {
    // Registry-authoring aid: every distinct counter literal with its
    // site counts, "name bump=N get=M [prefix]" sorted by name.
    namespace fs = std::filesystem;
    struct Tally {
      int bumps = 0;
      int gets = 0;
      bool prefix = false;
    };
    std::map<std::string, Tally> tallies;
    int files_seen = 0;
    for (const char* top : {"src", "bench", "tests", "examples", "tools"}) {
      const fs::path dir = root / top;
      if (!fs::is_directory(dir)) continue;
      for (auto it = fs::recursive_directory_iterator(dir);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == "testdata") {
          it.disable_recursion_pending();
          continue;
        }
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
        std::ifstream in(it->path(), std::ios::binary);
        if (!in) continue;
        std::ostringstream buf;
        buf << in.rdbuf();
        ++files_seen;
        const FileAnalysis fa =
            analyze_file(fs::relative(it->path(), root).generic_string(),
                         buf.str(), /*with_layer=*/false);
        for (const CounterSite& site : fa.counter_sites) {
          Tally& tally = tallies[site.name];
          ++(site.is_bump ? tally.bumps : tally.gets);
          tally.prefix = tally.prefix || site.is_prefix;
        }
      }
    }
    if (files_seen == 0) {
      out += "simba_lint: no .h/.cc files under '" + root.string() +
             "' (wrong --root?)\n";
      return 2;
    }
    for (const auto& [name, tally] : tallies) {
      out += name + " bump=" + std::to_string(tally.bumps) +
             " get=" + std::to_string(tally.gets) +
             (tally.prefix ? " prefix" : "") + "\n";
    }
    return 0;
  }

  const LintResult result = lint_tree(root);
  if (result.files_scanned == 0) {
    out += "simba_lint: no .h/.cc files under '" + root.string() +
           "' (wrong --root?)\n";
    return 2;
  }
  for (const Diagnostic& d : result.diagnostics) {
    out += format(d);
    out += '\n';
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif_out(sarif_path, std::ios::binary);
    if (!sarif_out) {
      out += "simba_lint: cannot write SARIF to '" + sarif_path + "'\n";
      return 2;
    }
    sarif_out << to_sarif(result.diagnostics);
  }
  if (!quiet) {
    out += "simba-lint: " + std::to_string(result.files_scanned) +
           " files scanned, " + std::to_string(result.error_count) +
           " violation(s)";
    if (result.warning_count > 0) {
      out += ", " + std::to_string(result.warning_count) + " warning(s)";
    }
    out += "\n";
  }
  return result.error_count == 0 ? 0 : 1;
}

}  // namespace simba::lint
