// simba-lint — the repo's custom static-analysis pass: a multi-pass
// repo analyzer built on one shared tokenizer (lexer.h). Files are
// lexed once; line-oriented rules read the per-line stripped views,
// and the repo-wide passes (counter registry, include graph, waiver
// audit) read the cross-line token stream, all motivated by the
// fleet/chaos determinism invariant (merged reports must be
// bit-identical across seeds and thread counts), the layered
// architecture, and the extended conservation identity DESIGN.md
// documents:
//
//   [layer]       src/ directories form a DAG (util at the bottom,
//                 fleet at the top, bench/tests/examples above
//                 everything); an #include that points up or sideways
//                 across the DAG is an error. The repo-wide include
//                 graph additionally verifies the DAG transitively
//                 and reports file-level include cycles.
//   [include]     IWYU-lite: a quoted repo include whose header
//                 exports no name the including file ever mentions is
//                 a warning (the include is dead weight).
//   [determinism] real clocks, ambient randomness, and environment
//                 reads are banned in src/ outside the allowlisted
//                 util/wall_clock.cc shim; std::unordered_{map,set}
//                 use must carry a "// simba-lint: ordered" waiver
//                 asserting its iteration order is never observed.
//   [sync]        raw std::mutex/lock_guard/condition_variable are
//                 banned outside util/ — use util::Mutex/MutexLock
//                 (util/mutex.h), which carry Clang thread-safety
//                 annotations.
//   [bounded]     queue containers on the alert hot path (core/,
//                 net/) must carry a "// simba-lint: bounded(...)"
//                 waiver naming the bound and its shed path.
//   [flatmap]     string-keyed std::map in the hot directories
//                 (core/, net/, util/, fleet/) is an error — use
//                 util::FlatMap (util/flat_map.h) with sorted_items()
//                 where order matters, or carry a "// simba-lint:
//                 ordered" waiver asserting the sorted iteration
//                 itself is load-bearing (wire framing, config dumps,
//                 report order).
//   [trace]       lifecycle-trace spans carry virtual time only: a
//                 src/ line that emits or builds a util::Trace span
//                 (an emit(...) call or the Span type) may not
//                 mention a wall-clock source (util::WallTimer /
//                 wall_seconds) — wall-stamped spans would break the
//                 bit-identical merged-trace guarantee.
//   [alloc]       debug/trace log messages must be built lazily: a
//                 src/ log_debug/log_trace call whose argument text
//                 concatenates ('+'), formats (strformat), or
//                 stringifies (to_string) allocates the message even
//                 when the level is disabled — use SIMBA_LOG_DEBUG /
//                 SIMBA_LOG_TRACE (util/log.h), which evaluate the
//                 message expression only when it will be written.
//   [counters]    every Counters::bump("...") / ::get("...") literal
//                 must resolve to an entry in the checked-in registry
//                 src/util/counter_registry.def (name, owning
//                 subsystem, conservation-identity role, one-line
//                 doc). Unregistered names are errors with an
//                 edit-distance hint; a registered name with no bump
//                 site anywhere (and no 'dynamic' mark) is an error
//                 too, so the registry cannot rot.
//   [waiver]      a waiver comment that no longer suppresses any
//                 diagnostic is itself an error — waivers cannot
//                 outlive their reason.
//
// Per-tree rule applicability. The tree walk covers src/, tests/,
// bench/, examples/, and tools/ (skipping any testdata/ fixture
// directory); rules apply per top-level tree:
//
//   rule          src/                tests/ bench/ examples/  tools/
//   [layer]       yes                 yes (rank 8: anything)   —
//   [include]     yes                 —                        yes
//   [determinism] yes (allowlist)     —                        —
//   [sync]        yes (outside util/) —                        —
//   [bounded]     core/ + net/        —                        —
//   [flatmap]     core/ net/ util/ fleet/ —                     —
//   [trace]       yes                 —                        —
//   [alloc]       yes                 —                        —
//   [counters]    yes                 yes                      yes
//   [waiver]      yes                 yes                      yes
//
// Tests, benches, and examples exercise nondeterminism and raw
// primitives on purpose (seeded storms, wall-clock bench timing), so
// only the whole-tree passes follow them; tools/ is outside the
// layering DAG but its sources still carry counters and waivers.
// Include cycles are reported in every tree.
//
// The checks are lexical (comment/string-aware, not semantic), so
// they are fast, dependency-free, and deterministic; anything that
// needs real semantic analysis is clang-tidy's job (.clang-tidy).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace simba::lint {

enum class Severity { kError, kWarning };

struct Diagnostic {
  std::string file;  // path relative to the lint root, '/' separators
  int line = 0;      // 1-based
  std::string rule;  // "layer", "include", "determinism", "sync",
                     // "bounded", "flatmap", "trace", "alloc",
                     // "counters", "waiver"
  std::string message;
  Severity severity = Severity::kError;
};

/// "file:line: error: [rule] message" — the format editors parse.
std::string format(const Diagnostic& d);

/// Lints one file's contents with the per-file rules (everything
/// except the repo-wide counter-registry, include-graph, and
/// unused-include passes, which need the whole tree). `rel_path` is
/// the root-relative path (e.g. "src/core/alert.h"); it selects which
/// rule families apply.
std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                  const std::string& content);

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (path, line, rule)
  int files_scanned = 0;
  int error_count = 0;
  int warning_count = 0;
};

/// Walks src/, bench/, tests/, examples/, and tools/ under `root`
/// (the .h, .cc, and .cpp files, skipping testdata/ fixtures), lints
/// each file, then runs the repo-wide passes: the [counters] registry
/// check against src/util/counter_registry.def (skipped when the tree
/// has no registry file), the include-graph DAG/cycle/unused-include
/// analysis, and the [waiver] audit. Everything is built in one pass
/// over the tree — files are read and lexed once, the registry and
/// include graph once per run, never per file. Diagnostics come back
/// stable-sorted by (path, line, rule), so output is byte-identical
/// across platforms and directory-iteration orders.
LintResult lint_tree(const std::filesystem::path& root);

/// CLI driver:
///   simba_lint [--root DIR] [--quiet] [--sarif FILE] [--dump-counters]
/// Prints one formatted diagnostic per line plus a summary to `out`;
/// --sarif additionally writes the diagnostics as SARIF 2.1.0 (the
/// format GitHub code scanning ingests); --dump-counters lists every
/// distinct counter-literal site instead of linting (registry
/// authoring aid). Returns the process exit code (0 clean or
/// warnings only, 1 errors, 2 usage/IO error).
int run_cli(int argc, const char* const* argv, std::string& out);

}  // namespace simba::lint
