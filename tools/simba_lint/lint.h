// simba-lint: the repo's custom static-analysis pass.
//
// Three rule families, all motivated by the fleet/chaos determinism
// invariant (merged reports must be bit-identical across seeds and
// thread counts) and by the layered architecture DESIGN.md documents:
//
//   [layer]       src/ directories form a DAG (util at the bottom,
//                 fleet at the top, bench/tests/examples above
//                 everything); an #include that points up or sideways
//                 across the DAG is an error.
//   [determinism] real clocks, ambient randomness, and environment
//                 reads are banned in src/ outside the allowlisted
//                 util/wall_clock.cc shim; std::unordered_{map,set}
//                 use must carry a "// simba-lint: ordered" waiver
//                 asserting its iteration order is never observed.
//   [sync]        raw std::mutex/lock_guard/condition_variable are
//                 banned outside util/ — use util::Mutex/MutexLock
//                 (util/mutex.h), which carry Clang thread-safety
//                 annotations.
//   [trace]       lifecycle-trace spans carry virtual time only: a
//                 src/ line that emits or builds a util::Trace span
//                 (an emit(...) call or the Span type) may not
//                 mention a wall-clock source (util::WallTimer /
//                 wall_seconds) — wall-stamped spans would break the
//                 bit-identical merged-trace guarantee.
//   [alloc]       debug/trace log messages must be built lazily: a
//                 src/ log_debug/log_trace call whose argument text
//                 concatenates ('+'), formats (strformat), or
//                 stringifies (to_string) allocates the message even
//                 when the level is disabled — use SIMBA_LOG_DEBUG /
//                 SIMBA_LOG_TRACE (util/log.h), which evaluate the
//                 message expression only when it will be written.
//
// The checks are line-based over comment- and string-stripped source,
// so they are fast, dependency-free, and deterministic; anything that
// needs real semantic analysis is clang-tidy's job (.clang-tidy).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace simba::lint {

struct Diagnostic {
  std::string file;  // path relative to the lint root, '/' separators
  int line = 0;      // 1-based
  std::string rule;  // "layer", "determinism", "sync", "trace", "alloc"
  std::string message;
};

/// "file:line: error: [rule] message" — the format editors parse.
std::string format(const Diagnostic& d);

/// Lints one file's contents. `rel_path` is the root-relative path
/// (e.g. "src/core/alert.h"); it selects which rule families apply.
std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                  const std::string& content);

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  int files_scanned = 0;
};

/// Walks src/, bench/, tests/, and examples/ under `root` (the .h and
/// .cc files) and lints each. Diagnostics come back sorted by path
/// then line, so output is stable across filesystems.
LintResult lint_tree(const std::filesystem::path& root);

/// CLI driver: `simba_lint [--root DIR] [--quiet]`. Prints one
/// formatted diagnostic per line plus a summary to `out`; returns the
/// process exit code (0 clean, 1 violations, 2 usage/IO error).
int run_cli(int argc, const char* const* argv, std::string& out);

}  // namespace simba::lint
