// SARIF 2.1.0 output for simba-lint — the machine-readable result
// format GitHub code scanning ingests, so lint findings annotate PRs
// instead of living in a CI log. Emission is deliberately minimal
// (one run, one tool, results with ruleId/level/message/location);
// validate_sarif() structurally checks that minimum against the
// SARIF 2.1.0 schema so the fixture test catches emission drift
// without a JSON-schema dependency.
#pragma once

#include <string>
#include <vector>

#include "lint.h"

namespace simba::lint {

/// Serializes diagnostics as a SARIF 2.1.0 log (pretty-printed JSON,
/// trailing newline). Deterministic: results keep their input order,
/// rule metadata is sorted by rule id.
std::string to_sarif(const std::vector<Diagnostic>& diagnostics);

/// Structural SARIF 2.1.0 check: parses `json` (full JSON grammar)
/// and verifies the shape GitHub requires — $schema/version 2.1.0,
/// runs[].tool.driver.name, every result's ruleId, level, message
/// text, and physical location with uri + positive startLine, and
/// that every ruleId is declared in the driver's rules. Returns ""
/// when valid, else a one-line description of the first problem.
std::string validate_sarif(const std::string& json);

}  // namespace simba::lint
