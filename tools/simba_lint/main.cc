#include <cstdio>
#include <string>

#include "lint.h"

int main(int argc, char** argv) {
  std::string out;
  const int code = simba::lint::run_cli(argc, argv, out);
  std::fputs(out.c_str(), code == 0 ? stdout : stderr);
  return code;
}
