#include "registry.h"

#include <algorithm>
#include <array>
#include <sstream>

namespace simba::lint {
namespace {

// Subsystems a counter may belong to: the src/ layering modules plus
// the two non-production owners. A typo'd subsystem is as corrosive
// as a typo'd name, so membership is checked.
constexpr std::array<std::string_view, 18> kSubsystems{
    "util", "xml",  "sim",       "net",   "gui",   "im",
    "email", "sms", "automation", "sss",  "core",  "aladdin",
    "wish", "assistant", "proxy", "fleet", "test",  "bench",
};

bool known_subsystem(std::string_view s) {
  return std::find(kSubsystems.begin(), kSubsystems.end(), s) !=
         kSubsystems.end();
}

std::size_t edit_distance(std::string_view a, std::string_view b,
                          std::size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > cap) return cap + 1;
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    std::size_t best = row[0];
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      best = std::min(best, row[i]);
    }
    if (best > cap) return cap + 1;  // row can only grow from here
  }
  return row[a.size()];
}

}  // namespace

CounterRegistry CounterRegistry::parse(const std::string& content,
                                       const std::string& def_rel_path,
                                       std::vector<Diagnostic>& diags) {
  CounterRegistry registry;
  registry.loaded_ = true;
  auto error = [&](int line, std::string message) {
    diags.push_back(Diagnostic{def_rel_path, line, "counters",
                               std::move(message), Severity::kError});
  };
  std::istringstream in(content);
  std::string raw;
  for (int line_no = 1; std::getline(in, raw); ++line_no) {
    const std::size_t hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    const std::size_t doc_sep = line.find("--");
    std::string head = doc_sep == std::string::npos ? line
                                                    : line.substr(0, doc_sep);
    std::istringstream fields(head);
    std::string name, subsystem, role_text, flag, extra;
    fields >> name >> subsystem >> role_text >> flag >> extra;
    if (name.empty()) {
      if (!subsystem.empty() || doc_sep != std::string::npos) {
        error(line_no, "malformed registry line: expected '<name> "
                       "<subsystem> <source|sink|neutral> [dynamic] -- doc'");
      }
      continue;  // blank or comment-only line
    }
    CounterEntry entry;
    entry.line = line_no;
    entry.name = name;
    if (!entry.name.empty() && entry.name.back() == '*') {
      entry.name.pop_back();
      entry.prefix = true;
      entry.dynamic = true;  // a pattern has no single literal bump site
      if (entry.name.empty()) {
        error(line_no, "prefix pattern '*' would match every counter");
        continue;
      }
    }
    entry.subsystem = subsystem;
    if (subsystem.empty() || role_text.empty() ||
        doc_sep == std::string::npos) {
      error(line_no,
            "malformed registry line for '" + name +
                "': expected '<name> <subsystem> <source|sink|neutral> "
                "[dynamic] -- doc'");
      continue;
    }
    if (!known_subsystem(subsystem)) {
      error(line_no, "unknown subsystem '" + subsystem + "' for counter '" +
                         name + "'");
      continue;
    }
    if (role_text == "source") {
      entry.role = CounterEntry::Role::kSource;
    } else if (role_text == "sink") {
      entry.role = CounterEntry::Role::kSink;
    } else if (role_text == "neutral") {
      entry.role = CounterEntry::Role::kNeutral;
    } else {
      error(line_no, "unknown conservation role '" + role_text +
                         "' for counter '" + name +
                         "' (want source, sink, or neutral)");
      continue;
    }
    if (!flag.empty()) {
      if (flag == "dynamic") {
        entry.dynamic = true;
      } else {
        error(line_no, "unknown flag '" + flag + "' for counter '" + name +
                           "' (only 'dynamic' is recognised)");
        continue;
      }
    }
    if (!extra.empty()) {
      error(line_no, "trailing field '" + extra + "' for counter '" + name +
                         "' before the '--' doc separator");
      continue;
    }
    std::string doc = line.substr(doc_sep + 2);
    const std::size_t first = doc.find_first_not_of(" \t");
    doc = first == std::string::npos ? "" : doc.substr(first);
    if (doc.empty()) {
      error(line_no, "counter '" + name + "' is missing its one-line doc");
      continue;
    }
    entry.doc = std::move(doc);
    registry.entries_.push_back(std::move(entry));
  }
  std::sort(registry.entries_.begin(), registry.entries_.end(),
            [](const CounterEntry& a, const CounterEntry& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < registry.entries_.size(); ++i) {
    if (registry.entries_[i].name == registry.entries_[i - 1].name) {
      error(registry.entries_[i].line,
            "duplicate registry entry '" + registry.entries_[i].name +
                "' (first declared on line " +
                std::to_string(registry.entries_[i - 1].line) + ")");
    }
  }
  return registry;
}

const CounterEntry* CounterRegistry::resolve(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const CounterEntry& e, std::string_view n) { return e.name < n; });
  if (it != entries_.end() && it->name == name && !it->prefix) return &*it;
  for (const CounterEntry& entry : entries_) {
    if (entry.prefix && name.size() >= entry.name.size() &&
        name.compare(0, entry.name.size(), entry.name) == 0) {
      return &entry;
    }
  }
  return nullptr;
}

bool CounterRegistry::resolve_prefix(std::string_view literal) const {
  for (const CounterEntry& entry : entries_) {
    // A registered name that extends the literal ("seen_via_im" for
    // literal "seen_via_"), or a pattern the literal extends or
    // equals ("lanes.shed." against pattern "lanes.shed.*").
    if (entry.name.size() >= literal.size()) {
      if (entry.name.compare(0, literal.size(), literal) == 0) return true;
    } else if (entry.prefix &&
               literal.compare(0, entry.name.size(), entry.name) == 0) {
      return true;
    }
  }
  return false;
}

std::string CounterRegistry::nearest(std::string_view name,
                                     std::size_t max_distance) const {
  std::string best;
  std::size_t best_distance = max_distance + 1;
  for (const CounterEntry& entry : entries_) {
    if (entry.prefix) continue;
    const std::size_t d = edit_distance(name, entry.name, max_distance);
    if (d < best_distance) {
      best_distance = d;
      best = entry.name;
    }
  }
  return best;
}

}  // namespace simba::lint
