// The repo-wide include-graph pass behind [layer] (tree mode) and
// [include]. Built once per lint_tree run from the include directives
// every FileAnalysis already extracted:
//
//   * the direct [layer] checks (same diagnostics lint_file emits, so
//     single-file and tree runs agree),
//   * file-level include-cycle detection (a cycle is a [layer] error
//     no per-edge rank check can see when unranked trees are
//     involved),
//   * transitive DAG verification at module level — every module the
//     includes can reach must still sit strictly below the includer,
//     even through intermediate hops,
//   * IWYU-lite [include] warnings: a resolved repo include whose
//     header exports no name the including file mentions is dead
//     weight (src/ and tools/ only — tests and benches include
//     subject headers for linkage, not names).
#pragma once

#include <vector>

#include "rules.h"

namespace simba::lint {

/// Runs every include-graph check over the analyzed tree, appending
/// to `diags`. `files` must hold the whole walk (resolution only sees
/// files in it; includes that resolve to nothing are skipped, not
/// guessed at).
void run_include_graph(const std::vector<FileAnalysis>& files,
                       std::vector<Diagnostic>& diags);

}  // namespace simba::lint
