// The per-line rule families ([layer] direct checks, [determinism],
// [sync], [bounded], [trace], [alloc]) plus waiver collection and the
// file-local [waiver] audit. Rules read the lexed per-line views:
// `code` (comments blanked, strings kept) for include directives,
// `tokens` (comments and strings blanked) for banned-name matching —
// so banned names in comments or string literals never trip.
#include <array>
#include <string_view>

#include "rules.h"

namespace simba::lint {
namespace {

// Files allowed to read real clocks: the one shim everything else
// must route timing through.
constexpr std::array<std::string_view, 1> kDeterminismAllowlist{
    "src/util/wall_clock.cc",
};

// Nondeterministic calls: identifier immediately followed by '(' and
// not reached through member access ('.x(' / '->x(').
constexpr std::array<std::string_view, 8> kBannedCalls{
    "time",   "rand",          "srand",        "getenv",
    "clock",  "gettimeofday",  "clock_gettime", "timespec_get",
};

// Nondeterministic types/clocks, matched as whole identifiers.
constexpr std::array<std::string_view, 4> kBannedTokens{
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "random_device",
};

// Raw synchronisation primitives banned outside util/ (util/mutex.h
// wraps them with Clang thread-safety annotations).
constexpr std::array<std::string_view, 12> kBannedSync{
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
};

// Logging calls whose message argument must not be built eagerly:
// below the threshold they discard the string they just allocated.
constexpr std::array<std::string_view, 2> kLazyLogCalls{
    "log_debug",
    "log_trace",
};

// Argument patterns that mean "this line allocates to build the
// message": formatting and number-to-string conversion ('+' is
// checked directly).
constexpr std::array<std::string_view, 2> kAllocCalls{
    "strformat",
    "to_string",
};

// Wall-clock sources that must never stamp a lifecycle-trace span.
constexpr std::array<std::string_view, 2> kWallClockSources{
    "WallTimer",
    "wall_seconds",
};

// Modules on the alert hot path where an unbounded queue member is an
// overload hazard (DESIGN.md §14).
constexpr std::array<std::string_view, 2> kBoundedModules{"core", "net"};

// Hot directories (DESIGN.md §16): a string-keyed std::map here costs
// a red-black node walk per lookup on the submit→deliver path; the
// flat-map sweep replaced them with util::FlatMap, and new ones need
// an 'ordered' waiver asserting their sorted iteration is load-bearing.
constexpr std::array<std::string_view, 4> kFlatMapModules{"core", "net",
                                                          "util", "fleet"};

constexpr std::string_view kWaiverMarker = "simba-lint:";

bool in_allowlist(const std::string& rel_path) {
  for (const std::string_view allowed : kDeterminismAllowlist) {
    if (rel_path == allowed) return true;
  }
  return false;
}

// Extracts the quoted path from an `#include "..."` directive, or ""
// when the line is not a quoted include.
std::string include_path(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return "";
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) return "";
  i = line.find('"', i + 7);
  if (i == std::string::npos) return "";
  const std::size_t end = line.find('"', i + 1);
  if (end == std::string::npos) return "";
  return line.substr(i + 1, end - i - 1);
}

// Position just past the '(' of a free-function call of `name` (see
// contains_call), or npos when the line has no such call.
std::size_t find_call_args(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      const std::size_t paren = text.find_first_not_of(" \t", after);
      const bool calls = paren != std::string::npos && text[paren] == '(';
      const bool member =
          (pos >= 1 && text[pos - 1] == '.') ||
          (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
      if (calls && !member) return paren + 1;
    }
    ++pos;
  }
  return std::string::npos;
}

// True when `name` appears as a call, member or free: whole identifier
// followed by '('. Trace::emit is normally reached as `trace_->emit(`,
// which contains_call deliberately skips.
bool contains_any_call(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      const std::size_t paren = text.find_first_not_of(" \t", after);
      if (paren != std::string::npos && text[paren] == '(') return true;
    }
    ++pos;
  }
  return false;
}

// Collects the waivers declared in one line's comment text. Only a
// comment whose (doxygen-trimmed) text *starts* with "simba-lint:" is
// a waiver comment — prose that merely mentions the syntax is not —
// but one waiver comment may carry several markers ("// simba-lint:
// ordered simba-lint: bounded(...)"), so every marker inside it
// counts.
void collect_waivers(const std::string& comment, int line_no,
                     std::vector<Waiver>& out) {
  std::size_t start = comment.find_first_not_of("/!< \t");
  if (start == std::string::npos) return;
  if (comment.compare(start, kWaiverMarker.size(), kWaiverMarker) != 0) return;
  std::size_t pos = start;
  while ((pos = comment.find(kWaiverMarker, pos)) != std::string::npos) {
    std::size_t word = comment.find_first_not_of(" \t",
                                                 pos + kWaiverMarker.size());
    Waiver waiver;
    waiver.line = line_no;
    while (word < comment.size() && is_ident_char(comment[word])) {
      waiver.kind.push_back(comment[word]);
      ++word;
    }
    out.push_back(std::move(waiver));
    pos += kWaiverMarker.size();
  }
}

// True when the line declares a string-keyed std::map: "std::map"
// followed (whitespace-insensitively) by "<std::string..." or
// "<std::pair<std::string..." — the latter catches composed keys like
// the bus address pairs. string_view keys match too (the "std::string"
// prefix), which is intended: a view-keyed ordered map has the same
// node-walk cost.
bool string_keyed_map(const std::string& tokens) {
  constexpr std::string_view kMap = "std::map";
  constexpr std::string_view kPair = "std::pair";
  constexpr std::string_view kString = "std::string";
  std::size_t pos = 0;
  const auto skip_ws = [&tokens](std::size_t i) {
    while (i < tokens.size() && (tokens[i] == ' ' || tokens[i] == '\t')) ++i;
    return i;
  };
  while ((pos = tokens.find(kMap, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(tokens[pos - 1]);
    std::size_t i = skip_ws(pos + kMap.size());
    if (left_ok && i < tokens.size() && tokens[i] == '<') {
      i = skip_ws(i + 1);
      if (tokens.compare(i, kPair.size(), kPair) == 0) {
        i = skip_ws(i + kPair.size());
        if (i < tokens.size() && tokens[i] == '<') i = skip_ws(i + 1);
      }
      if (tokens.compare(i, kString.size(), kString) == 0) return true;
    }
    ++pos;
  }
  return false;
}

}  // namespace

bool contains_token(const std::string& text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool contains_call(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t after = pos + name.size();
    const bool word = (pos == 0 || !is_ident_char(text[pos - 1])) &&
                      (after < text.size() && !is_ident_char(text[after]));
    if (word) {
      std::size_t paren = text.find_first_not_of(" \t", after);
      const bool calls = paren != std::string::npos && text[paren] == '(';
      const bool member =
          (pos >= 1 && text[pos - 1] == '.') ||
          (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
      if (calls && !member) return true;
    }
    ++pos;
  }
  return false;
}

void run_line_rules(FileAnalysis& fa, bool with_layer) {
  const bool in_src = fa.tree == Tree::kSrc;
  const bool layer_applies = with_layer && fa.tree != Tree::kTools;
  const bool determinism_applies = in_src && !in_allowlist(fa.rel_path);
  const bool sync_applies = in_src && fa.module != "util";
  bool bounded_applies = false;
  for (const std::string_view m : kBoundedModules) {
    bounded_applies = bounded_applies || (in_src && fa.module == m);
  }
  bool flatmap_applies = false;
  for (const std::string_view m : kFlatMapModules) {
    flatmap_applies = flatmap_applies || (in_src && fa.module == m);
  }

  auto emit = [&](int line, const char* rule, std::string message) {
    fa.diags.push_back(Diagnostic{fa.rel_path, line, rule, std::move(message),
                                  Severity::kError});
  };

  if (with_layer && in_src && fa.rank < 0) {
    emit(1, "layer",
         "directory 'src/" + fa.module +
             "' is not registered in the layering DAG (tools/simba_lint)");
  }

  // Waiver lookup: a waiver of `kind` on the same or the previous
  // line suppresses a diagnostic and is marked used.
  auto waived = [&](int line_no, std::string_view kind) {
    bool found = false;
    for (Waiver& w : fa.waivers) {
      if (w.kind == kind && (w.line == line_no || w.line == line_no - 1)) {
        w.used = true;
        found = true;
      }
    }
    return found;
  };

  for (std::size_t index = 0; index < fa.lex.lines.size(); ++index) {
    const LexedLine& line = fa.lex.lines[index];
    collect_waivers(line.comment, static_cast<int>(index) + 1, fa.waivers);
  }

  for (std::size_t index = 0; index < fa.lex.lines.size(); ++index) {
    const int line_no = static_cast<int>(index) + 1;
    const std::string& code = fa.lex.lines[index].code;
    const std::string& tokens = fa.lex.lines[index].tokens;

    // [layer] — includes must point down the DAG. The repo-wide
    // include-graph pass owns this under lint_tree (adding transitive
    // verification and cycle detection); the direct per-line check
    // remains for single-file linting.
    const std::string target_path = include_path(code);
    if (layer_applies && !target_path.empty()) {
      const std::size_t slash = target_path.find('/');
      const std::string target =
          slash == std::string::npos ? "" : target_path.substr(0, slash);
      if (!target.empty() && target != fa.module) {
        const int target_rank = layer_rank(target);
        if (target_rank < 0) {
          emit(line_no, "layer",
               "include of unknown module '" + target +
                   "/' — register it in the layering DAG or fix the path");
        } else if (fa.rank >= 0 && target_rank >= fa.rank) {
          emit(line_no, "layer",
               "layer '" + fa.module + "' (rank " + std::to_string(fa.rank) +
                   ") may not include '" + target + "/' (rank " +
                   std::to_string(target_rank) +
                   "): includes must point strictly down the layering DAG");
        }
      }
    }
    if (!target_path.empty()) {
      fa.includes.push_back(IncludeDirective{target_path, line_no});
    }
    const bool is_include_line = !target_path.empty() ||
                                 code.find("#include") != std::string::npos;

    // [determinism] — bans in simulation code (src/ outside allowlist).
    if (determinism_applies) {
      for (const std::string_view name : kBannedCalls) {
        if (contains_call(tokens, name)) {
          emit(line_no, "determinism",
               "banned nondeterministic call '" + std::string(name) +
                   "(' in simulation code; use util/rng.h for randomness "
                   "and util/wall_clock.h for timing-only wall clocks");
        }
      }
      for (const std::string_view token : kBannedTokens) {
        if (contains_token(tokens, token)) {
          emit(line_no, "determinism",
               "banned real-clock/entropy source '" + std::string(token) +
                   "' in simulation code; virtual time comes from the "
                   "Simulator, wall timing from util/wall_clock.h");
        }
      }
      const bool unordered_use = contains_token(tokens, "unordered_map") ||
                                 contains_token(tokens, "unordered_set") ||
                                 contains_token(tokens, "unordered_multimap") ||
                                 contains_token(tokens, "unordered_multiset");
      // Usage, not the <unordered_map> include line itself.
      if (unordered_use && !is_include_line &&
          !waived(line_no, "ordered")) {
        emit(line_no, "determinism",
             "std::unordered_{map,set} use needs a '// simba-lint: "
             "ordered' waiver (same or previous line) asserting its "
             "iteration order is never observed; otherwise use "
             "std::map/std::set so merged reports stay deterministic");
      }
    }

    // [sync] — raw synchronisation outside util/.
    if (sync_applies) {
      for (const std::string_view token : kBannedSync) {
        if (contains_token(tokens, token)) {
          emit(line_no, "sync",
               "raw '" + std::string(token) +
                   "' is banned outside util/; use util::Mutex / "
                   "util::MutexLock (util/mutex.h) so Clang thread-safety "
                   "annotations cover it");
        }
      }
    }

    // [bounded] — queue containers on the alert path must name their
    // bound. A raw std::deque/std::queue in core/ or net/ grows without
    // limit under storm load unless something sheds; the waiver names
    // the bound and the shed path so the claim is reviewable.
    if (bounded_applies) {
      const bool queue_use = contains_token(tokens, "std::deque") ||
                             contains_token(tokens, "std::queue");
      if (queue_use && !is_include_line && !waived(line_no, "bounded")) {
        emit(line_no, "bounded",
             "std::deque/std::queue on the alert path needs a "
             "'// simba-lint: bounded(<bound, shed path>)' waiver (same "
             "or previous line) naming the bound that keeps it from "
             "growing without limit under storm load");
      }
    }

    // [flatmap] — string-keyed ordered maps in the hot directories.
    // Lookups on the submit→deliver path walk map nodes; util::FlatMap
    // probes one hash bucket. The 'ordered' waiver marks the sites
    // whose sorted iteration is load-bearing (wire framing, config
    // dumps, report order) — everything else converts.
    if (flatmap_applies && !is_include_line && string_keyed_map(tokens) &&
        !waived(line_no, "ordered")) {
      emit(line_no, "flatmap",
           "string-keyed std::map in a hot directory; use util::FlatMap "
           "(util/flat_map.h, transparent string_view hashing) with "
           "sorted_items() where order matters, or add a '// simba-lint: "
           "ordered' waiver (same or previous line) asserting the sorted "
           "iteration itself is load-bearing");
    }

    // [alloc] — debug/trace log messages must not be built eagerly.
    if (in_src) {
      for (const std::string_view name : kLazyLogCalls) {
        const std::size_t args = find_call_args(tokens, name);
        if (args == std::string::npos) continue;
        const std::string rest = tokens.substr(args);
        bool allocates = rest.find('+') != std::string::npos;
        for (const std::string_view call : kAllocCalls) {
          allocates = allocates || contains_any_call(rest, call);
        }
        if (allocates) {
          emit(line_no, "alloc",
               "message for '" + std::string(name) +
                   "(' is built eagerly (+/strformat/to_string in the "
                   "argument list) and allocates even when the level is "
                   "disabled; use " +
                   (name == "log_trace" ? "SIMBA_LOG_TRACE"
                                        : "SIMBA_LOG_DEBUG") +
                   " (util/log.h) so the message is only built when it "
                   "will be written");
        }
      }
    }

    // [trace] — span timestamps must come from the sim clock.
    if (in_src) {
      const bool span_line = contains_token(tokens, "Span") ||
                             contains_any_call(tokens, "emit");
      if (span_line) {
        for (const std::string_view token : kWallClockSources) {
          if (contains_token(tokens, token)) {
            emit(line_no, "trace",
                 "trace span stamped from wall-clock source '" +
                     std::string(token) +
                     "'; spans carry virtual time only "
                     "(sim::Simulator::now) so merged traces stay "
                     "bit-identical across runs and thread counts");
          }
        }
      }
    }
  }

  // [waiver] — the audit: a waiver that suppressed nothing has
  // outlived its reason (or never had one) and must go, so stale
  // waivers can't quietly disable future diagnostics.
  for (const Waiver& w : fa.waivers) {
    if (w.kind != "ordered" && w.kind != "bounded") {
      fa.diags.push_back(Diagnostic{
          fa.rel_path, w.line, "waiver",
          "unknown waiver kind '" + w.kind +
              "' (recognised: 'ordered', 'bounded(...)')",
          Severity::kError});
    } else if (!w.used) {
      fa.diags.push_back(Diagnostic{
          fa.rel_path, w.line, "waiver",
          "waiver '// simba-lint: " + w.kind +
              "' does not suppress any diagnostic on this or the next "
              "line; remove it — waivers must not outlive their reason",
          Severity::kError});
    }
  }
}

}  // namespace simba::lint
