// Waiver audit edge cases: used waivers stay silent (previous-line
// placement, trailing prose, two markers in one comment); a stale or
// unknown-kind waiver is its own error.
struct W {
  // simba-lint: ordered -- iteration order is folded into a sorted report
  std::unordered_map<int, int> by_id;
  std::unordered_map<int, std::deque<int>> q;  // simba-lint: ordered  simba-lint: bounded(8 per key, oldest dropped)
  // simba-lint: ordered
  std::map<int, int> sorted;
  // simba-lint: frobnicate
  int x = 0;
};
