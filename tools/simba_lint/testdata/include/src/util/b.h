#pragma once
#include "util/a.h"
struct B {
  A* a;
};
