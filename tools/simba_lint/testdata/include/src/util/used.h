#pragma once
struct Used {
  int z = 0;
};
