#pragma once
#include "util/b.h"
struct A {
  B b;
};
