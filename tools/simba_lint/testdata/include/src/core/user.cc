#include "util/a.h"
#include "util/used.h"
int consume(Used u) { return u.z; }
