// Clean fixture: util may include util, use std::mutex (util/ is the
// sanctioned wrapper layer), and mention steady_clock in comments.
#pragma once

#include "util/other.h"

namespace simba::util {
struct Ok {
  int value = 0;
};
}  // namespace simba::util
