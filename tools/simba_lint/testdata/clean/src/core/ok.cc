// Clean fixture: core includes strictly down the DAG, and banned
// tokens inside comments (rand(), steady_clock) or string literals do
// not trip the linter.
#include "util/ok.h"
#include "sim/simulator.h"
#include "net/bus.h"

namespace simba {
const char* motto() { return "no rand() calls, no steady_clock here"; }
int format_time(int t) { return t; }  // suffix 'time(' must not match
}  // namespace simba
