// Clean fixture: core includes strictly down the DAG, and banned
// tokens inside comments (rand(), steady_clock) or string literals do
// not trip the linter.
#include "util/ok.h"
#include "sim/simulator.h"
#include "net/bus.h"

namespace simba {
const char* motto() { return "no rand() calls, no steady_clock here"; }
int format_time(int t) { return t; }  // suffix 'time(' must not match
int use(util::Ok ok) { return ok.value; }  // uses util/ok.h: no IWYU warning
}  // namespace simba
