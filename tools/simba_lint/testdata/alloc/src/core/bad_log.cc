// Fixture: eager message construction in debug/trace logging.
#include <string>

namespace fixture {

void log_debug(const std::string&, const std::string&);
void log_trace(const std::string&, const std::string&);
void log_warn(const std::string&, const std::string&);
std::string strformat(const char*, int);

void bad(const std::string& user, int n) {
  log_debug("core", "routing for " + user);            // flagged: '+'
  log_trace("core", strformat("attempt %d", n));       // flagged: strformat
  log_debug("core", std::to_string(n));                // flagged: to_string
  log_debug("core", "static message");                 // clean: literal only
  log_warn("core", "failed for " + user);              // clean: warn is rare
}

}  // namespace fixture
