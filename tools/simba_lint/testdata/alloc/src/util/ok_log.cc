// Fixture: the lazy macros and allocation-free calls stay clean.
#include <string>

namespace fixture {

void log_debug(const std::string&, const std::string&);
#define SIMBA_LOG_DEBUG(component, message_expr) ((void)(message_expr))

void ok(const std::string& user) {
  SIMBA_LOG_DEBUG("util", "routing for " + user);  // lazy: not flagged
  log_debug("util", user);                         // no build on this line
  // log_debug("util", "commented " + user);       // comments don't trip
  log_debug("util", "a + b in a literal");         // strings are stripped
}

}  // namespace fixture
