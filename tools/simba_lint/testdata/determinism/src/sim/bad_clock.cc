// Determinism fixture: every banned real-clock/entropy source in one
// simulation-code file.
#include "util/ok.h"

namespace simba {
double wall() {
  auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
int noise() { return rand(); }
const char* env() { return std::getenv("SIMBA_SEED"); }
unsigned entropy() { return std::random_device{}(); }
}  // namespace simba
