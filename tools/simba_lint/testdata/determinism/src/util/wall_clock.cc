// Allowlist fixture: src/util/wall_clock.cc is the one file permitted
// to read a real clock, so the steady_clock below must NOT be flagged.
#include <chrono>

namespace simba::util {
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace simba::util
