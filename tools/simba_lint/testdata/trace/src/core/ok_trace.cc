// Virtual-time trace emission: never flagged by [trace].
#include "util/trace.h"

namespace simba::core {
void note(util::Trace& trace, TimePoint now) {
  trace.emit("a-1", "mab", "classify", now, now, "keyword K");
}
}  // namespace simba::core
