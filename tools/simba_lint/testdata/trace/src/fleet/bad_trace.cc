// Trace fixture: span-emission lines stamped from a wall-clock source
// (util::WallTimer / wall_seconds) must be flagged; the same emission
// from virtual time must not, and a wall token with no span nearby is
// the [determinism]-exempt timing path, not a [trace] violation.
#include "util/trace.h"
#include "util/wall_clock.h"

namespace simba::fleet {
void observe(util::Trace& trace, TimePoint now, double wall_seconds);

void good(util::Trace& trace, TimePoint now) {
  trace.emit("a-1", "bus", "send", now);
}

void bad(util::Trace& trace) {
  trace.emit("a-2", "bus", "send", stamp(util::WallTimer().seconds()));
  const util::Span span{"a-3", "bus", "send", stamp(wall_seconds()), {}, ""};
}
}  // namespace simba::fleet
