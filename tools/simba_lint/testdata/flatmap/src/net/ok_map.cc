// Waiver fixture: non-string keys need no waiver, the include line is
// exempt, and same-line / previous-line 'ordered' waivers suppress.
#include <map>
#include <string>

namespace simba::net {
struct Tables {
  std::map<int, int> by_id;
  std::map<std::string, int> wire;  // simba-lint: ordered — wire framing
  // simba-lint: ordered — report order is the contract
  std::map<std::string, int> report;
};
}  // namespace simba::net
