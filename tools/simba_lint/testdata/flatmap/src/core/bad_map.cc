// Flatmap fixture: string-keyed ordered maps in the hot directories
// must convert to util::FlatMap or carry an 'ordered' waiver.
#include <map>
#include <string>

namespace simba::core {
struct Router {
  std::map<std::string, int> routes;
  std::map<std::pair<std::string, std::string>, int> links;
};
}  // namespace simba::core
