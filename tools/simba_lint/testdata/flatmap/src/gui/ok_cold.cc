// Module scoping: ordered maps outside the hot directories (core/,
// net/, util/, fleet/) are not on the lookup hot path; no waiver.
#include <map>
#include <string>

namespace simba::gui {
std::map<std::string, int> panels;
}  // namespace simba::gui
