// Sync fixture: util/ is exempt — it is where the annotated wrapper
// lives, so its raw std::mutex must not be flagged.
#include <mutex>

namespace simba::util {
struct Wrapper {
  std::mutex mu;
};
}  // namespace simba::util
