// Sync fixture: raw std::mutex/std::lock_guard outside util/ must be
// flagged and pointed at util::Mutex.
#include <mutex>

namespace simba::net {
struct Guarded {
  std::mutex mu;
  int hits = 0;
};
void touch(Guarded& g) {
  std::lock_guard<std::mutex> lock(g.mu);
  ++g.hits;
}
}  // namespace simba::net
