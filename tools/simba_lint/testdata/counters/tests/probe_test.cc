// A get()-only probe of a 'dynamic' registry entry is fine in any
// tree — the reverse (never-bumped) check skips dynamic entries.
int probe(const Counters& c) { return c.get("probe"); }
