// Near-miss, unknown, and unresolvable-prefix counter sites.
void record(Counters& c, const std::string& k) {
  c.bump("alert_sent");
  c.bump("totally_unknown");
  c.bump("zz." + k);
}
