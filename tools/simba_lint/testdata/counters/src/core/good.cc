// Counter sites the registry covers: exact, glued across lines,
// ternary-selected, and a prefix that a pattern entry matches.
void record(Counters& c, bool seen, const std::string& lane) {
  c.bump("alerts_sent");
  c.bump(
      "alerts_"
      "seen");
  c.bump(seen ? "alerts_seen" : "alerts_sent");
  c.bump("lanes." + lane);
  c.bump("ckpt.saved");
}
