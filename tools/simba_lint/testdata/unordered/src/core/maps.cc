// Waiver fixture: unordered containers need a per-line waiver; the
// include line itself is exempt.
#include <unordered_map>
#include <unordered_set>

namespace simba {
std::unordered_map<int, int> unwaived;
std::unordered_set<int> same_line;  // simba-lint: ordered — membership only
// simba-lint: ordered — next line is lookup-only
std::unordered_map<int, int> prev_line;
}  // namespace simba
