// Keeps the one well-formed entry bumped so the only diagnostics in
// this fixture are the registry-parse errors themselves.
void f(Counters& c) { c.bump("ok_counter"); }
