// Bounded fixture: raw queue containers on the alert path (core/,
// net/) must carry a waiver naming the bound and its shed path.
#include <deque>
#include <queue>

namespace simba::core {
struct Lanes {
  std::deque<int> pending;
  std::queue<int> backlog;
};
}  // namespace simba::core
