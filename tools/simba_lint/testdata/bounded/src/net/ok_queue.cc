// Waiver fixture: the include line is exempt; a waiver on the same or
// the previous raw line names the bound that keeps the queue finite.
#include <deque>

namespace simba::net {
struct Pool {
  std::deque<int> inflight;  // simba-lint: bounded(pending_bound_, shed in send())
  // simba-lint: bounded(lane_bound, shed in deliver())
  std::deque<int> lane;
};
}  // namespace simba::net
