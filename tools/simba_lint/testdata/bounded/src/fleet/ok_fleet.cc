// Module scoping: queues outside core/ and net/ are not on the alert
// hot path and need no waiver.
#include <deque>

namespace simba::fleet {
std::deque<int> results;
}  // namespace simba::fleet
