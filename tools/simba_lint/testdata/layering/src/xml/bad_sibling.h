// Layering fixture: xml and sim share a rank; sideways includes would
// let cycles into the DAG.
#pragma once

#include "sim/simulator.h"
