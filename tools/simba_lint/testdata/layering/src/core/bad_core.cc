// Layering fixture: core reaching up into fleet is the canonical
// violation the DAG checker exists to catch.
#include "fleet/fleet.h"

namespace simba {
int bad() { return 1; }
}  // namespace simba
