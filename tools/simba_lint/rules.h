// Internal plumbing shared by the rule passes (not part of the public
// lint.h surface). One FileAnalysis is built per file: the lex, the
// per-file diagnostics, and the raw material the repo-wide passes
// consume — waivers for the [waiver] audit, counter-literal sites for
// the [counters] registry check, and include directives for the
// include graph.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace simba::lint {

/// Top-level tree a file lives in; selects rule applicability (see
/// the table in lint.h).
enum class Tree { kSrc, kTests, kBench, kExamples, kTools };

/// One waiver comment. `kind` is the word after "simba-lint: "
/// ("ordered", "bounded"). A waiver left unused at the end of the
/// file-local rules is a [waiver] error.
struct Waiver {
  int line = 0;
  std::string kind;
  bool used = false;
};

/// One counter-name literal at a bump("...")/get("...") call site.
struct CounterSite {
  std::string name;
  int line = 0;
  bool is_bump = false;    // bump vs (member) get
  bool is_prefix = false;  // literal is followed by '+': a key prefix
};

/// One quoted #include directive.
struct IncludeDirective {
  std::string target;  // the quoted path text, e.g. "util/stats.h"
  int line = 0;
};

struct FileAnalysis {
  std::string rel_path;
  Tree tree = Tree::kSrc;
  std::string module;  // "core", "tests", ... ("" when undeterminable)
  int rank = -1;       // layering rank, -1 when unranked
  LexedFile lex;
  std::vector<Waiver> waivers;
  std::vector<CounterSite> counter_sites;
  std::vector<IncludeDirective> includes;
  std::vector<Diagnostic> diags;
};

/// Lexes and runs every per-file pass: the line rules (determinism,
/// sync, bounded, trace, alloc and — when `with_layer` — the direct
/// [layer] include checks), waiver collection + audit, counter-site
/// and include-directive extraction. `with_layer` is false under
/// lint_tree, where the include-graph pass owns [layer].
FileAnalysis analyze_file(std::string rel_path, const std::string& content,
                          bool with_layer);

/// rules_line.cc — the per-line rule families. Fills fa.waivers and
/// appends to fa.diags (including the [waiver] audit of unused
/// waivers, which is file-local by construction).
void run_line_rules(FileAnalysis& fa, bool with_layer);

/// rules_counters.cc — extracts bump/get counter-name literal sites
/// from the token stream into fa.counter_sites.
void collect_counter_sites(FileAnalysis& fa);

/// rules_counters.cc — the repo-wide registry check: every site must
/// resolve, every non-dynamic entry must have a bump site.
/// `def_rel_path` locates the registry file for rot diagnostics.
void check_counters(const class CounterRegistry& registry,
                    const std::string& def_rel_path,
                    const std::vector<FileAnalysis>& files,
                    std::vector<Diagnostic>& diags);

/// Shared token helpers (defined in rules_line.cc).
bool contains_token(const std::string& text, std::string_view token);
bool contains_call(const std::string& text, std::string_view name);

/// Layering-DAG rank of a module directory name, -1 when unranked
/// (defined in lint.cc, next to the DAG table).
int layer_rank(std::string_view module);

}  // namespace simba::lint
