// The counter registry behind the [counters] rule. SIMBA's extended
// conservation identity (submitted = delivered + failed + shed +
// coalesced + in-flight) is fed by free-form Counters::bump("...")
// literals; one typo silently leaks alerts out of the invariant. The
// registry (src/util/counter_registry.def) declares every counter —
// name, owning subsystem, one-line doc, and its role in the identity —
// and the rule validates every use site against it, both directions:
// unregistered names are errors (with an edit-distance hint), and
// registered names no bump site can account for are errors too, so
// the registry cannot rot.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace simba::lint {

struct CounterEntry {
  std::string name;  // canonical name; prefix entries lose the '*'
  bool prefix = false;    // declared "name.*": matches any suffix
  bool dynamic = false;   // bumped through a computed key, so the
                          // lexical sweep cannot see the bump site
  std::string subsystem;  // owning module ("core", "net", "test", ...)
  enum class Role { kSource, kSink, kNeutral } role = Role::kNeutral;
  std::string doc;
  int line = 0;  // line in the .def file
};

/// Parsed registry. Entry syntax (one per line, '#' comments):
///
///   <name>  <subsystem>  <source|sink|neutral>  [dynamic]  -- <doc>
///
/// A trailing '*' on the name declares a prefix pattern ("tx.*"),
/// which is implicitly dynamic. Malformed lines, duplicate names, and
/// unknown subsystems/roles come back as [counters] diagnostics
/// against the .def file itself.
class CounterRegistry {
 public:
  static CounterRegistry parse(const std::string& content,
                               const std::string& def_rel_path,
                               std::vector<Diagnostic>& diags);

  /// True once parse() saw a registry file (even an empty one).
  bool loaded() const { return loaded_; }

  /// Exact entry for `name`, or the prefix entry covering it, or
  /// nullptr when unregistered.
  const CounterEntry* resolve(std::string_view name) const;

  /// Resolution for a literal used as a name *prefix*
  /// (`bump("seen_via_" + suffix)`): true when some registered name or
  /// prefix pattern extends or equals the literal.
  bool resolve_prefix(std::string_view literal) const;

  /// Closest registered name within `max_distance` edits
  /// (Levenshtein), or "" when nothing is near — the typo hint.
  std::string nearest(std::string_view name, std::size_t max_distance) const;

  const std::vector<CounterEntry>& entries() const { return entries_; }

 private:
  std::vector<CounterEntry> entries_;  // sorted by name
  bool loaded_ = false;
};

}  // namespace simba::lint
