// simba-lint's shared tokenizer. Every rule pass reads one lex of each
// file instead of re-stripping lines itself: the per-line views keep
// the original column positions (rules report against real source),
// and the cross-line token stream lets symbol-aware rules (the
// [counters] registry check, the include-graph IWYU pass) see string
// literal *values* and identifier adjacency even when a call spans
// lines.
#pragma once

#include <string>
#include <vector>

namespace simba::lint {

/// One token. Only the granularity the rules need: word tokens
/// (identifiers and numbers), string literals (inner text, quotes
/// dropped), and punctuation. "::" and "->" are single tokens so
/// member access and scope qualification stay recognisable.
struct Token {
  enum class Kind { kIdent, kString, kPunct };
  Kind kind = Kind::kIdent;
  int line = 0;      // 1-based source line
  std::string text;  // identifier, string contents, or punctuation
};

/// One source line, four ways. `code` and `tokens` blank the stripped
/// regions with spaces so columns survive (the historical strip()
/// behaviour the line rules were written against).
struct LexedLine {
  std::string raw;      // verbatim
  std::string code;     // comments blanked; string/char literals kept
  std::string tokens;   // comments and string/char literals blanked
  std::string comment;  // the line's comment text (// and /* */ both),
                        // concatenated when a line holds several
};

struct LexedFile {
  std::vector<LexedLine> lines;  // lines[i] is source line i+1
  std::vector<Token> tokens;     // whole-file stream, line-tagged
};

/// Tokenizes one file. Handles // and /* */ comments (including block
/// comments spanning lines), string and char literals with escapes.
LexedFile lex(const std::string& content);

/// True for characters that may appear in an identifier.
bool is_ident_char(char c);

}  // namespace simba::lint
