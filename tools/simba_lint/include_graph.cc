#include "include_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace simba::lint {
namespace {

std::string dir_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.rfind('/');
  return slash == std::string::npos ? "" : rel_path.substr(0, slash);
}

std::string stem_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.rfind('/');
  std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// Names a header offers an includer. Deliberately generous (member
// and parameter names count as exports): over-exporting can only
// silence an [include] warning, never invent one.
std::set<std::string> header_exports(const LexedFile& lex) {
  static const std::set<std::string> kTypeKeywords{"class", "struct", "enum",
                                                   "union"};
  std::set<std::string> exports;
  const std::vector<Token>& ts = lex.tokens;
  auto punct = [&](std::size_t i, const char* text) {
    return i < ts.size() && ts[i].kind == Token::Kind::kPunct &&
           ts[i].text == text;
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Token::Kind::kIdent) continue;
    const Token* prev = i > 0 ? &ts[i - 1] : nullptr;
    const Token* next = i + 1 < ts.size() ? &ts[i + 1] : nullptr;
    const bool prev_ident = prev && prev->kind == Token::Kind::kIdent;
    if (prev_ident && kTypeKeywords.count(prev->text) != 0) {
      exports.insert(ts[i].text);  // class/struct/enum/union name
      continue;
    }
    if (prev_ident && prev->text == "define" && i >= 2 && punct(i - 2, "#")) {
      exports.insert(ts[i].text);  // macro name
      continue;
    }
    if (prev_ident && prev->text == "using" && punct(i + 1, "=")) {
      exports.insert(ts[i].text);  // type alias
      continue;
    }
    // Declaration-shaped: an identifier a type expression precedes
    // and a declarator delimiter follows ("double wall_seconds(",
    // "Bus bus;", "int kMax = ").
    const bool declaratorish =
        next && next->kind == Token::Kind::kPunct &&
        (next->text == "(" || next->text == "=" || next->text == ";" ||
         next->text == "," || next->text == "{" || next->text == "[");
    const bool typed =
        prev && (prev->kind == Token::Kind::kIdent ||
                 (prev->kind == Token::Kind::kPunct &&
                  (prev->text == "*" || prev->text == "&" ||
                   prev->text == ">" || prev->text == ",")));
    if (declaratorish && typed) exports.insert(ts[i].text);
  }
  return exports;
}

std::set<std::string> file_idents(const LexedFile& lex) {
  std::set<std::string> idents;
  for (const Token& t : lex.tokens) {
    if (t.kind == Token::Kind::kIdent) idents.insert(t.text);
  }
  return idents;
}

}  // namespace

void run_include_graph(const std::vector<FileAnalysis>& files,
                       std::vector<Diagnostic>& diags) {
  std::map<std::string, int> index;
  for (std::size_t i = 0; i < files.size(); ++i) {
    index[files[i].rel_path] = static_cast<int>(i);
  }
  // Resolves a quoted include the way the build does: repo includes
  // are rooted at src/ (-Isrc), tool-local ones at the repo root or
  // next to the includer.
  auto resolve = [&](const std::string& includer,
                     const std::string& target) -> int {
    for (const std::string& candidate :
         {"src/" + target, target, dir_of(includer) + "/" + target}) {
      const auto it = index.find(candidate);
      if (it != index.end()) return it->second;
    }
    return -1;
  };

  const int n = static_cast<int>(files.size());
  std::vector<std::vector<std::pair<int, int>>> edges(n);  // (target, line)

  for (int i = 0; i < n; ++i) {
    const FileAnalysis& fa = files[i];

    // Direct [layer] checks — byte-identical to lint_file's, plus the
    // unregistered-directory check, so tree runs and single-file runs
    // never disagree about an include.
    if (fa.tree == Tree::kSrc && fa.rank < 0) {
      diags.push_back(Diagnostic{
          fa.rel_path, 1, "layer",
          "directory 'src/" + fa.module +
              "' is not registered in the layering DAG (tools/simba_lint)",
          Severity::kError});
    }
    for (const IncludeDirective& inc : fa.includes) {
      if (fa.tree != Tree::kTools) {
        const std::size_t slash = inc.target.find('/');
        const std::string target =
            slash == std::string::npos ? "" : inc.target.substr(0, slash);
        if (!target.empty() && target != fa.module) {
          const int target_rank = layer_rank(target);
          if (target_rank < 0) {
            diags.push_back(Diagnostic{
                fa.rel_path, inc.line, "layer",
                "include of unknown module '" + target +
                    "/' — register it in the layering DAG or fix the path",
                Severity::kError});
          } else if (fa.rank >= 0 && target_rank >= fa.rank) {
            diags.push_back(Diagnostic{
                fa.rel_path, inc.line, "layer",
                "layer '" + fa.module + "' (rank " +
                    std::to_string(fa.rank) + ") may not include '" + target +
                    "/' (rank " + std::to_string(target_rank) +
                    "): includes must point strictly down the layering DAG",
                Severity::kError});
          }
        }
      }
      const int target_index = resolve(fa.rel_path, inc.target);
      if (target_index >= 0 && target_index != i) {
        edges[i].push_back({target_index, inc.line});
      }
    }
    std::sort(edges[i].begin(), edges[i].end());
  }

  // File-level cycle detection. Rank checks are per-edge and per-
  // module; a cycle through unranked trees (tools/, fixtures) or
  // within one module would pass every edge check and still deadlock
  // the build's mental model, so cycles are their own error.
  {
    std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<int> stack;
    std::set<std::string> reported;
    // Iterative DFS; each frame is (node, next edge to try).
    std::vector<std::pair<int, std::size_t>> frames;
    for (int start = 0; start < n; ++start) {
      if (color[start] != 0) continue;
      frames.push_back({start, 0});
      color[start] = 1;
      stack.push_back(start);
      while (!frames.empty()) {
        auto& [node, edge_i] = frames.back();
        if (edge_i >= edges[node].size()) {
          color[node] = 2;
          stack.pop_back();
          frames.pop_back();
          continue;
        }
        const auto [target, line] = edges[node][edge_i++];
        if (color[target] == 0) {
          color[target] = 1;
          stack.push_back(target);
          frames.push_back({target, 0});
        } else if (color[target] == 1) {
          // Back edge: the cycle is `target .. node` on the stack.
          const auto cycle_begin =
              std::find(stack.begin(), stack.end(), target);
          std::vector<int> cycle(cycle_begin, stack.end());
          // Rotate so the lexicographically-first file leads: one
          // canonical spelling per cycle, stable across DFS order.
          const auto first = std::min_element(
              cycle.begin(), cycle.end(), [&](int a, int b) {
                return files[a].rel_path < files[b].rel_path;
              });
          std::rotate(cycle.begin(), first, cycle.end());
          std::string text = files[cycle[0]].rel_path;
          for (std::size_t k = 1; k < cycle.size(); ++k) {
            text += " -> " + files[cycle[k]].rel_path;
          }
          text += " -> " + files[cycle[0]].rel_path;
          if (reported.insert(text).second) {
            // Attribute the cycle to the directive in the leading
            // file that continues it.
            int at_line = 1;
            const int next_node = cycle.size() > 1 ? cycle[1] : cycle[0];
            for (const auto& [t, l] : edges[cycle[0]]) {
              if (t == next_node) at_line = l;
            }
            diags.push_back(Diagnostic{
                files[cycle[0]].rel_path, at_line, "layer",
                "include cycle: " + text, Severity::kError});
          }
        }
      }
    }
  }

  // Transitive module-DAG verification: walk module-level reachability
  // and require every reachable module to sit strictly below the
  // origin. Direct edges are already checked above, so this only adds
  // violations that need at least one intermediate hop (which a chain
  // of strictly-down direct edges cannot produce — so any hit here
  // means an unranked or cyclic hop smuggled an upward path in).
  {
    // module -> module -> (example includer, example line)
    std::map<std::string, std::map<std::string, std::pair<int, int>>> mgraph;
    for (int i = 0; i < n; ++i) {
      if (files[i].tree != Tree::kSrc) continue;
      for (const auto& [target, line] : edges[i]) {
        if (files[target].tree != Tree::kSrc) continue;
        const std::string& from = files[i].module;
        const std::string& to = files[target].module;
        if (from == to) continue;
        mgraph[from].emplace(to, std::make_pair(i, line));
      }
    }
    for (const auto& [origin, direct] : mgraph) {
      const int origin_rank = layer_rank(origin);
      if (origin_rank < 0) continue;
      // BFS from origin, remembering one step of provenance.
      std::map<std::string, std::string> parent;
      std::vector<std::string> queue;
      for (const auto& [to, via] : direct) {
        (void)via;
        if (parent.emplace(to, origin).second) queue.push_back(to);
      }
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::string at = queue[head];
        const int at_rank = layer_rank(at);
        const bool direct_edge = direct.count(at) != 0;
        if (!direct_edge && at != origin &&
            (at_rank < 0 || at_rank >= origin_rank)) {
          // Reconstruct the module path for the message.
          std::vector<std::string> path{at};
          for (std::string p = parent[at]; p != origin; p = parent[p]) {
            path.push_back(p);
          }
          path.push_back(origin);
          std::reverse(path.begin(), path.end());
          std::string text = path[0];
          for (std::size_t k = 1; k < path.size(); ++k) {
            text += " -> " + path[k];
          }
          const auto& [via_file, via_line] = direct.at(path[1]);
          diags.push_back(Diagnostic{
              files[via_file].rel_path, via_line, "layer",
              "module '" + origin + "' (rank " +
                  std::to_string(origin_rank) +
                  ") transitively includes '" + at + "' (rank " +
                  std::to_string(at_rank) + ") via " + text +
                  ": the layering DAG must hold transitively",
              Severity::kError});
        }
        const auto next = mgraph.find(at);
        if (next == mgraph.end()) continue;
        for (const auto& [to, via] : next->second) {
          (void)via;
          if (parent.emplace(to, at).second) queue.push_back(to);
        }
      }
    }
  }

  // IWYU-lite [include] warnings, src/ and tools/ only.
  std::vector<std::set<std::string>> exports_cache(n);
  std::vector<char> exports_ready(n, 0);
  for (int i = 0; i < n; ++i) {
    const FileAnalysis& fa = files[i];
    if (fa.tree != Tree::kSrc && fa.tree != Tree::kTools) continue;
    std::set<std::string> idents;
    bool idents_ready = false;
    for (const IncludeDirective& inc : fa.includes) {
      const int target_index = resolve(fa.rel_path, inc.target);
      if (target_index < 0 || target_index == i) continue;
      const FileAnalysis& target = files[target_index];
      // A .cc's own header is included for the definition-matches-
      // declaration check, not for names.
      if (stem_of(target.rel_path) == stem_of(fa.rel_path) &&
          dir_of(target.rel_path) == dir_of(fa.rel_path)) {
        continue;
      }
      if (!exports_ready[target_index]) {
        exports_cache[target_index] = header_exports(target.lex);
        exports_ready[target_index] = 1;
      }
      const std::set<std::string>& exports = exports_cache[target_index];
      if (exports.empty()) continue;  // umbrella/no-decl header: no basis
      if (!idents_ready) {
        idents = file_idents(fa.lex);
        idents_ready = true;
      }
      bool used = false;
      for (const std::string& name : exports) {
        if (idents.count(name) != 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        diags.push_back(Diagnostic{
            fa.rel_path, inc.line, "include",
            "included header \"" + inc.target +
                "\" exports no name this file mentions; drop the include "
                "or include what you use directly",
            Severity::kWarning});
      }
    }
  }
}

}  // namespace simba::lint
