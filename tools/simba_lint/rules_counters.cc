// The [counters] passes: extracting counter-name literals from the
// token stream (collect_counter_sites) and validating them against
// the checked-in registry (check_counters). Extraction works on the
// cross-line token stream, so calls split across lines, adjacent
// string-literal concatenation, and ternary name selection all
// resolve to the literals that actually reach Counters::bump/get.
#include <map>

#include "registry.h"
#include "rules.h"

namespace simba::lint {
namespace {

// Edit-distance budget for the "did you mean" hint.
constexpr std::size_t kNearMissDistance = 2;

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

// Reads the string literal starting at `i`, gluing adjacent literal
// tokens ("conservation." "invented" split across lines). Returns the
// index just past the literal run.
std::size_t glue_literal(const std::vector<Token>& ts, std::size_t i,
                         std::string& out) {
  out.clear();
  while (i < ts.size() && ts[i].kind == Token::Kind::kString) {
    out += ts[i].text;
    ++i;
  }
  return i;
}

}  // namespace

void collect_counter_sites(FileAnalysis& fa) {
  const std::vector<Token>& ts = fa.lex.tokens;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != Token::Kind::kIdent) continue;
    const bool is_bump = ts[i].text == "bump";
    const bool is_get = ts[i].text == "get";
    if (!is_bump && !is_get) continue;
    if (!is_punct(ts[i + 1], "(")) continue;
    const bool member =
        i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"));
    // bump() is distinctive enough to match free or member; get() only
    // as a member call — free get(...) is any old accessor (e.g. the
    // alert-header lookup lambda in src/core/alert.cc).
    if (is_get && !member) continue;
    if (is_bump && i > 0 && is_punct(ts[i - 1], "::")) continue;

    // Scan the argument list: depth 1 is the call's own argument
    // level. The counter name is the literal that starts the first
    // argument — including each arm of a ternary (`cond ? "a" : "b"`),
    // whose literals sit right after '?' or ':' at depth 1.
    int depth = 1;
    bool at_arg_start = true;  // next literal run starts the name
    for (std::size_t j = i + 2; j < ts.size() && depth > 0;) {
      const Token& t = ts[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          ++depth;
        } else if (t.text == ")" || t.text == "]" || t.text == "}") {
          --depth;
        } else if (depth == 1 && (t.text == "?" || t.text == ":")) {
          at_arg_start = true;  // each ternary arm names a counter
        } else if (depth == 1 && t.text == ",") {
          break;  // rest is the bump amount; no names there
        }
        ++j;
        continue;
      }
      if (t.kind == Token::Kind::kString && depth == 1 && at_arg_start) {
        CounterSite site;
        site.line = t.line;
        site.is_bump = is_bump;
        const std::size_t next = glue_literal(ts, j, site.name);
        // A literal glued to '+' is a key *prefix* ("seen_via_" +
        // transport), not a full name.
        site.is_prefix = next < ts.size() && is_punct(ts[next], "+");
        if (!site.name.empty()) fa.counter_sites.push_back(std::move(site));
        j = next;
        at_arg_start = false;
        continue;
      }
      // An identifier or stray literal: this argument's name (if any)
      // is computed, not literal — nothing to record until the next
      // ternary arm.
      at_arg_start = false;
      ++j;
    }
  }
}

void check_counters(const CounterRegistry& registry,
                    const std::string& def_rel_path,
                    const std::vector<FileAnalysis>& files,
                    std::vector<Diagnostic>& diags) {
  // name -> has a bump site somewhere. Prefix *uses* mark every entry
  // they could produce ("seen_via_" marks seen_via_im/email/sms).
  std::map<std::string, bool> bumped;
  for (const FileAnalysis& fa : files) {
    for (const CounterSite& site : fa.counter_sites) {
      if (site.is_prefix) {
        if (!registry.resolve_prefix(site.name)) {
          diags.push_back(Diagnostic{
              fa.rel_path, site.line, "counters",
              "counter-name prefix \"" + site.name +
                  "\" matches no registered counter or pattern; register "
                  "the dynamic names it produces in " + def_rel_path,
              Severity::kError});
        } else if (site.is_bump) {
          for (const CounterEntry& entry : registry.entries()) {
            if (entry.name.size() >= site.name.size() &&
                entry.name.compare(0, site.name.size(), site.name) == 0) {
              bumped[entry.name] = true;
            }
          }
        }
        continue;
      }
      const CounterEntry* entry = registry.resolve(site.name);
      if (entry == nullptr) {
        std::string message =
            "counter \"" + site.name + "\" is not registered in " +
            def_rel_path;
        const std::string hint =
            registry.nearest(site.name, kNearMissDistance);
        if (!hint.empty()) {
          message += " — did you mean \"" + hint + "\"?";
        } else {
          message += " — add it (name, subsystem, role, doc) or fix the name";
        }
        diags.push_back(Diagnostic{fa.rel_path, site.line, "counters",
                                   std::move(message), Severity::kError});
        continue;
      }
      if (site.is_bump) bumped[entry->name] = true;
    }
  }
  // The reverse direction: a registered literal counter nothing ever
  // bumps is registry rot (a rename that forgot the .def, or a dead
  // counter) — unless it is declared dynamic, i.e. bumped through a
  // computed key the lexical sweep cannot see.
  for (const CounterEntry& entry : registry.entries()) {
    if (entry.dynamic || entry.prefix) continue;
    if (!bumped[entry.name]) {
      diags.push_back(Diagnostic{
          def_rel_path, entry.line, "counters",
          "registered counter '" + entry.name +
              "' has no bump(\"...\") site anywhere in the tree; delete "
              "the entry or mark it 'dynamic' if it is bumped through a "
              "computed key",
          Severity::kError});
    }
  }
}

}  // namespace simba::lint
