#include "sarif.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <string_view>

namespace simba::lint {
namespace {

constexpr const char* kSchemaUri =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";

// One-line rule summaries for the driver.rules metadata (what GitHub
// shows as the check name tooltip).
const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> kDescriptions{
      {"layer", "Includes must point strictly down the layering DAG"},
      {"include", "Included header exports no name this file uses"},
      {"determinism",
       "Real clocks, ambient randomness, and unwaived unordered "
       "containers are banned in simulation code"},
      {"sync", "Raw std synchronisation primitives are banned outside "
               "util/"},
      {"bounded", "Queues on the alert path must name their bound"},
      {"trace", "Trace spans carry virtual time only"},
      {"alloc", "Debug/trace log messages must be built lazily"},
      {"counters", "Counter names must resolve against "
                   "src/util/counter_registry.def"},
      {"waiver", "Waivers must still suppress a diagnostic"},
  };
  return kDescriptions;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  append_escaped(out, text);
  out += '"';
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for validate_sarif. Full grammar, no
// dependencies; numbers are kept as doubles (line numbers are small).
// ---------------------------------------------------------------------------
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out)) {
      error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_space();
    if (pos_ != text_.size()) {
      error = "trailing content after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool literal(const char* word, JsonValue& out, JsonValue::Kind kind,
               bool boolean) {
    const std::size_t len = std::string_view(word).size();
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    out.kind = kind;
    out.boolean = boolean;
    return true;
  }

  bool string_token(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            // Validation only needs well-formedness, not the code
            // point: keep the escape textually.
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue& out) {
    skip_space();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') return literal("null", out, JsonValue::Kind::kNull, false);
    if (c == 't') return literal("true", out, JsonValue::Kind::kBool, true);
    if (c == 'f') return literal("false", out, JsonValue::Kind::kBool, false);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_token(out.string);
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_space();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue element;
        if (!value(element)) return false;
        out.array.push_back(std::move(element));
        skip_space();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_space();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_space();
        std::string key;
        if (!string_token(key)) return false;
        skip_space();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        JsonValue element;
        if (!value(element)) return false;
        out.object.emplace(std::move(key), std::move(element));
        skip_space();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      if (text_[pos_] == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      out.kind = JsonValue::Kind::kNumber;
      out.number = std::stod(text_.substr(start, pos_ - start));
      return true;
    }
    return fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

const JsonValue* require(const JsonValue* v, const char* key,
                         JsonValue::Kind kind, std::string& error,
                         const std::string& where) {
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    error = where + " is not an object";
    return nullptr;
  }
  const JsonValue* field = v->find(key);
  if (field == nullptr) {
    error = where + " is missing required property '" + key + "'";
    return nullptr;
  }
  if (field->kind != kind) {
    error = where + "." + key + " has the wrong type";
    return nullptr;
  }
  return field;
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diagnostics) {
  // Rule metadata: the distinct rule ids actually present, sorted.
  std::vector<std::string> rule_ids;
  for (const Diagnostic& d : diagnostics) rule_ids.push_back(d.rule);
  std::sort(rule_ids.begin(), rule_ids.end());
  rule_ids.erase(std::unique(rule_ids.begin(), rule_ids.end()),
                 rule_ids.end());

  std::string out;
  out += "{\n";
  out += "  \"$schema\": " + json_quote(kSchemaUri) + ",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"simba-lint\",\n";
  out += "          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    const auto& descriptions = rule_descriptions();
    const auto it = descriptions.find(rule_ids[i]);
    const std::string description =
        it == descriptions.end() ? "simba-lint rule" : it->second;
    out += i == 0 ? "\n" : ",\n";
    out += "            { \"id\": " + json_quote(rule_ids[i]) +
           ", \"shortDescription\": { \"text\": " + json_quote(description) +
           " } }";
  }
  out += rule_ids.empty() ? "]\n" : "\n          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\n";
    out += "          \"ruleId\": " + json_quote(d.rule) + ",\n";
    out += std::string("          \"level\": ") +
           (d.severity == Severity::kError ? "\"error\"" : "\"warning\"") +
           ",\n";
    out += "          \"message\": { \"text\": " + json_quote(d.message) +
           " },\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": { \"uri\": " +
           json_quote(d.file) + " },\n";
    out += "                \"region\": { \"startLine\": " +
           std::to_string(d.line) + " }\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += "        }";
  }
  out += diagnostics.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string validate_sarif(const std::string& json) {
  JsonValue root;
  std::string error;
  JsonParser parser(json);
  if (!parser.parse(root, error)) return error;
  if (root.kind != JsonValue::Kind::kObject) return "top level is not an object";

  const JsonValue* schema =
      require(&root, "$schema", JsonValue::Kind::kString, error, "log");
  if (schema == nullptr) return error;
  if (schema->string.find("sarif") == std::string::npos) {
    return "$schema does not reference a SARIF schema";
  }
  const JsonValue* version =
      require(&root, "version", JsonValue::Kind::kString, error, "log");
  if (version == nullptr) return error;
  if (version->string != "2.1.0") return "version is not \"2.1.0\"";

  const JsonValue* runs =
      require(&root, "runs", JsonValue::Kind::kArray, error, "log");
  if (runs == nullptr) return error;
  if (runs->array.empty()) return "runs is empty";

  for (std::size_t r = 0; r < runs->array.size(); ++r) {
    const std::string where = "runs[" + std::to_string(r) + "]";
    const JsonValue& run = runs->array[r];
    const JsonValue* tool =
        require(&run, "tool", JsonValue::Kind::kObject, error, where);
    if (tool == nullptr) return error;
    const JsonValue* driver = require(tool, "driver", JsonValue::Kind::kObject,
                                      error, where + ".tool");
    if (driver == nullptr) return error;
    if (require(driver, "name", JsonValue::Kind::kString, error,
                where + ".tool.driver") == nullptr) {
      return error;
    }
    std::vector<std::string> declared_rules;
    if (const JsonValue* rules = driver->find("rules")) {
      if (rules->kind != JsonValue::Kind::kArray) {
        return where + ".tool.driver.rules is not an array";
      }
      for (const JsonValue& rule : rules->array) {
        const JsonValue* id = require(&rule, "id", JsonValue::Kind::kString,
                                      error, where + ".tool.driver.rules[]");
        if (id == nullptr) return error;
        declared_rules.push_back(id->string);
      }
    }
    const JsonValue* results =
        require(&run, "results", JsonValue::Kind::kArray, error, where);
    if (results == nullptr) return error;
    for (std::size_t i = 0; i < results->array.size(); ++i) {
      const std::string rwhere = where + ".results[" + std::to_string(i) + "]";
      const JsonValue& result = results->array[i];
      const JsonValue* rule_id =
          require(&result, "ruleId", JsonValue::Kind::kString, error, rwhere);
      if (rule_id == nullptr) return error;
      if (std::find(declared_rules.begin(), declared_rules.end(),
                    rule_id->string) == declared_rules.end()) {
        return rwhere + " uses undeclared ruleId '" + rule_id->string + "'";
      }
      const JsonValue* level =
          require(&result, "level", JsonValue::Kind::kString, error, rwhere);
      if (level == nullptr) return error;
      if (level->string != "error" && level->string != "warning" &&
          level->string != "note" && level->string != "none") {
        return rwhere + ".level '" + level->string + "' is not a SARIF level";
      }
      const JsonValue* message = require(&result, "message",
                                         JsonValue::Kind::kObject, error,
                                         rwhere);
      if (message == nullptr) return error;
      if (require(message, "text", JsonValue::Kind::kString, error,
                  rwhere + ".message") == nullptr) {
        return error;
      }
      const JsonValue* locations = require(&result, "locations",
                                           JsonValue::Kind::kArray, error,
                                           rwhere);
      if (locations == nullptr) return error;
      if (locations->array.empty()) return rwhere + ".locations is empty";
      for (const JsonValue& location : locations->array) {
        const JsonValue* physical =
            require(&location, "physicalLocation", JsonValue::Kind::kObject,
                    error, rwhere + ".locations[]");
        if (physical == nullptr) return error;
        const JsonValue* artifact = require(
            physical, "artifactLocation", JsonValue::Kind::kObject, error,
            rwhere + ".locations[].physicalLocation");
        if (artifact == nullptr) return error;
        if (require(artifact, "uri", JsonValue::Kind::kString, error,
                    rwhere + ".locations[].physicalLocation.artifactLocation")
            == nullptr) {
          return error;
        }
        const JsonValue* region = require(
            physical, "region", JsonValue::Kind::kObject, error,
            rwhere + ".locations[].physicalLocation");
        if (region == nullptr) return error;
        const JsonValue* start_line = require(
            region, "startLine", JsonValue::Kind::kNumber, error,
            rwhere + ".locations[].physicalLocation.region");
        if (start_line == nullptr) return error;
        if (start_line->number < 1) {
          return rwhere + " startLine must be >= 1";
        }
      }
    }
  }
  return "";
}

}  // namespace simba::lint
