// Fixture tests for simba-lint: each rule family gets a tiny tree
// under testdata/ and the test asserts the exact diagnostics (file,
// line, rule, formatted text) and the CLI exit codes.
#include "lint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sarif.h"

namespace simba::lint {
namespace {

const char* const kTestdata = SIMBA_LINT_TESTDATA;

LintResult lint_fixture(const std::string& tree) {
  return lint_tree(std::string(kTestdata) + "/" + tree);
}

int cli(std::vector<const char*> args, std::string& out) {
  args.insert(args.begin(), "simba_lint");
  return run_cli(static_cast<int>(args.size()), args.data(), out);
}

TEST(SimbaLint, CleanTreePasses) {
  const LintResult result = lint_fixture("clean");
  EXPECT_EQ(result.files_scanned, 2);
  ASSERT_TRUE(result.diagnostics.empty())
      << format(result.diagnostics.front());

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/clean").c_str()}, out),
            0);
  EXPECT_NE(out.find("2 files scanned, 0 violation(s)"), std::string::npos)
      << out;
}

TEST(SimbaLint, LayeringViolations) {
  const LintResult result = lint_fixture("layering");
  ASSERT_EQ(result.diagnostics.size(), 2u);
  // Diagnostics are sorted by path: core file first, then xml.
  const Diagnostic& up = result.diagnostics[0];
  EXPECT_EQ(up.file, "src/core/bad_core.cc");
  EXPECT_EQ(up.line, 3);
  EXPECT_EQ(up.rule, "layer");
  EXPECT_EQ(format(up),
            "src/core/bad_core.cc:3: error: [layer] layer 'core' (rank 5) "
            "may not include 'fleet/' (rank 7): includes must point "
            "strictly down the layering DAG");

  const Diagnostic& sideways = result.diagnostics[1];
  EXPECT_EQ(sideways.file, "src/xml/bad_sibling.h");
  EXPECT_EQ(sideways.line, 5);
  EXPECT_EQ(sideways.rule, "layer");
  EXPECT_NE(sideways.message.find("'xml' (rank 1) may not include 'sim/'"),
            std::string::npos)
      << sideways.message;

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/layering").c_str()}, out), 1);
}

TEST(SimbaLint, UnknownModuleInclude) {
  const std::vector<Diagnostic> diags =
      lint_file("src/core/x.cc", "#include \"quux/q.h\"\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[0].rule, "layer");
  EXPECT_NE(diags[0].message.find("unknown module 'quux/'"),
            std::string::npos);
}

TEST(SimbaLint, DeterminismBansAndAllowlist) {
  const LintResult result = lint_fixture("determinism");
  // bad_clock.cc: steady_clock (7), rand (10), getenv (11),
  // random_device (12). wall_clock.cc: allowlisted, zero findings.
  ASSERT_EQ(result.diagnostics.size(), 4u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/sim/bad_clock.cc");
    EXPECT_EQ(d.rule, "determinism");
  }
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_NE(result.diagnostics[0].message.find("'steady_clock'"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].line, 10);
  EXPECT_NE(result.diagnostics[1].message.find("'rand('"), std::string::npos);
  EXPECT_EQ(result.diagnostics[2].line, 11);
  EXPECT_NE(result.diagnostics[2].message.find("'getenv('"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[3].line, 12);
  EXPECT_NE(result.diagnostics[3].message.find("'random_device'"),
            std::string::npos);

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/determinism").c_str()}, out),
      1);
  EXPECT_NE(out.find("4 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, UnorderedWaivers) {
  const LintResult result = lint_fixture("unordered");
  // Only the unwaived declaration on line 7 is flagged: the include
  // lines are exempt, the same-line waiver and the previous-line
  // waiver are honored.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/core/maps.cc");
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_EQ(result.diagnostics[0].rule, "determinism");
  EXPECT_NE(result.diagnostics[0].message.find("simba-lint: ordered"),
            std::string::npos);
}

TEST(SimbaLint, RawSyncOutsideUtil) {
  const LintResult result = lint_fixture("sync");
  // bad_mutex.cc: member (7) plus both tokens on the lock line (11);
  // util/ok_mutex.cc is exempt.
  ASSERT_EQ(result.diagnostics.size(), 3u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/net/bad_mutex.cc");
    EXPECT_EQ(d.rule, "sync");
    EXPECT_NE(d.message.find("util::Mutex"), std::string::npos);
  }
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_NE(result.diagnostics[0].message.find("'std::mutex'"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].line, 11);
  EXPECT_EQ(result.diagnostics[2].line, 11);
}

TEST(SimbaLint, BoundedQueueWaivers) {
  const LintResult result = lint_fixture("bounded");
  EXPECT_EQ(result.files_scanned, 3);
  // bad_queue.cc: unwaived deque member (8) and queue member (9). The
  // include lines, both waived members in net/ok_queue.cc (same-line
  // and previous-line waivers), and the fleet-module queue stay clean.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  const Diagnostic& unbounded_deque = result.diagnostics[0];
  EXPECT_EQ(unbounded_deque.file, "src/core/bad_queue.cc");
  EXPECT_EQ(unbounded_deque.line, 8);
  EXPECT_EQ(unbounded_deque.rule, "bounded");
  EXPECT_EQ(format(unbounded_deque),
            "src/core/bad_queue.cc:8: error: [bounded] "
            "std::deque/std::queue on the alert path needs a "
            "'// simba-lint: bounded(<bound, shed path>)' waiver (same or "
            "previous line) naming the bound that keeps it from growing "
            "without limit under storm load");
  EXPECT_EQ(result.diagnostics[1].file, "src/core/bad_queue.cc");
  EXPECT_EQ(result.diagnostics[1].line, 9);
  EXPECT_EQ(result.diagnostics[1].rule, "bounded");

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/bounded").c_str()}, out), 1);
  EXPECT_NE(out.find("2 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, FlatMapHotDirectoryWaivers) {
  const LintResult result = lint_fixture("flatmap");
  EXPECT_EQ(result.files_scanned, 3);
  // bad_map.cc: unwaived string-keyed member (8) and pair-of-strings
  // key (9). The include lines, the int-keyed map, both waived members
  // in net/ok_map.cc (same-line and previous-line waivers), and the
  // map in the cold gui/ module stay clean.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  const Diagnostic& string_key = result.diagnostics[0];
  EXPECT_EQ(string_key.file, "src/core/bad_map.cc");
  EXPECT_EQ(string_key.line, 8);
  EXPECT_EQ(string_key.rule, "flatmap");
  EXPECT_EQ(format(string_key),
            "src/core/bad_map.cc:8: error: [flatmap] string-keyed std::map "
            "in a hot directory; use util::FlatMap (util/flat_map.h, "
            "transparent string_view hashing) with sorted_items() where "
            "order matters, or add a '// simba-lint: ordered' waiver (same "
            "or previous line) asserting the sorted iteration itself is "
            "load-bearing");
  EXPECT_EQ(result.diagnostics[1].file, "src/core/bad_map.cc");
  EXPECT_EQ(result.diagnostics[1].line, 9);
  EXPECT_EQ(result.diagnostics[1].rule, "flatmap");

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/flatmap").c_str()}, out), 1);
  EXPECT_NE(out.find("2 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, TraceSpansMustUseVirtualTime) {
  const LintResult result = lint_fixture("trace");
  EXPECT_EQ(result.files_scanned, 2);
  // bad_trace.cc: WallTimer on the emit line (16), wall_seconds on the
  // Span line (17). The virtual-time emissions in both files and the
  // span-free wall_seconds declaration (9) stay clean.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  const Diagnostic& timer = result.diagnostics[0];
  EXPECT_EQ(timer.file, "src/fleet/bad_trace.cc");
  EXPECT_EQ(timer.line, 16);
  EXPECT_EQ(timer.rule, "trace");
  EXPECT_EQ(format(timer),
            "src/fleet/bad_trace.cc:16: error: [trace] trace span stamped "
            "from wall-clock source 'WallTimer'; spans carry virtual time "
            "only (sim::Simulator::now) so merged traces stay bit-identical "
            "across runs and thread counts");
  const Diagnostic& seconds = result.diagnostics[1];
  EXPECT_EQ(seconds.line, 17);
  EXPECT_EQ(seconds.rule, "trace");
  EXPECT_NE(seconds.message.find("'wall_seconds'"), std::string::npos)
      << seconds.message;

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/trace").c_str()}, out),
            1);
  EXPECT_NE(out.find("2 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, EagerLogMessagesAreFlagged) {
  const LintResult result = lint_fixture("alloc");
  EXPECT_EQ(result.files_scanned, 2);
  // bad_log.cc: '+' (12), strformat (13), to_string (14). The literal
  // message, log_warn, the declarations, and everything in ok_log.cc
  // (lazy macro, no-build call, comment, string literal) stay clean.
  ASSERT_EQ(result.diagnostics.size(), 3u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/core/bad_log.cc");
    EXPECT_EQ(d.rule, "alloc");
  }
  EXPECT_EQ(result.diagnostics[0].line, 12);
  EXPECT_EQ(format(result.diagnostics[0]),
            "src/core/bad_log.cc:12: error: [alloc] message for 'log_debug(' "
            "is built eagerly (+/strformat/to_string in the argument list) "
            "and allocates even when the level is disabled; use "
            "SIMBA_LOG_DEBUG (util/log.h) so the message is only built when "
            "it will be written");
  EXPECT_EQ(result.diagnostics[1].line, 13);
  EXPECT_NE(result.diagnostics[1].message.find("'log_trace('"),
            std::string::npos);
  EXPECT_NE(result.diagnostics[1].message.find("SIMBA_LOG_TRACE"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[2].line, 14);

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/alloc").c_str()}, out),
            1);
  EXPECT_NE(out.find("3 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, CommentsAndStringsDoNotTrip) {
  const std::vector<Diagnostic> diags = lint_file(
      "src/core/x.cc",
      "// rand() and std::mutex in a comment\n"
      "/* steady_clock in a block\n"
      "   spanning lines: getenv( */\n"
      "const char* s = \"rand( std::mutex steady_clock\";\n");
  EXPECT_TRUE(diags.empty()) << format(diags.front());
}

TEST(SimbaLint, MemberCallsAreNotBannedCalls) {
  const std::vector<Diagnostic> diags = lint_file(
      "src/core/x.cc",
      "void f(Sim& s) { s.time(); s.clock(); sim->time(); my_time(1); }\n");
  EXPECT_TRUE(diags.empty()) << format(diags.front());
}

TEST(SimbaLint, CounterRegistryChecksEverySite) {
  const LintResult result = lint_fixture("counters");
  EXPECT_EQ(result.files_scanned, 3);
  // good.cc (exact, glued, ternary, prefix-into-pattern sites) and the
  // get()-only probe of the dynamic entry stay clean; bad.cc's three
  // sites and the never-bumped registry entry are errors.
  ASSERT_EQ(result.diagnostics.size(), 4u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, "counters");
    EXPECT_EQ(d.severity, Severity::kError);
  }
  EXPECT_EQ(format(result.diagnostics[0]),
            "src/core/bad.cc:3: error: [counters] counter \"alert_sent\" is "
            "not registered in src/util/counter_registry.def — did you mean "
            "\"alerts_sent\"?");
  EXPECT_EQ(format(result.diagnostics[1]),
            "src/core/bad.cc:4: error: [counters] counter \"totally_unknown\" "
            "is not registered in src/util/counter_registry.def — add it "
            "(name, subsystem, role, doc) or fix the name");
  EXPECT_EQ(format(result.diagnostics[2]),
            "src/core/bad.cc:5: error: [counters] counter-name prefix \"zz.\" "
            "matches no registered counter or pattern; register the dynamic "
            "names it produces in src/util/counter_registry.def");
  EXPECT_EQ(format(result.diagnostics[3]),
            "src/util/counter_registry.def:6: error: [counters] registered "
            "counter 'stale_counter' has no bump(\"...\") site anywhere in "
            "the tree; delete the entry or mark it 'dynamic' if it is bumped "
            "through a computed key");

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/counters").c_str()}, out), 1);
  EXPECT_NE(out.find("4 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, RegistryParseErrors) {
  const LintResult result = lint_fixture("registry_errors");
  // One diagnostic per malformed line plus the duplicate-name check;
  // the well-formed entry is bumped by use.cc, so nothing else fires.
  ASSERT_EQ(result.diagnostics.size(), 9u);
  std::string all;
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, "counters");
    EXPECT_EQ(d.file, "src/util/counter_registry.def");
    all += format(d);
    all += '\n';
  }
  EXPECT_NE(all.find(":2: error: [counters] malformed registry line: "
                     "expected '<name> <subsystem> <source|sink|neutral> "
                     "[dynamic] -- doc'"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":4: error: [counters] malformed registry line for "
                     "'short_line'"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":5: error: [counters] unknown subsystem 'nowhere' for "
                     "counter 'bad_subsystem'"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":6: error: [counters] unknown conservation role "
                     "'upward' for counter 'bad_role' (want source, sink, or "
                     "neutral)"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":7: error: [counters] unknown flag 'sticky' for "
                     "counter 'bad_flag' (only 'dynamic' is recognised)"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":8: error: [counters] trailing field 'surplus' for "
                     "counter 'extra_field' before the '--' doc separator"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":9: error: [counters] counter 'no_doc' is missing its "
                     "one-line doc"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find(":10: error: [counters] prefix pattern '*' would match "
                     "every counter"),
            std::string::npos)
      << all;
  // The duplicate pair sorts by name only, so which of lines 3/11 is
  // "first" is unspecified — assert the message, not the line.
  EXPECT_NE(all.find("duplicate registry entry 'ok_counter' (first declared "
                     "on line "),
            std::string::npos)
      << all;
}

TEST(SimbaLint, IncludeCycleAndUnusedInclude) {
  const LintResult result = lint_fixture("include");
  EXPECT_EQ(result.files_scanned, 4);
  // user.cc pulls in a.h without mentioning anything it exports
  // (warning); a.h and b.h include each other (error, reported once,
  // spelled from the lexicographically-first file).
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(format(result.diagnostics[0]),
            "src/core/user.cc:1: warning: [include] included header "
            "\"util/a.h\" exports no name this file mentions; drop the "
            "include or include what you use directly");
  EXPECT_EQ(format(result.diagnostics[1]),
            "src/util/a.h:2: error: [layer] include cycle: src/util/a.h -> "
            "src/util/b.h -> src/util/a.h");

  // Warnings alone would exit 0; the cycle error makes it 1.
  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/include").c_str()}, out), 1);
  EXPECT_NE(out.find("4 files scanned, 1 violation(s), 1 warning(s)"),
            std::string::npos)
      << out;
}

TEST(SimbaLint, WaiverAuditEdgeCases) {
  const LintResult result = lint_fixture("waiver");
  EXPECT_EQ(result.files_scanned, 1);
  // The previous-line waiver with trailing prose and the two-markers-
  // on-one-line comment all suppress something; the stale waiver over
  // a std::map and the unknown kind are the only findings.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(format(result.diagnostics[0]),
            "src/core/waivers.cc:8: error: [waiver] waiver '// simba-lint: "
            "ordered' does not suppress any diagnostic on this or the next "
            "line; remove it — waivers must not outlive their reason");
  EXPECT_EQ(format(result.diagnostics[1]),
            "src/core/waivers.cc:10: error: [waiver] unknown waiver kind "
            "'frobnicate' (recognised: 'ordered', 'bounded(...)')");
}

TEST(SimbaLint, SarifRoundTripValidates) {
  const LintResult result = lint_fixture("counters");
  ASSERT_FALSE(result.diagnostics.empty());
  const std::string sarif = to_sarif(result.diagnostics);
  EXPECT_EQ(validate_sarif(sarif), "");
  // Spot-check the payload carries the findings.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"counters\""), std::string::npos);
  EXPECT_NE(sarif.find("src/core/bad.cc"), std::string::npos);

  // An empty run is still a valid SARIF log.
  EXPECT_EQ(validate_sarif(to_sarif({})), "");

  // Corrupted logs are rejected with a reason.
  EXPECT_NE(validate_sarif("{}"), "");
  EXPECT_NE(validate_sarif("not json"), "");
  std::string wrong_version = sarif;
  const std::size_t at = wrong_version.find("\"2.1.0\"");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 7, "\"9.9.9\"");
  EXPECT_NE(validate_sarif(wrong_version), "");
}

TEST(SimbaLint, CliWritesSarif) {
  const std::string sarif_path =
      testing::TempDir() + "/simba_lint_cli_test.sarif";
  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/waiver").c_str(),
                 "--sarif", sarif_path.c_str()},
                out),
            1);
  std::ifstream in(sarif_path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(validate_sarif(buf.str()), "");
  EXPECT_NE(buf.str().find("\"ruleId\": \"waiver\""), std::string::npos);
  std::remove(sarif_path.c_str());
}

TEST(SimbaLint, CliErrors) {
  std::string out;
  EXPECT_EQ(cli({"--bogus"}, out), 2);
  out.clear();
  EXPECT_EQ(cli({"--root", "/nonexistent-simba-root"}, out), 2);
  EXPECT_NE(out.find("wrong --root?"), std::string::npos) << out;
}

}  // namespace
}  // namespace simba::lint
