// Fixture tests for simba-lint: each rule family gets a tiny tree
// under testdata/ and the test asserts the exact diagnostics (file,
// line, rule, formatted text) and the CLI exit codes.
#include "lint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace simba::lint {
namespace {

const char* const kTestdata = SIMBA_LINT_TESTDATA;

LintResult lint_fixture(const std::string& tree) {
  return lint_tree(std::string(kTestdata) + "/" + tree);
}

int cli(std::vector<const char*> args, std::string& out) {
  args.insert(args.begin(), "simba_lint");
  return run_cli(static_cast<int>(args.size()), args.data(), out);
}

TEST(SimbaLint, CleanTreePasses) {
  const LintResult result = lint_fixture("clean");
  EXPECT_EQ(result.files_scanned, 2);
  ASSERT_TRUE(result.diagnostics.empty())
      << format(result.diagnostics.front());

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/clean").c_str()}, out),
            0);
  EXPECT_NE(out.find("2 files scanned, 0 violation(s)"), std::string::npos)
      << out;
}

TEST(SimbaLint, LayeringViolations) {
  const LintResult result = lint_fixture("layering");
  ASSERT_EQ(result.diagnostics.size(), 2u);
  // Diagnostics are sorted by path: core file first, then xml.
  const Diagnostic& up = result.diagnostics[0];
  EXPECT_EQ(up.file, "src/core/bad_core.cc");
  EXPECT_EQ(up.line, 3);
  EXPECT_EQ(up.rule, "layer");
  EXPECT_EQ(format(up),
            "src/core/bad_core.cc:3: error: [layer] layer 'core' (rank 5) "
            "may not include 'fleet/' (rank 7): includes must point "
            "strictly down the layering DAG");

  const Diagnostic& sideways = result.diagnostics[1];
  EXPECT_EQ(sideways.file, "src/xml/bad_sibling.h");
  EXPECT_EQ(sideways.line, 5);
  EXPECT_EQ(sideways.rule, "layer");
  EXPECT_NE(sideways.message.find("'xml' (rank 1) may not include 'sim/'"),
            std::string::npos)
      << sideways.message;

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/layering").c_str()}, out), 1);
}

TEST(SimbaLint, UnknownModuleInclude) {
  const std::vector<Diagnostic> diags =
      lint_file("src/core/x.cc", "#include \"quux/q.h\"\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[0].rule, "layer");
  EXPECT_NE(diags[0].message.find("unknown module 'quux/'"),
            std::string::npos);
}

TEST(SimbaLint, DeterminismBansAndAllowlist) {
  const LintResult result = lint_fixture("determinism");
  // bad_clock.cc: steady_clock (7), rand (10), getenv (11),
  // random_device (12). wall_clock.cc: allowlisted, zero findings.
  ASSERT_EQ(result.diagnostics.size(), 4u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/sim/bad_clock.cc");
    EXPECT_EQ(d.rule, "determinism");
  }
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_NE(result.diagnostics[0].message.find("'steady_clock'"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].line, 10);
  EXPECT_NE(result.diagnostics[1].message.find("'rand('"), std::string::npos);
  EXPECT_EQ(result.diagnostics[2].line, 11);
  EXPECT_NE(result.diagnostics[2].message.find("'getenv('"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[3].line, 12);
  EXPECT_NE(result.diagnostics[3].message.find("'random_device'"),
            std::string::npos);

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/determinism").c_str()}, out),
      1);
  EXPECT_NE(out.find("4 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, UnorderedWaivers) {
  const LintResult result = lint_fixture("unordered");
  // Only the unwaived declaration on line 7 is flagged: the include
  // lines are exempt, the same-line waiver and the previous-line
  // waiver are honored.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/core/maps.cc");
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_EQ(result.diagnostics[0].rule, "determinism");
  EXPECT_NE(result.diagnostics[0].message.find("simba-lint: ordered"),
            std::string::npos);
}

TEST(SimbaLint, RawSyncOutsideUtil) {
  const LintResult result = lint_fixture("sync");
  // bad_mutex.cc: member (7) plus both tokens on the lock line (11);
  // util/ok_mutex.cc is exempt.
  ASSERT_EQ(result.diagnostics.size(), 3u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/net/bad_mutex.cc");
    EXPECT_EQ(d.rule, "sync");
    EXPECT_NE(d.message.find("util::Mutex"), std::string::npos);
  }
  EXPECT_EQ(result.diagnostics[0].line, 7);
  EXPECT_NE(result.diagnostics[0].message.find("'std::mutex'"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].line, 11);
  EXPECT_EQ(result.diagnostics[2].line, 11);
}

TEST(SimbaLint, BoundedQueueWaivers) {
  const LintResult result = lint_fixture("bounded");
  EXPECT_EQ(result.files_scanned, 3);
  // bad_queue.cc: unwaived deque member (8) and queue member (9). The
  // include lines, both waived members in net/ok_queue.cc (same-line
  // and previous-line waivers), and the fleet-module queue stay clean.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  const Diagnostic& unbounded_deque = result.diagnostics[0];
  EXPECT_EQ(unbounded_deque.file, "src/core/bad_queue.cc");
  EXPECT_EQ(unbounded_deque.line, 8);
  EXPECT_EQ(unbounded_deque.rule, "bounded");
  EXPECT_EQ(format(unbounded_deque),
            "src/core/bad_queue.cc:8: error: [bounded] "
            "std::deque/std::queue on the alert path needs a "
            "'// simba-lint: bounded(<bound, shed path>)' waiver (same or "
            "previous line) naming the bound that keeps it from growing "
            "without limit under storm load");
  EXPECT_EQ(result.diagnostics[1].file, "src/core/bad_queue.cc");
  EXPECT_EQ(result.diagnostics[1].line, 9);
  EXPECT_EQ(result.diagnostics[1].rule, "bounded");

  std::string out;
  EXPECT_EQ(
      cli({"--root", (std::string(kTestdata) + "/bounded").c_str()}, out), 1);
  EXPECT_NE(out.find("2 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, TraceSpansMustUseVirtualTime) {
  const LintResult result = lint_fixture("trace");
  EXPECT_EQ(result.files_scanned, 2);
  // bad_trace.cc: WallTimer on the emit line (16), wall_seconds on the
  // Span line (17). The virtual-time emissions in both files and the
  // span-free wall_seconds declaration (9) stay clean.
  ASSERT_EQ(result.diagnostics.size(), 2u);
  const Diagnostic& timer = result.diagnostics[0];
  EXPECT_EQ(timer.file, "src/fleet/bad_trace.cc");
  EXPECT_EQ(timer.line, 16);
  EXPECT_EQ(timer.rule, "trace");
  EXPECT_EQ(format(timer),
            "src/fleet/bad_trace.cc:16: error: [trace] trace span stamped "
            "from wall-clock source 'WallTimer'; spans carry virtual time "
            "only (sim::Simulator::now) so merged traces stay bit-identical "
            "across runs and thread counts");
  const Diagnostic& seconds = result.diagnostics[1];
  EXPECT_EQ(seconds.line, 17);
  EXPECT_EQ(seconds.rule, "trace");
  EXPECT_NE(seconds.message.find("'wall_seconds'"), std::string::npos)
      << seconds.message;

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/trace").c_str()}, out),
            1);
  EXPECT_NE(out.find("2 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, EagerLogMessagesAreFlagged) {
  const LintResult result = lint_fixture("alloc");
  EXPECT_EQ(result.files_scanned, 2);
  // bad_log.cc: '+' (12), strformat (13), to_string (14). The literal
  // message, log_warn, the declarations, and everything in ok_log.cc
  // (lazy macro, no-build call, comment, string literal) stay clean.
  ASSERT_EQ(result.diagnostics.size(), 3u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, "src/core/bad_log.cc");
    EXPECT_EQ(d.rule, "alloc");
  }
  EXPECT_EQ(result.diagnostics[0].line, 12);
  EXPECT_EQ(format(result.diagnostics[0]),
            "src/core/bad_log.cc:12: error: [alloc] message for 'log_debug(' "
            "is built eagerly (+/strformat/to_string in the argument list) "
            "and allocates even when the level is disabled; use "
            "SIMBA_LOG_DEBUG (util/log.h) so the message is only built when "
            "it will be written");
  EXPECT_EQ(result.diagnostics[1].line, 13);
  EXPECT_NE(result.diagnostics[1].message.find("'log_trace('"),
            std::string::npos);
  EXPECT_NE(result.diagnostics[1].message.find("SIMBA_LOG_TRACE"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[2].line, 14);

  std::string out;
  EXPECT_EQ(cli({"--root", (std::string(kTestdata) + "/alloc").c_str()}, out),
            1);
  EXPECT_NE(out.find("3 violation(s)"), std::string::npos) << out;
}

TEST(SimbaLint, CommentsAndStringsDoNotTrip) {
  const std::vector<Diagnostic> diags = lint_file(
      "src/core/x.cc",
      "// rand() and std::mutex in a comment\n"
      "/* steady_clock in a block\n"
      "   spanning lines: getenv( */\n"
      "const char* s = \"rand( std::mutex steady_clock\";\n");
  EXPECT_TRUE(diags.empty()) << format(diags.front());
}

TEST(SimbaLint, MemberCallsAreNotBannedCalls) {
  const std::vector<Diagnostic> diags = lint_file(
      "src/core/x.cc",
      "void f(Sim& s) { s.time(); s.clock(); sim->time(); my_time(1); }\n");
  EXPECT_TRUE(diags.empty()) << format(diags.front());
}

TEST(SimbaLint, CliErrors) {
  std::string out;
  EXPECT_EQ(cli({"--bogus"}, out), 2);
  out.clear();
  EXPECT_EQ(cli({"--root", "/nonexistent-simba-root"}, out), 2);
  EXPECT_NE(out.find("wrong --root?"), std::string::npos) << out;
}

}  // namespace
}  // namespace simba::lint
