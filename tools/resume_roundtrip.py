#!/usr/bin/env python3
"""Cross-process checkpoint/restore round trip (tier-1 ctest).

tests/resume_test.cc proves resume equivalence inside one process; this
driver closes the loophole by splitting the legs across *processes*,
exactly as a crash-restart would:

  A: one uninterrupted resumable run            -> a.json + a.jsonl
  B: same options, checkpoint after epoch 1,
     die at the checkpoint                      -> ckpt.bin
  C: fresh process decodes ckpt.bin, finishes   -> c.json + c.jsonl

Pass criteria: A and C byte-identical in the correctness report and the
merged JSONL lifecycle trace, and a truncated image must make the
resume leg exit nonzero (clean rejection, not UB).

Usage: resume_roundtrip.py /path/to/bench_portal_scale
"""

import json
import pathlib
import subprocess
import sys
import tempfile

COMMON = ["--users", "2", "--threads", "1", "--seed", "7", "--epochs", "3"]


def run(bench, *extra, expect_failure=False):
    cmd = [str(bench)] + COMMON + list(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if expect_failure:
        if proc.returncode == 0:
            fail(f"{' '.join(cmd)}: expected nonzero exit, got 0")
    elif proc.returncode != 0:
        fail(f"{' '.join(cmd)}: exit {proc.returncode}\n{proc.stderr}")
    return proc


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: resume_roundtrip.py /path/to/bench_portal_scale")
    bench = pathlib.Path(sys.argv[1])
    if not bench.exists():
        fail(f"bench binary not found: {bench}")

    with tempfile.TemporaryDirectory(prefix="simba-roundtrip-") as tmp:
        d = pathlib.Path(tmp)
        a_json, a_jsonl = d / "a.json", d / "a.jsonl"
        c_json, c_jsonl = d / "c.json", d / "c.jsonl"
        ckpt = d / "ckpt.bin"

        # Leg A: the run that never dies.
        run(bench, "--json", a_json, "--trace-jsonl", a_jsonl)

        # Leg B: checkpoint after epoch 1, then die. Only the image
        # survives this process.
        run(bench, "--checkpoint-every", "1", "--stop-at-checkpoint",
            "--checkpoint-path", ckpt, "--json", d / "b.json")
        b = json.loads((d / "b.json").read_text())
        if b["completed"] != 0:
            fail("leg B reported completed despite --stop-at-checkpoint")
        image = ckpt.read_bytes()
        if len(image) == 0:
            fail("leg B wrote an empty checkpoint image")
        if b["checkpoint_bytes"] != len(image):
            fail(f"checkpoint_bytes {b['checkpoint_bytes']} != file size "
                 f"{len(image)}")

        # Leg C: a fresh process decodes the image and finishes.
        run(bench, "--resume-from", ckpt, "--json", c_json,
            "--trace-jsonl", c_jsonl)

        a = json.loads(a_json.read_text())
        c = json.loads(c_json.read_text())
        if a["correctness"] != c["correctness"]:
            fail("resumed correctness report diverged from the "
                 f"uninterrupted run:\nA: {a['correctness']}\n"
                 f"C: {c['correctness']}")
        if a_jsonl.read_bytes() != c_jsonl.read_bytes():
            fail("resumed JSONL trace diverged from the uninterrupted run")
        if c["ckpt_restored"] != a["shards"]:
            fail(f"expected {a['shards']} restored shards, got "
                 f"{c['ckpt_restored']}")

        # Negative leg: a truncated image must be rejected cleanly.
        truncated = d / "truncated.bin"
        truncated.write_bytes(image[: len(image) // 2])
        run(bench, "--resume-from", truncated, expect_failure=True)

        print(f"PASS: cross-process round trip byte-identical "
              f"(checkpoint {len(image)} bytes, "
              f"correctness {len(a['correctness'])} bytes, "
              f"trace {a_jsonl.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
