// Experiment E7 — delivery strategies: timeliness vs irritation
// (Sections 2.3 and 3).
//
// Paper: "Aladdin by default sends all alerts as two emails and two
// cell phone SMS messages. However, such heavy use of redundancy has
// not worked well. For critical alerts, there is still no guarantee
// that any of the four messages can reach the user in time. For less
// critical alerts, four messages per alert are irritating and
// cumbersome." SIMBA's delivery modes (IM-with-ack, SMS and email as
// ordered fallbacks) aim to beat that trade-off.
//
// Each strategy runs the same critical-alert workload against the same
// user model (desk-away windows, phone coverage gaps, periodic email
// checks). Reported: on-time delivery at several deadlines, messages
// per alert (irritation), duplicates the user had to discard.
#include "common.h"
#include "core/baseline.h"

using namespace simba;
using namespace simba::bench;

namespace {

struct StrategyResult {
  std::string name;
  int alerts = 0;
  int seen = 0;
  int on_time_1m = 0;
  int on_time_5m = 0;
  int on_time_30m = 0;
  double messages_per_alert = 0.0;
  double duplicates_per_alert = 0.0;
  Summary time_to_seen;
};

core::UserEndpointOptions busy_user(std::uint64_t seed) {
  core::UserEndpointOptions options;
  options.name = "victor";
  options.email_check_interval = minutes(45);
  options.ack_reaction_mean = seconds(6);
  // Away from the desk ~35% of the time in multi-hour stretches.
  Rng away_rng(seed ^ 0x517);
  options.away_plan = sim::OutagePlan::generate(
      away_rng, days(7), hours(4), /*down_median=*/hours(1.6), 0.7);
  // Phone out of coverage / charging ~8% of the time.
  Rng phone_rng(seed ^ 0x9b1);
  options.phone_outage_plan = sim::OutagePlan::generate(
      phone_rng, days(7), hours(20), /*down_median=*/hours(1.2), 0.6);
  return options;
}

struct Workload {
  std::vector<TimePoint> when;
};

Workload make_workload(int n) {
  // Critical alerts arriving around the clock, ~30 min apart.
  Workload w;
  TimePoint t = kTimeZero + minutes(10);
  Rng rng(777);
  for (int i = 0; i < n; ++i) {
    t += minutes(10) + rng.exponential_duration(minutes(20));
    w.when.push_back(t);
  }
  return w;
}

void score(StrategyResult& result, core::UserEndpoint& user,
           const Workload& workload, const std::string& id_prefix) {
  result.alerts = static_cast<int>(workload.when.size());
  double total_sightings = 0.0;
  for (std::size_t i = 0; i < workload.when.size(); ++i) {
    const std::string id = id_prefix + std::to_string(i);
    total_sightings += static_cast<double>(user.sightings(id));
    const auto seen = user.first_seen(id);
    if (!seen) continue;
    ++result.seen;
    const Duration took = *seen - workload.when[i];
    result.time_to_seen.add(took);
    if (took <= minutes(1)) ++result.on_time_1m;
    if (took <= minutes(5)) ++result.on_time_5m;
    if (took <= minutes(30)) ++result.on_time_30m;
    result.duplicates_per_alert +=
        static_cast<double>(user.sightings(id) - 1);
  }
  result.duplicates_per_alert /= std::max(1, result.alerts);
  // The irritation metric: messages the user actually had to deal with
  // (the same accounting for every strategy; channel losses reduce it).
  result.messages_per_alert = total_sightings / std::max(1, result.alerts);
}

StrategyResult run_legacy(std::uint64_t seed, const Workload& workload,
                          core::LegacyDeliverer::Policy policy) {
  ExperimentWorld world(seed);
  auto user_options = busy_user(seed);
  core::UserEndpoint user(world.sim, world.bus, world.im_server,
                          world.email_server, world.sms_gateway,
                          user_options);
  user.start();
  world.sim.run_for(seconds(10));

  core::LegacyDeliverer deliverer(world.email_server, "aladdin@svc.example",
                                  policy);
  deliverer.set_user_email(user.email_account());
  deliverer.set_user_sms(user.sms_address());

  const std::string prefix =
      std::string("legacy-") + core::to_string(policy) + "-";
  std::int64_t messages = 0;
  for (std::size_t i = 0; i < workload.when.size(); ++i) {
    const std::size_t index = i;
    world.sim.at(workload.when[i], [&, index] {
      core::Alert alert;
      alert.source = "aladdin";
      alert.native_category = "Sensor ON";
      alert.subject = "Basement Water Sensor ON";
      alert.high_importance = true;
      alert.created_at = world.sim.now();
      alert.id = prefix + std::to_string(index);
      messages += deliverer.send(alert);
    });
  }
  world.sim.run_until(workload.when.back() + hours(8));

  StrategyResult result;
  result.name = strformat("%s (%0.1f submitted/alert)",
                          core::to_string(policy),
                          static_cast<double>(messages) /
                              std::max<std::size_t>(1, workload.when.size()));
  score(result, user, workload, prefix);
  return result;
}

StrategyResult run_simba(std::uint64_t seed, const Workload& workload) {
  ExperimentWorld world(seed);
  core::MabHostOptions host_options;
  host_options.mab_options = experiment_mab_options();
  Cast cast(world, std::move(host_options), busy_user(seed));
  auto source = cast.make_source(world, "aladdin", seconds(45));

  const std::string prefix = "simba-";
  for (std::size_t i = 0; i < workload.when.size(); ++i) {
    const std::size_t index = i;
    world.sim.at(workload.when[i], [&, index] {
      core::Alert alert;
      alert.source = "aladdin";
      alert.native_category = "Sensor ON";
      alert.subject = "Basement Water Sensor ON";
      alert.high_importance = true;
      alert.created_at = world.sim.now();
      alert.id = prefix + std::to_string(index);
      source->send_alert(alert);
    });
  }
  world.sim.run_until(workload.when.back() + hours(8));

  StrategyResult result;
  result.name = "SIMBA Urgent mode (IM+ack -> SMS -> email)";
  score(result, *cast.user, workload, prefix);
  return result;
}

void print_strategy(const StrategyResult& r) {
  std::printf("%-42s | %5.1f%% | %5.1f%% | %5.1f%% | %8.2f | %6.2f | %s\n",
              r.name.c_str(),
              100.0 * r.on_time_1m / std::max(1, r.alerts),
              100.0 * r.on_time_5m / std::max(1, r.alerts),
              100.0 * r.on_time_30m / std::max(1, r.alerts),
              r.messages_per_alert, r.duplicates_per_alert,
              (r.time_to_seen.empty()
                   ? std::string("-")
                   : strformat("%.0fs/%.0fs", r.time_to_seen.percentile(50),
                               r.time_to_seen.percentile(90)))
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int n = options.n > 0 ? options.n : 250;
  const Workload workload = make_workload(n);

  print_header(
      "E7: delivery strategy trade-off (timeliness vs irritation)",
      "2-email+2-SMS \"has not worked well\": no timeliness guarantee, and "
      "\"four messages per alert are irritating\"");
  std::printf(
      "%-42s | <=1min | <=5min | <=30min | msgs/alt | dups  | p50/p90\n",
      "strategy");
  std::printf(
      "-------------------------------------------+--------+--------+---------+----------+-------+--------\n");

  print_strategy(run_legacy(options.seed, workload,
                            core::LegacyDeliverer::Policy::kEmailOnly));
  print_strategy(run_legacy(options.seed, workload,
                            core::LegacyDeliverer::Policy::kSmsOnly));
  print_strategy(
      run_legacy(options.seed, workload,
                 core::LegacyDeliverer::Policy::kDoubleEmailDoubleSms));
  print_strategy(run_simba(options.seed, workload));

  std::printf(
      "\nExpected shape: at the median SIMBA is an order of magnitude faster "
      "(IM pops up in\nseconds); when the user is away it trails the "
      "shotgun 2E+2S by one fallback timeout\nwhile sending ~1.4 messages "
      "per alert instead of 4 and leaving ~0.4 duplicates\ninstead of ~3 — "
      "the paper's point: comparable dependability without the irritation.\n");
  return 0;
}
