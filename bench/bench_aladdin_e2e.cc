// Experiment E4 — the Aladdin disarm scenario end-to-end (Section 5).
//
// Paper: "the kid returned home from school and used a remote control
// to disarm the security system. The RF signal was received by a
// powerline transceiver and converted into a powerline signal. A
// powerline monitor process running on a PC picked up the signal and
// converted it into an update on the local SSS server, which
// replicated the update to other PCs through a multicast over the
// phoneline Ethernet. The SSS server running on the home gateway
// machine fired an event to the Aladdin home server, which then sent
// out an IM alert. From the time the button on the remote control was
// pushed to the time an IM popped up on the user's screen, the
// end-to-end delivery took an average of 11 seconds."
#include "aladdin/devices.h"
#include "aladdin/monitor.h"
#include "common.h"
#include "sss/sss.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int n = options.n > 0 ? options.n : 100;

  ExperimentWorld world(options.seed);
  Cast cast(world);
  auto source = cast.make_source(world, "aladdin");

  // The house: X10-class powerline (slow), phoneline Ethernet between
  // the PCs, RF keyfob. Latencies calibrated so the full chain lands
  // near the paper's 11 seconds.
  aladdin::HomeNetwork net(world.sim);
  net.set_model(aladdin::Medium::kPowerline,
                {seconds(4.2), seconds(2.0), 0.01});
  net.set_model(aladdin::Medium::kRf, {millis(250), millis(250), 0.005});
  sss::SssServer pc_store(world.sim, "den-pc");
  sss::SssServer gateway_store(world.sim, "gateway");
  sss::MediumModel phoneline;
  phoneline.base_latency = millis(150);
  phoneline.jitter = millis(250);
  sss::SssReplicationGroup replication(world.sim, phoneline);
  replication.join(pc_store);
  replication.join(gateway_store);

  aladdin::Transceiver rf_bridge(world.sim, net, aladdin::Medium::kRf,
                                 aladdin::Medium::kPowerline, millis(800));
  aladdin::PowerlineMonitor monitor(world.sim, net, pc_store, seconds(4.0));
  monitor.register_device("security_remote", {});
  aladdin::HomeGatewayServer gateway(world.sim, gateway_store);
  gateway.declare_critical("security_remote", "Security System");

  // Presses are spaced minutes apart while the chain completes in
  // seconds, so the cause of a gateway alert is simply the most recent
  // press at the moment the alert fires.
  std::vector<TimePoint> presses;
  std::map<std::string, TimePoint> press_for;
  gateway.set_alert_sink([&](const core::Alert& alert) {
    if (!presses.empty()) press_for[alert.id] = presses.back();
    source->send_alert(alert);
  });

  aladdin::RemoteControl remote(world.sim, net, "security_remote");
  Rng rng = world.sim.make_rng("workload");
  int toggle = 0;
  for (int i = 0; i < n; ++i) {
    world.sim.run_for(minutes(2) + rng.exponential_duration(minutes(2)));
    presses.push_back(world.sim.now());
    remote.press(toggle++ % 2 == 0 ? "DISARM" : "ARM");
  }
  world.sim.run_for(minutes(10));

  Summary end_to_end;
  for (const auto& [id, pressed_at] : press_for) {
    const auto seen = cast.user->first_seen(id);
    if (!seen) continue;
    const double secs = to_seconds(*seen - pressed_at);
    if (secs > 0 && secs < 300) end_to_end.add(secs);
  }

  print_header(
      "E4: Aladdin remote -> RF -> powerline -> SSS -> multicast -> gateway "
      "-> SIMBA IM -> user screen",
      "\"the end-to-end delivery took an average of 11 seconds\"");
  print_summary_seconds("button press -> IM popup", "avg 11 s", end_to_end);
  print_row("presses", "-", std::to_string(n));
  print_row("alerts seen by user", "-", std::to_string(end_to_end.count()),
            "in-home frame loss absorbs the rest");
  std::printf("\nPer-hop budget (mean):\n");
  std::printf("  RF + transceiver conversion        ~ 0.7 s\n");
  std::printf("  X10-class powerline signalling     ~ 5.2 s\n");
  std::printf("  powerline monitor poll (4 s tick)   ~ 2.0 s\n");
  std::printf("  SSS write + phoneline multicast    ~ 0.3 s\n");
  std::printf("  gateway event -> SIMBA IM + ack     ~ 1.5 s\n");
  std::printf("  MAB log+process+route -> user IM    ~ 2.0 s\n");
  std::printf("\nDistribution:\n");
  Histogram hist({6.0, 8.0, 10.0, 12.0, 14.0, 18.0});
  for (double s : end_to_end.samples()) hist.add(s);
  std::printf("%s", hist.render().c_str());
  return 0;
}
