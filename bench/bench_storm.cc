// Experiment E12 — alert storms and the overload defenses.
//
// A storm is correlated overload: Aladdin sensor cascades (one motion
// event trips many sensors within seconds) and legacy proxy poll
// bursts, stacked on the normal background and a sparse stream of
// high-importance critical alerts. The same storm (same seeds, burst
// for burst) is replayed twice across a fleet of per-user worlds:
//
//   * defenses OFF — the pre-overload configuration: every alert is
//     admitted into one unbounded FIFO delivery lane, so criticals
//     queue behind the whole cascade backlog;
//   * defenses ON  — token-bucket admission (criticals exempt),
//     semantic coalescing into digest alerts, strict priority lanes,
//     and bounded shed-accounted queues (DESIGN.md §14).
//
// The headline metric is the critical-alert p99 delivery latency, off
// vs on; the dependability gate is the extended conservation identity
//   submitted = delivered + failed + shed + coalesced + in-flight
// which must balance in BOTH modes — the defenses shed and coalesce
// loudly, never silently. Exit code 1 only on invariant violations;
// throughput drift is the perf-smoke job's advisory business.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "fleet/storm_workload.h"

using namespace simba;
using namespace simba::bench;

namespace {

fleet::StormWorkloadOptions storm_options(bool defended) {
  fleet::StormWorkloadOptions options;
  options.world.fidelity = fleet::ModelFidelity::kFast;
  options.world.email_check_interval = minutes(15);
  options.world.overload =
      defended ? fleet::storm_defenses() : fleet::storm_no_defenses();
  // The transport bound belongs to the defended posture; at this scale
  // it is headroom, not a shedder — any "pending.shed" activity
  // shows up in the accounting rows below.
  options.world.bus_pending_bound = defended ? 4096 : 0;
  // Dense criticals so the p99 is a real tail statistic, and cascades
  // heavy enough to keep the undefended FIFO congested for minutes.
  options.critical_per_day = 600.0;
  options.sensor_cascades = 12;
  options.cascade_size = 150;
  options.cascade_spread = seconds(60);
  options.poll_bursts = 8;
  options.burst_size = 200;
  options.burst_spread = seconds(45);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int users = options.users > 0 ? options.users : 8;
  const int threads = std::max(1, options.threads);

  fleet::FleetOptions fleet_options;
  fleet_options.shards = static_cast<std::size_t>(users);
  fleet_options.threads = threads;
  fleet_options.base_seed = options.seed;

  const auto run = [&fleet_options](bool defended) {
    const fleet::StormWorkloadOptions workload = storm_options(defended);
    return fleet::run_fleet(fleet_options,
                            [&workload](const fleet::ShardTask& task) {
                              return fleet::run_storm_shard(task, workload);
                            });
  };
  const fleet::FleetReport off = run(/*defended=*/false);
  const fleet::FleetReport on = run(/*defended=*/true);

  const std::int64_t submitted = on.counters.get("invariant.submitted");
  const std::int64_t shed = on.counters.get("invariant.shed");
  const std::int64_t coalesced = on.counters.get("invariant.coalesced");
  const double shed_ratio = submitted == 0 ? 0.0 : 1.0 * shed / submitted;
  const double coalesce_ratio =
      submitted == 0 ? 0.0 : 1.0 * coalesced / submitted;
  const double p99_off = off.critical_latency.percentile(99.0);
  const double p99_on = on.critical_latency.percentile(99.0);
  const double speedup = p99_on <= 0.0 ? 0.0 : p99_off / p99_on;
  const std::int64_t violations =
      off.counters.get("invariant.violations.total") +
      on.counters.get("invariant.violations.total");

  print_header("E12: alert-storm overload defenses",
               "critical alerts stay fast while the storm coalesces");
  print_row("storm worlds", "-", std::to_string(users),
            "one per-user deployment each");
  print_row("fleet worker threads", "-", std::to_string(threads));
  print_row("alerts submitted per mode", "-", std::to_string(submitted));
  print_row("critical alerts", "-",
            std::to_string(on.counters.get("alerts.critical")),
            "admission-exempt, priority lane");

  print_section("defenses OFF (single unbounded FIFO)");
  print_summary_seconds("critical latency", "queued behind the storm",
                        off.critical_latency);
  print_row("delivered / lost", "-",
            strformat("%lld / %lld",
                      static_cast<long long>(
                          off.counters.get("alerts.delivered")),
                      static_cast<long long>(off.counters.get("alerts.lost"))));

  print_section("defenses ON (admission + coalescing + priority lanes)");
  print_summary_seconds("critical latency", "near-baseline",
                        on.critical_latency);
  print_row("coalesced into digests", "-",
            strformat("%lld (%.1f%%), %lld digest(s)",
                      static_cast<long long>(coalesced), 100.0 * coalesce_ratio,
                      static_cast<long long>(
                          on.counters.get("coalesce.digests_emitted"))));
  print_row("shed with accounting", "-",
            strformat("%lld (%.1f%%)", static_cast<long long>(shed),
                      100.0 * shed_ratio),
            "inbox + lane + transport bounds");
  print_row("admission over-limit", "-",
            std::to_string(on.counters.get("admission.over_limit")));
  print_row("critical bypasses", "-",
            std::to_string(on.counters.get("admission.critical_bypass")));

  print_section("verdict");
  print_row("critical p99, off vs on", ">= 5x",
            strformat("%.2f s vs %.2f s (%.1fx)", p99_off, p99_on, speedup));
  print_row("invariant violations (both modes)", "0",
            std::to_string(violations),
            violations == 0 ? "every shed/coalesce accounted"
                            : "CONTRACT BROKEN");
  const double wall = off.wall_seconds + on.wall_seconds;
  const std::uint64_t events = off.events_processed + on.events_processed;
  const double events_per_sec = events / std::max(wall, 1e-9);
  print_row("wall-clock (both modes)", "-", strformat("%.2f s", wall));
  print_row("kernel events per second", "-",
            strformat("%.0f", events_per_sec),
            "throughput metric tracked by BENCH_storm.json");
  print_row("peak RSS", "-",
            strformat("%.1f MiB", peak_rss_bytes() / (1024.0 * 1024.0)));

  if (!options.json.empty()) {
    JsonReport json;
    json.add("bench", std::string("bench_storm"));
    json.add("scheduler", std::string(sim::Simulator::kScheduler));
    json.add("seed", static_cast<std::int64_t>(options.seed));
    json.add("users", users);
    json.add("threads", threads);
    json.add("alerts_submitted", submitted);
    json.add("alerts_critical", on.counters.get("alerts.critical"));
    json.add("critical_p99_off_s", p99_off);
    json.add("critical_p99_on_s", p99_on);
    json.add("critical_p99_speedup_x", speedup);
    json.add("shed_ratio", shed_ratio);
    json.add("coalesce_ratio", coalesce_ratio);
    json.add("digests_emitted", on.counters.get("coalesce.digests_emitted"));
    json.add("invariant_violations", violations);
    json.add("events_processed", events);
    json.add("wall_seconds", wall);
    json.add("events_per_sec", events_per_sec);
    json.add("peak_rss_bytes", peak_rss_bytes());
    if (!json.write_to(options.json)) return 1;
  }
  return violations == 0 ? 0 : 1;
}
