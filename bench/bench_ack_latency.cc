// Experiment E2 — acknowledged delivery time with pessimistic logging
// (Section 5).
//
// Paper: "With pessimistic logging, the alert source receives an
// acknowledgement in about 1.5 seconds."
//
// We measure the source-visible ack round trip (send -> MAB logs ->
// MAB acks -> source engine completes), and ablate the log-write cost
// to show where the extra half second over the one-way time goes.
#include "common.h"

using namespace simba;
using namespace simba::bench;

namespace {

Summary run_ack_measurement(std::uint64_t seed, int n, bool logging,
                            Duration log_write_latency) {
  ExperimentWorld world(seed);
  core::MabHostOptions host_options;
  host_options.mab_options = experiment_mab_options();
  host_options.mab_options.pessimistic_logging = logging;
  Cast cast(world, std::move(host_options));
  // AlertLog's write latency is a host property; default is 250 ms.
  (void)log_write_latency;  // documented: fixed at AlertLog default

  auto source = cast.make_source(world, "aladdin");
  Rng rng = world.sim.make_rng("workload");
  Summary ack_rtt;
  for (int i = 0; i < n; ++i) {
    world.sim.run_for(rng.exponential_duration(seconds(15)));
    core::Alert alert;
    alert.source = "aladdin";
    alert.native_category = "Sensor ON";
    alert.subject = "ack bench " + std::to_string(i);
    alert.high_importance = true;
    alert.created_at = world.sim.now();
    alert.id = strformat("e2-%d-%d", logging ? 1 : 0, i);
    const TimePoint sent = world.sim.now();
    source->send_alert(alert, [&, sent](const core::DeliveryOutcome& o) {
      if (o.delivered && o.block_used == 0) {
        ack_rtt.add(to_seconds(o.completed_at - sent));
      }
    });
  }
  world.sim.run_for(minutes(5));
  return ack_rtt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int n = options.n > 0 ? options.n : 300;

  const Summary with_logging =
      run_ack_measurement(options.seed, n, /*logging=*/true, millis(250));
  const Summary without_logging =
      run_ack_measurement(options.seed, n, /*logging=*/false, millis(0));

  print_header(
      "E2: source-visible acknowledgement latency",
      "\"With pessimistic logging, the alert source receives an "
      "acknowledgement in about 1.5 seconds.\"");
  print_summary_seconds("ack RTT, pessimistic logging ON", "~1.5 s",
                        with_logging);
  print_summary_seconds("ack RTT, logging OFF (ablation)", "(not measured)",
                        without_logging);
  print_row("log-write contribution", "~0.25-0.5 s",
            strformat("%.2f s (mean delta)",
                      with_logging.mean() - without_logging.mean()),
            "ack is held until the disk write completes");
  return 0;
}
