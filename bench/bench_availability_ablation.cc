// Experiment E8 — fault-tolerance mechanism ablation.
//
// Paper (Section 5 summary): "the fault-tolerance techniques for
// maintaining a highly available MyAlertBuddy are crucial and
// effective." This bench quantifies each mechanism's contribution by
// turning it off under an accelerated fault load (one week with
// several failures a day) and measuring MAB availability, delivery,
// timeliness, and outright alert loss.
//
// Fault load (accelerated vs the E6 month):
//   * IM-exception crashes of the MAB every day or two,
//   * a leaky MAB (~60 MB/h): soft limit ~4.6 h uptime, hard hang ~9.6 h,
//   * blocking client dialogs every ~3 hours,
//   * slow per-alert processing (20 s) so the crash window that
//     pessimistic logging protects is visible at this timescale.
#include <cstdlib>
#include <vector>

#include "common.h"

using namespace simba;
using namespace simba::bench;

namespace {

struct Config {
  std::string name;
  bool watchdog = true;
  bool logging = true;
  bool rejuvenation = true;
  bool stabilization = true;
  bool monkey = true;
};

struct RunResult {
  double availability_pct = 0.0;
  double delivered_pct = 0.0;
  double on_time_pct = 0.0;  // seen within 10 minutes
  double via_im_pct = 0.0;   // first sighting on the primary channel
  std::int64_t lost = 0;
  std::int64_t mdc_restarts = 0;
};

RunResult run(std::uint64_t seed, const Config& config) {
  const Duration horizon = days(7);
  ExperimentWorld world(seed);
  world.im_server.set_session_reset_mtbf(days(2));

  core::MabHostOptions host_options;
  host_options.mab_options = experiment_mab_options();
  host_options.mab_options.pessimistic_logging = config.logging;
  host_options.mab_options.self_stabilization = config.stabilization;
  host_options.nightly_rejuvenation = config.rejuvenation;
  host_options.watchdog_enabled = config.watchdog;
  host_options.monkey_enabled = config.monkey;
  host_options.mab_options.processing_delay = seconds(20);
  host_options.mab_options.leak_mb_per_hour = 60.0;
  host_options.mab_options.leak_mb_per_alert = 0.01;

  gui::FaultProfile im_profile;
  im_profile.op_exception_probability = 2.5e-4;  // a crash every day or two
  im_profile.exception_op = "fetch_unread";
  im_profile.leak_mb_per_hour = 4.0;
  im_profile.mean_time_to_dialog = hours(3);
  im_profile.dialog_pool = {
      gui::DialogSpec{"Connection lost", "OK", 0.5, true, false},
      gui::DialogSpec{"Warning: low disk space", "OK", 0.5, false, false},
  };
  host_options.im_client_profile = im_profile;
  gui::FaultProfile email_profile;
  email_profile.mean_time_to_dialog = hours(9);
  email_profile.dialog_pool = {
      gui::DialogSpec{"Send/Receive error", "OK", 1.0, true, false},
  };
  host_options.email_client_profile = email_profile;

  Cast cast(world, std::move(host_options));
  auto source = cast.make_source(world, "aladdin", seconds(45));

  // Alert workload: one critical alert every ~2 minutes.
  Rng rng = world.sim.make_rng("workload");
  std::int64_t sent = 0;
  std::vector<TimePoint> sent_at;
  std::function<void()> send_next = [&] {
    if (world.sim.now() >= kTimeZero + horizon) return;
    core::Alert alert;
    alert.source = "aladdin";
    alert.native_category = "Sensor ON";
    alert.subject = "alert";
    alert.high_importance = true;
    alert.created_at = world.sim.now();
    alert.id = "e8-" + std::to_string(sent);
    ++sent;
    sent_at.push_back(world.sim.now());
    source->send_alert(alert);
    world.sim.after(minutes(1) + rng.exponential_duration(minutes(1)),
                    send_next, "workload");
  };
  world.sim.after(minutes(1), send_next, "workload");

  std::int64_t samples = 0, healthy = 0;
  world.sim.every(minutes(1), [&] {
    ++samples;
    if (cast.host->healthy()) ++healthy;
  }, "sampler");

  world.sim.run_until(kTimeZero + horizon + hours(6));

  RunResult result;
  result.availability_pct =
      100.0 * static_cast<double>(healthy) / std::max<std::int64_t>(1, samples);
  std::int64_t seen = 0, on_time = 0;
  for (std::int64_t i = 0; i < sent; ++i) {
    const auto when = cast.user->first_seen("e8-" + std::to_string(i));
    if (!when) continue;
    ++seen;
    if (*when - sent_at[static_cast<std::size_t>(i)] <= minutes(10)) {
      ++on_time;
    }
  }
  result.delivered_pct =
      100.0 * static_cast<double>(seen) / std::max<std::int64_t>(1, sent);
  result.on_time_pct =
      100.0 * static_cast<double>(on_time) / std::max<std::int64_t>(1, sent);
  result.lost = sent - seen;
  result.via_im_pct =
      100.0 * static_cast<double>(cast.user->stats().get("seen_via_im")) /
      std::max<std::int64_t>(1, sent);
  result.mdc_restarts = cast.host->mdc().stats().get("restarts");
  if (std::getenv("E8_DEBUG") != nullptr) {
    std::fprintf(stderr, "client stats:\n%s\nmonkey stats:\n%s\n",
                 cast.host->im_manager().client().stats().report().c_str(),
                 cast.host->im_manager().stats().report().c_str());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);

  print_header("E8: fault-tolerance ablation (accelerated one-week run)",
               "\"the fault-tolerance techniques ... are crucial and "
               "effective\"");
  std::printf(
      "%-34s | avail%%  | delivered%% | on-time(10m)%% | via IM%% | lost | MDC "
      "restarts\n",
      "configuration");
  std::printf(
      "-----------------------------------+---------+------------+---------------+---------+------+------------\n");

  const Config configs[] = {
      {"full SIMBA fault tolerance", true, true, true, true, true},
      {"no MDC watchdog", false, true, true, true, true},
      {"no pessimistic logging", true, false, true, true, true},
      {"no nightly rejuvenation", true, true, false, true, true},
      {"no self-stabilization", true, true, true, false, true},
      {"no rejuvenation + no stabilization", true, true, false, false, true},
      {"no monkey thread", true, true, true, true, false},
      {"nothing (bare daemon)", false, false, false, false, false},
  };
  for (const Config& config : configs) {
    const RunResult r = run(options.seed, config);
    std::printf("%-34s | %6.2f%% | %9.2f%% | %12.2f%% | %6.2f%% | %4lld | %lld\n",
                config.name.c_str(), r.availability_pct, r.delivered_pct,
                r.on_time_pct, r.via_im_pct, static_cast<long long>(r.lost),
                static_cast<long long>(r.mdc_restarts));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: availability collapses without the watchdog "
      "(nothing restarts the\ndaemon after its first crash); acked alerts "
      "are lost for good without pessimistic\nlogging; disabling "
      "rejuvenation + self-stabilization lets the leak wedge the daemon\n"
      "until the watchdog's slower heartbeat catches it; without the monkey "
      "thread blocking\ndialogs knock out the primary IM channel — delivery "
      "survives on the mode's SMS/email\nfallbacks (the architecture masking "
      "its own component failure), visible as the via-IM%% drop.\n");
  return 0;
}
