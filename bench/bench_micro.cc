// Experiment E11 — microbenchmarks (google-benchmark) for the SIMBA
// library's hot paths: XML parsing of the subscription-layer documents,
// classification/aggregation, the pessimistic log, delivery-mode
// parsing, SSS operations, and the simulation kernel itself.
#include <benchmark/benchmark.h>

#include "core/address_book.h"
#include "core/alert_log.h"
#include "core/category_map.h"
#include "core/classifier.h"
#include "core/delivery_mode.h"
#include "net/bus.h"
#include "sim/simulator.h"
#include "sss/sss.h"
#include "xml/xml.h"

namespace simba {
namespace {

void BM_XmlParseDeliveryMode(benchmark::State& state) {
  const std::string doc = core::DeliveryMode::sample_urgent_mode().to_xml();
  for (auto _ : state) {
    auto parsed = core::DeliveryMode::from_xml(doc);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_XmlParseDeliveryMode);

void BM_XmlSerializeDeliveryMode(benchmark::State& state) {
  const core::DeliveryMode mode = core::DeliveryMode::sample_urgent_mode();
  for (auto _ : state) {
    std::string out = mode.to_xml();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_XmlSerializeDeliveryMode);

void BM_XmlParseAddressBook(benchmark::State& state) {
  core::AddressBook book("alice");
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    // Appends instead of operator+ chains: sidesteps a GCC 12
    // -Werror=restrict false positive at -O2.
    std::string name = "addr";
    name += std::to_string(i);
    std::string addr = "a";
    addr += std::to_string(i);
    addr += "@x.example";
    book.put(core::Address{std::move(name), core::CommType::kEmail,
                           std::move(addr), true});
  }
  const std::string doc = book.to_xml();
  for (auto _ : state) {
    auto parsed = core::AddressBook::from_xml(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_XmlParseAddressBook)->Range(4, 256)->Complexity();

void BM_ClassifyAlert(benchmark::State& state) {
  core::AlertClassifier classifier;
  for (int i = 0; i < 20; ++i) {
    classifier.add_rule(core::SourceRule{
        "source" + std::to_string(i), core::KeywordLocation::kSubject,
        {"alpha", "beta", "gamma", "delta"}, ""});
  }
  core::Alert alert;
  alert.source = "source13";
  alert.subject = "some long subject line mentioning gamma rays";
  for (auto _ : state) {
    auto keyword = classifier.classify(alert);
    benchmark::DoNotOptimize(keyword);
  }
}
BENCHMARK(BM_ClassifyAlert);

void BM_CategoryLookup(benchmark::State& state) {
  core::CategoryMap map;
  for (int i = 0; i < 50; ++i) {
    map.map_keyword("keyword" + std::to_string(i), "Category");
  }
  for (auto _ : state) {
    auto category = map.category_for("keyword37");
    benchmark::DoNotOptimize(category);
  }
}
BENCHMARK(BM_CategoryLookup);

void BM_AlertLogAppendMark(benchmark::State& state) {
  std::int64_t i = 0;
  core::AlertLog log;
  core::Alert alert;
  alert.subject = "s";
  for (auto _ : state) {
    alert.id = "id-" + std::to_string(i++);
    log.append(alert, kTimeZero);
    log.mark_processed(alert.id, kTimeZero);
  }
}
BENCHMARK(BM_AlertLogAppendMark);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      sim.after(micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Range(64, 8192);

void BM_BusRoundTrip(benchmark::State& state) {
  sim::Simulator sim(1);
  net::MessageBus bus(sim);
  std::int64_t received = 0;
  bus.attach("b", [&](const net::Message&) { ++received; });
  net::Message proto;
  // std::string rvalues: sidestep a GCC 12 -Werror=restrict false
  // positive on the const char* assign path at -O2.
  proto.from = std::string("a");
  proto.to = std::string("b");
  proto.type = std::string("t");
  for (auto _ : state) {
    bus.send(proto);
    sim.run();
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_BusRoundTrip);

void BM_SssWrite(benchmark::State& state) {
  sim::Simulator sim(1);
  sss::SssServer store(sim, "node");
  store.define_type("t");
  store.create("t", "v", "0", Duration::zero(), 0);
  std::int64_t i = 0;
  for (auto _ : state) {
    store.write("v", std::to_string(i++));
  }
}
BENCHMARK(BM_SssWrite);

void BM_SssReplicatedWrite(benchmark::State& state) {
  sim::Simulator sim(1);
  sss::MediumModel instant;
  instant.base_latency = micros(1);
  instant.jitter = micros(1);
  sss::SssReplicationGroup group(sim, instant);
  sss::SssServer a(sim, "a"), b(sim, "b");
  group.join(a);
  group.join(b);
  a.define_type("t");
  a.create("t", "v", "0", Duration::zero(), 0);
  std::int64_t i = 0;
  for (auto _ : state) {
    a.write("v", std::to_string(i++));
    sim.run();
  }
}
BENCHMARK(BM_SssReplicatedWrite);

void BM_RngChildStream(benchmark::State& state) {
  Rng root(1);
  for (auto _ : state) {
    Rng child = root.child("component.name");
    benchmark::DoNotOptimize(child.next());
  }
}
BENCHMARK(BM_RngChildStream);

}  // namespace
}  // namespace simba

BENCHMARK_MAIN();
