// Experiment E10 — chaos-matrix sweep over the preset scenarios.
//
// Every preset ChaosScenario is realized across a fleet of per-user
// worlds (--users N --threads T, --n S extra seeds per scenario) and
// scored by the per-world InvariantChecker: submitted alerts must end
// the run delivered, explicitly failed, or recoverably in flight —
// never silently vanished — while chaos duplicates, reorders, delays,
// and drops messages, kills and hangs the daemon, and cuts power
// mid-append. The fault schedules derive only from (seed, scenario,
// horizon), so the whole sweep is reproducible and its merged report
// is bit-identical for any --threads value.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "fleet/chaos_workload.h"
#include "util/trace.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int users = options.users > 0 ? options.users : 16;
  const int seeds = options.n > 0 ? options.n : 3;
  const int threads = std::max(1, options.threads);

  print_header("E10: chaos-matrix conservation sweep",
               "no subscribed alert is ever silently lost");
  print_row("worlds per cell", "-", std::to_string(users));
  print_row("seeds per scenario", "-", std::to_string(seeds));
  print_row("fleet worker threads", "-", std::to_string(threads));

  std::int64_t total_violations = 0;
  for (const sim::ChaosScenario& scenario : sim::ChaosScenario::presets()) {
    fleet::ChaosWorkloadOptions workload;
    workload.scenario = scenario;
    workload.world.fidelity = fleet::ModelFidelity::kFast;
    workload.world.email_check_interval = minutes(15);

    Counters merged;
    util::Trace merged_trace;
    double wall = 0.0;
    std::uint64_t events = 0;
    for (int s = 0; s < seeds; ++s) {
      fleet::FleetOptions fleet_options;
      fleet_options.shards = static_cast<std::size_t>(users);
      fleet_options.threads = threads;
      fleet_options.base_seed = options.seed + static_cast<std::uint64_t>(s);
      const fleet::FleetReport report = fleet::run_fleet(
          fleet_options, [&workload](const fleet::ShardTask& task) {
            return fleet::run_chaos_shard(task, workload);
          });
      for (const auto& [name, value] : report.counters.all()) {
        merged.bump(name, value);
      }
      merged_trace.merge(report.trace);
      wall += report.wall_seconds;
      events += report.events_processed;
    }

    print_section("scenario: " + scenario.name);
    const std::int64_t submitted = merged.get("invariant.submitted");
    const std::int64_t violations = merged.get("invariant.violations.total");
    total_violations += violations;
    print_row("alerts submitted", "-", std::to_string(submitted));
    print_row("delivered / failed / in-flight", "-",
              strformat("%lld / %lld / %lld",
                        static_cast<long long>(merged.get(
                            "invariant.delivered")),
                        static_cast<long long>(merged.get("invariant.failed")),
                        static_cast<long long>(
                            merged.get("invariant.in_flight"))));
    print_row("duplicate sightings", "-",
              std::to_string(merged.get("invariant.duplicate_sightings")),
              "legal under timestamp-based dedup");
    print_row("chaos injected", "-",
              strformat("dup %lld, reorder %lld, spike %lld, drop %lld",
                        static_cast<long long>(merged.get("chaos.duplicate")),
                        static_cast<long long>(merged.get("chaos.reorder")),
                        static_cast<long long>(
                            merged.get("chaos.delay_spike")),
                        static_cast<long long>(
                            merged.get("dropped.chaos_late_loss"))));
    print_row("process/machine faults", "-",
              strformat("kill %lld, hang %lld, reboot %lld, power %lld, "
                        "torn %lld",
                        static_cast<long long>(
                            merged.get("chaos.mab_crashes")),
                        static_cast<long long>(merged.get("chaos.mab_hangs")),
                        static_cast<long long>(merged.get("chaos.reboots")),
                        static_cast<long long>(merged.get("power_losses")),
                        static_cast<long long>(
                            merged.get("chaos.torn_appends"))));
    print_row("invariant violations", "0", std::to_string(violations),
              violations == 0 ? "conservation holds" : "CONTRACT BROKEN");
    print_row("wall-clock", "-", strformat("%.2f s", wall));
    print_row("kernel events per second", "-",
              strformat("%.0f", events / std::max(wall, 1e-9)));
    print_section("scenario " + scenario.name +
                  ": per-stage latency (merged lifecycle trace)");
    std::printf("%s", merged_trace.stage_report().c_str());
  }

  print_section("verdict");
  print_row("peak RSS", "-",
            strformat("%.1f MiB", peak_rss_bytes() / (1024.0 * 1024.0)));
  std::printf("  %s\n",
              total_violations == 0
                  ? "conservation held across the whole matrix"
                  : "VIOLATIONS DETECTED — see scenario rows above");
  return total_violations == 0 ? 0 : 1;
}
