// Shared resumable-mode harness for the benches that support
// checkpoint/restore (--epochs / --checkpoint-every / --resume-from):
// routes the run through the resumable fleet driver (fleet/resume.h),
// writes/reads the checkpoint image file, and emits a fully
// deterministic report so two *processes* can be byte-compared —
// tools/resume_roundtrip.py drives exactly that as a tier-1 ctest.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "common.h"
#include "fleet/resume.h"

namespace simba::bench {

/// True when any checkpoint/resume flag was given — the bench should
/// hand the run to run_resumable_bench instead of its legacy path.
inline bool resumable_mode(const Options& options) {
  return options.epochs > 0 || options.checkpoint_every > 0 ||
         !options.resume_from.empty();
}

/// Runs `base` (the bench's workload shape) under the resumable driver
/// with the CLI overrides applied. Returns a process exit code: a
/// malformed or mismatched checkpoint image is a clean nonzero exit,
/// never UB. Everything printed and written here is a pure function of
/// the options — no wall-clock, no RSS — so the round-trip comparison
/// can demand byte equality.
inline int run_resumable_bench(const std::string& bench_name,
                               const Options& cli,
                               fleet::ResumableOptions base) {
  fleet::ResumableOptions options = std::move(base);
  if (cli.epochs > 0) options.epochs = cli.epochs;
  if (cli.users > 0) options.fleet.shards = static_cast<std::size_t>(cli.users);
  options.fleet.threads = cli.threads;
  options.fleet.base_seed = cli.seed;

  fleet::ResumeControl control;
  control.checkpoint_after_epoch = cli.checkpoint_every;
  control.stop_at_checkpoint = cli.stop_at_checkpoint;

  Counters ckpt;
  fleet::ResumableRun run;
  if (!cli.resume_from.empty()) {
    std::ifstream in(cli.resume_from, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read checkpoint %s\n",
                   cli.resume_from.c_str());
      return 1;
    }
    std::ostringstream blob;
    blob << in.rdbuf();
    Result<fleet::ResumableRun> resumed =
        fleet::resume_fleet(options, blob.str(), control, &ckpt);
    if (!resumed.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", resumed.error().c_str());
      return 1;
    }
    run = std::move(resumed).take();
  } else {
    run = fleet::run_resumable_fleet(options, control, &ckpt);
  }

  if (!run.checkpoint.empty() && !cli.checkpoint_path.empty()) {
    std::ofstream out(cli.checkpoint_path,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n",
                   cli.checkpoint_path.c_str());
      return 1;
    }
    out << run.checkpoint;
  }

  print_section(bench_name + ": resumable " +
                fleet::to_string(options.kind) + " fleet");
  std::printf("  shards=%zu threads=%d seed=%llu epochs=%d\n",
              options.fleet.shards, options.fleet.threads,
              static_cast<unsigned long long>(options.fleet.base_seed),
              options.epochs);
  std::printf("  completed=%s checkpoint_bytes=%zu saved=%lld restored=%lld\n",
              run.completed ? "yes" : "no (stopped at checkpoint)",
              run.checkpoint.size(),
              static_cast<long long>(ckpt.get("ckpt.saved")),
              static_cast<long long>(ckpt.get("ckpt.restored")));
  if (run.completed) {
    std::printf("  sent=%lld delivered=%lld lost=%lld duplicates=%lld\n",
                static_cast<long long>(run.report.counters.get("alerts.sent")),
                static_cast<long long>(
                    run.report.counters.get("alerts.delivered")),
                static_cast<long long>(run.report.counters.get("alerts.lost")),
                static_cast<long long>(
                    run.report.counters.get("alerts.duplicates")));
  }

  if (!cli.trace_jsonl.empty() && run.completed) {
    std::ofstream out(cli.trace_jsonl, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.trace_jsonl.c_str());
      return 1;
    }
    out << run.report.trace.to_jsonl();
  }

  if (!cli.json.empty()) {
    JsonReport json;
    json.add("bench", bench_name);
    json.add("mode", std::string("resumable"));
    json.add("kind", std::string(fleet::to_string(options.kind)));
    json.add("seed", cli.seed);
    json.add("shards", static_cast<std::int64_t>(options.fleet.shards));
    json.add("epochs", options.epochs);
    json.add("completed", run.completed ? 1 : 0);
    json.add("checkpoint_bytes",
             static_cast<std::int64_t>(run.checkpoint.size()));
    json.add("ckpt_saved", ckpt.get("ckpt.saved"));
    json.add("ckpt_restored", ckpt.get("ckpt.restored"));
    if (run.completed) {
      json.add("correctness", run.report.correctness_json());
    }
    if (!json.write_to(cli.json)) return 1;
  }
  return 0;
}

}  // namespace simba::bench
