// Experiment E9 — portal-scale workload (Section 1), fleet edition.
//
// Paper: "We analyzed a recent one-week usage log from a commercial
// portal site, and it showed that on average around 225 thousands of
// people received around 778 thousands of alerts every day from that
// site" — i.e. ~3.46 alerts per user per day.
//
// Per-user MyAlertBuddy routing is independent across users, so the
// replay shards one world per user across the fleet runner's thread
// pool (--users N --threads T). Shard seeds derive only from the base
// seed and shard id, and merging is shard-ordered, so the merged
// correctness counters are identical for every thread count — compare
// `--threads 1` against `--threads $(nproc)` to see the speedup with
// the same delivered/lost/duplicate numbers.
#include <algorithm>

#include "common.h"
#include "fleet/portal_workload.h"
#include "resumable.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);

  // --epochs / --checkpoint-every / --resume-from: the resumable
  // portal fleet (fleet/resume.h) instead of the one-shot replay.
  // Fast loss-free models keep the cross-process round-trip ctest
  // (tools/resume_roundtrip.py) sub-second; the legacy calibrated
  // path below is untouched when no checkpoint flag is given.
  if (resumable_mode(options)) {
    fleet::ResumableOptions resumable;
    resumable.kind = fleet::ResumeKind::kPortal;
    resumable.world.fidelity = fleet::ModelFidelity::kFast;
    resumable.world.email_check_interval = minutes(15);
    resumable.world.trace = true;
    resumable.fleet.shards = 4;
    return run_resumable_bench("portal_scale", options, resumable);
  }

  const int users =
      options.users > 0 ? options.users : (options.n > 0 ? options.n : 64);
  const int threads = std::max(1, options.threads);
  const double alerts_per_user_day = 778000.0 / 225000.0;

  fleet::PortalWorkloadOptions workload;
  workload.traffic = fleet::Traffic::kPortalEmail;
  workload.alerts_per_user_day = alerts_per_user_day;
  workload.world.fidelity = fleet::ModelFidelity::kCalibrated;
  workload.world.email_check_interval = minutes(60);
  // Lifecycle tracing feeds the per-stage latency section below and
  // the optional --trace-jsonl dump. Traces consume no randomness, so
  // the correctness numbers are unchanged either way.
  workload.world.trace = true;

  fleet::FleetOptions fleet_options;
  fleet_options.shards = static_cast<std::size_t>(users);
  fleet_options.threads = threads;
  fleet_options.base_seed = options.seed;

  const fleet::FleetReport report = fleet::run_fleet(
      fleet_options, [&workload](const fleet::ShardTask& task) {
        return fleet::run_portal_shard(task, workload);
      });

  const std::int64_t sent = report.counters.get("alerts.sent");
  const std::int64_t delivered = report.counters.get("alerts.delivered");

  print_header("E9: portal-scale replay (sharded fleet)",
               "~225k users x ~3.46 alerts/user/day = ~778k alerts/day");
  print_row("users simulated", "225,000 (paper's portal)",
            std::to_string(users), "one fleet shard per user");
  print_row("fleet worker threads", "-", std::to_string(threads));
  print_row("portal alerts in the virtual day",
            strformat("%.2f per user", alerts_per_user_day),
            std::to_string(sent));
  print_row("alerts seen by users", "-",
            strformat("%lld (%.1f%%)", static_cast<long long>(delivered),
                      sent == 0 ? 0.0 : 100.0 * delivered / sent),
            "email losses and unread tails account for the rest");
  print_row("alerts lost / duplicated", "-",
            strformat("%lld / %lld",
                      static_cast<long long>(report.counters.get("alerts.lost")),
                      static_cast<long long>(
                          report.counters.get("alerts.duplicates"))));
  print_row("simulator events processed", "-",
            std::to_string(report.events_processed));
  print_row("wall-clock for the virtual day", "-",
            strformat("%.2f s", report.wall_seconds));
  const double events_per_sec =
      report.events_processed / std::max(report.wall_seconds, 1e-9);
  print_row("kernel events per second", "-",
            strformat("%.0f", events_per_sec),
            "throughput metric tracked by BENCH_portal_scale.json");
  print_row("peak RSS", "-",
            strformat("%.1f MiB", peak_rss_bytes() / (1024.0 * 1024.0)));
  print_row("virtual-day speedup", "-",
            strformat("%.0fx", 86400.0 / std::max(report.wall_seconds, 1e-9)));
  const double full_scale_estimate =
      report.wall_seconds * (225000.0 / std::max(users, 1));
  print_row("est. wall-clock at full 225k users", "-",
            strformat("%.0f s (%.1f h)", full_scale_estimate,
                      full_scale_estimate / 3600.0),
            "linear extrapolation at this thread count");

  print_section("per-stage latency (merged lifecycle trace)");
  std::printf("%s", report.trace.stage_report().c_str());

  if (!options.trace_jsonl.empty()) {
    std::FILE* out = std::fopen(options.trace_jsonl.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.trace_jsonl.c_str());
      return 1;
    }
    const std::string jsonl = report.trace.to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), out);
    std::fclose(out);
    print_row("trace dumped", "-",
              strformat("%zu spans -> %s", report.trace.size(),
                        options.trace_jsonl.c_str()));
  }

  print_section("merged fleet report");
  std::printf("%s", report.render().c_str());

  if (!options.json.empty()) {
    JsonReport json;
    json.add("bench", std::string("bench_portal_scale"));
    json.add("scheduler", std::string(sim::Simulator::kScheduler));
    json.add("seed", static_cast<std::int64_t>(options.seed));
    json.add("users", users);
    json.add("threads", threads);
    json.add("alerts_sent", sent);
    json.add("alerts_delivered", delivered);
    json.add("alerts_lost", report.counters.get("alerts.lost"));
    json.add("alerts_duplicates", report.counters.get("alerts.duplicates"));
    json.add("events_processed", report.events_processed);
    json.add("wall_seconds", report.wall_seconds);
    json.add("events_per_sec", events_per_sec);
    json.add("peak_rss_bytes", peak_rss_bytes());
    if (!json.write_to(options.json)) return 1;
  }
  return 0;
}
