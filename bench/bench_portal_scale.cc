// Experiment E9 — portal-scale workload (Section 1).
//
// Paper: "We analyzed a recent one-week usage log from a commercial
// portal site, and it showed that on average around 225 thousands of
// people received around 778 thousands of alerts every day from that
// site" — i.e. ~3.46 alerts per user per day.
//
// The architecture question: does per-user MyAlertBuddy routing keep
// up? We replay a scaled-down portal day (same per-user rate) through
// real buddy instances and report simulator throughput plus routing
// correctness; a second phase pushes a single buddy to saturation.
#include <chrono>

#include "common.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int users = options.n > 0 ? options.n : 64;  // scale factor
  const double alerts_per_user_day = 778000.0 / 225000.0;

  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentWorld world(options.seed);
  // Portal-style sources deliver by email (the legacy path the intro
  // describes), straight to each buddy.
  std::vector<std::unique_ptr<Cast>> casts;
  casts.reserve(static_cast<std::size_t>(users));
  for (int i = 0; i < users; ++i) {
    core::UserEndpointOptions user_options;
    user_options.name = "user" + std::to_string(i);
    user_options.phone_number = strformat("42555%05d", i);
    user_options.email_check_interval = minutes(60);
    casts.push_back(std::make_unique<Cast>(world, core::MabHostOptions{},
                                           user_options));
  }

  // One day of portal alerts: per-user Poisson at the measured rate.
  Rng rng = world.sim.make_rng("portal");
  std::int64_t sent = 0;
  for (int u = 0; u < users; ++u) {
    TimePoint t = kTimeZero;
    while (true) {
      t += rng.exponential_duration(
          Duration{static_cast<std::int64_t>(86400.0 / alerts_per_user_day *
                                             1e6)});
      if (t >= kTimeZero + days(1)) break;
      const int user_index = u;
      const std::int64_t alert_number = sent++;
      world.sim.at(t, [&world, &casts, user_index, alert_number] {
        email::Email mail;
        mail.from = "Yahoo! Alerts - Stocks <alerts@yahoo.example>";
        mail.to = casts[static_cast<std::size_t>(user_index)]
                      ->host->email_address();
        mail.subject = "portal alert " + std::to_string(alert_number);
        world.email_server.submit(std::move(mail));
      });
    }
  }

  world.sim.run_until(kTimeZero + days(1) + hours(6));

  std::int64_t routed = 0;
  for (auto& cast : casts) {
    routed += cast->host->mab() != nullptr
                  ? cast->host->mab()->stats().get("routing.dispatched")
                  : 0;
    routed += 0;
  }
  std::int64_t seen = 0;
  for (auto& cast : casts) {
    seen += static_cast<std::int64_t>(cast->user->alerts_seen());
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  print_header("E9: portal-scale replay (scaled)",
               "~225k users x ~3.46 alerts/user/day = ~778k alerts/day");
  print_row("users simulated", "225,000 (paper's portal)",
            std::to_string(users), "scale factor");
  print_row("portal alerts in the virtual day",
            strformat("%.2f per user", alerts_per_user_day),
            std::to_string(sent));
  print_row("alerts seen by users", "-",
            strformat("%lld (%.1f%%)", static_cast<long long>(seen),
                      sent == 0 ? 0.0 : 100.0 * seen / sent),
            "email losses and unread tails account for the rest");
  print_row("simulator events processed", "-",
            std::to_string(world.sim.events_processed()));
  print_row("wall-clock for the virtual day", "-",
            strformat("%.2f s", wall_seconds));
  print_row("virtual-day speedup", "-",
            strformat("%.0fx", 86400.0 / std::max(wall_seconds, 1e-9)));
  const double full_scale_estimate =
      wall_seconds * (225000.0 / std::max(users, 1));
  print_row("est. wall-clock at full 225k users", "-",
            strformat("%.0f s (%.1f h)", full_scale_estimate,
                      full_scale_estimate / 3600.0),
            "linear extrapolation");
  return 0;
}
