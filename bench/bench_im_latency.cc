// Experiment E1 — one-way IM alert delivery time (Section 5).
//
// Paper: "The one-way IM delivery time from any of the alert sources
// to MyAlertBuddy is typically less than one second."
//
// Workload: each of the five source types sends alerts through the
// SIMBA library's IM-with-ack channel to the buddy; we measure from
// alert creation at the source to the instant MyAlertBuddy accepts the
// IM off its client.
#include <map>

#include "common.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int n = options.n > 0 ? options.n : 400;

  ExperimentWorld world(options.seed);
  Cast cast(world);

  const char* source_names[] = {"aladdin", "wish", "desktop.assistant",
                                "alert.proxy.election", "alerts@yahoo.example"};
  std::vector<std::unique_ptr<core::SourceEndpoint>> sources;
  for (const char* name : source_names) {
    sources.push_back(cast.make_source(world, name));
  }

  // Observe arrivals at the MAB.
  std::map<std::string, TimePoint> created;
  Summary one_way;
  std::map<std::string, Summary> per_source;
  cast.host->set_alert_observer(
      [&](const core::Alert& alert, TimePoint received) {
        const auto it = created.find(alert.id);
        if (it == created.end()) return;
        const double seconds_taken = to_seconds(received - it->second);
        one_way.add(seconds_taken);
        per_source[alert.source].add(seconds_taken);
      });

  Rng rng = world.sim.make_rng("workload");
  for (int i = 0; i < n; ++i) {
    const std::size_t which = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sources.size()) - 1));
    world.sim.run_for(rng.exponential_duration(seconds(20)));
    core::Alert alert;
    alert.source = source_names[which];
    alert.native_category = "Sensor ON";
    alert.subject = "alert " + std::to_string(i);
    alert.body = "payload";
    alert.high_importance = true;
    alert.created_at = world.sim.now();
    alert.id = "e1-" + std::to_string(i);
    created[alert.id] = world.sim.now();
    sources[which]->send_alert(alert);
  }
  world.sim.run_for(minutes(5));

  print_header("E1: one-way IM delivery time (alert source -> MyAlertBuddy)",
               "\"typically less than one second\"");
  print_summary_seconds("one-way IM delivery", "< 1 s", one_way);
  const double under_1s =
      one_way.empty()
          ? 0.0
          : 100.0 * [&] {
              int c = 0;
              for (double s : one_way.samples()) c += (s < 1.0);
              return static_cast<double>(c) / one_way.count();
            }();
  print_row("fraction under 1 s", "\"typically\"",
            strformat("%.1f%%", under_1s));
  print_section("per source type");
  for (auto& [source, summary] : per_source) {
    print_summary_seconds("  " + source, "< 1 s", summary);
  }
  std::printf("\nDistribution of one-way times:\n");
  Histogram hist({0.25, 0.5, 0.75, 1.0, 1.5, 2.0});
  for (double s : one_way.samples()) hist.add(s);
  std::printf("%s", hist.render().c_str());
  return 0;
}
