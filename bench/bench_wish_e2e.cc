// Experiment E5 — WISH location alert end-to-end (Section 5).
//
// Paper: "From the time the laptop sends out the information
// wirelessly to the time the subscriber gets notified by an IM alert,
// the average delivery time was measured to be 5 seconds."
//
// A tracked user walks between building zones; each zone change is
// eventually picked up by the WISH client's periodic report, estimated
// by the server, written into the Soft-State Store, turned into a
// location alert, and routed via SIMBA to the subscriber's IM.
#include "common.h"
#include "sss/sss.h"
#include "wish/wish.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const int n = options.n > 0 ? options.n : 120;

  ExperimentWorld world(options.seed);
  Cast cast(world);
  auto source = cast.make_source(world, "wish");

  wish::FloorMap map;
  map.add_ap(wish::AccessPoint{"ap-ne", {10, 10}, "B31/NE"});
  map.add_ap(wish::AccessPoint{"ap-sw", {90, 60}, "B31/SW"});
  map.add_ap(wish::AccessPoint{"ap-lab", {170, 10}, "B31/Lab"});
  wish::RadioModel radio;
  radio.shadow_sigma_db = 3.0;
  sss::SssServer store(world.sim, "wish-server");
  wish::WishServer server(world.sim, map, radio, store);
  server.set_user_refresh(seconds(10), 2);
  wish::WishAlertService alerts(world.sim, store);

  // Alerts route through SIMBA; pair each alert with the walk step
  // that caused it (steps are minutes apart, the chain takes seconds).
  std::vector<TimePoint> moves;
  std::map<std::string, TimePoint> move_for;
  alerts.subscribe("victor", "walker", {}, [&](const core::Alert& alert) {
    if (!moves.empty()) move_for[alert.id] = moves.back();
    source->send_alert(alert);
  });

  wish::WishClient client(world.sim, map, radio, server, "walker",
                          seconds(4));
  const wish::Point spots[] = {{10, 10}, {90, 60}, {170, 10}};
  client.set_position(spots[0]);
  moves.push_back(world.sim.now());
  client.start();

  Rng rng = world.sim.make_rng("walk");
  for (int i = 1; i < n; ++i) {
    world.sim.run_for(minutes(2) + rng.exponential_duration(minutes(1)));
    moves.push_back(world.sim.now());
    client.set_position(spots[i % 3]);
  }
  world.sim.run_for(minutes(5));
  client.stop();

  Summary end_to_end;
  for (const auto& [id, moved_at] : move_for) {
    const auto seen = cast.user->first_seen(id);
    if (!seen) continue;
    const double secs = to_seconds(*seen - moved_at);
    if (secs > 0 && secs < 120) end_to_end.add(secs);
  }

  print_header(
      "E5: WISH wireless report -> location estimate -> SSS -> alert -> "
      "SIMBA IM -> subscriber",
      "\"the average delivery time was measured to be 5 seconds\"");
  print_summary_seconds("zone change -> subscriber IM", "avg 5 s",
                        end_to_end);
  print_row("zone changes walked", "-", std::to_string(n));
  print_row("location alerts seen", "-", std::to_string(end_to_end.count()),
            "shadowing noise can blur a boundary crossing");
  std::printf("\nPer-hop budget (mean):\n");
  std::printf("  wait for next 4 s report cycle      ~ 2.0 s\n");
  std::printf("  wireless + LAN hop to WISH server   ~ 0.1 s\n");
  std::printf("  SSS write -> alert service           ~ 0.0 s\n");
  std::printf("  SIMBA IM to buddy + log + process   ~ 1.5 s\n");
  std::printf("  buddy -> subscriber IM               ~ 0.7 s\n");
  std::printf("\nDistribution:\n");
  Histogram hist({2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0});
  for (double s : end_to_end.samples()) hist.add(s);
  std::printf("%s", hist.render().c_str());
  return 0;
}
