// Experiment K1 — event-kernel microbenchmark (DESIGN.md §12).
//
// Measures the simulation kernel in isolation, with no SIMBA models on
// top: one-shot schedule/fire throughput, schedule+cancel churn (the
// O(1) generation-checked cancel path), periodic every() re-arm cost,
// and label interning. Also reports the slab-pool footprint so the
// "allocation-light" claim is visible as data: a steady-state run must
// keep pool_slots() near the in-flight event count, not near the total
// event count.
//
// Wall timing only; the workloads themselves are deterministic. Run
// with --json PATH to record the metrics as BENCH_kernel.json.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "util/strings.h"
#include "util/wall_clock.h"

using namespace simba;
using namespace simba::bench;

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);
  const std::uint64_t one_shot_events =
      options.n > 0 ? static_cast<std::uint64_t>(options.n) : 2000000;

  print_header("K1: event-kernel microbenchmark",
               "kernel overhead must be negligible next to the models");
  JsonReport json;
  json.add("bench", std::string("bench_kernel"));
  json.add("scheduler", std::string(sim::Simulator::kScheduler));
  json.add("seed", static_cast<std::int64_t>(options.seed));

  // --- One-shot schedule/fire throughput ------------------------------------
  // kChains self-rescheduling chains keep exactly kChains events in
  // flight, so the slab pool must plateau at ~kChains slots no matter
  // how many total events fire.
  {
    constexpr int kChains = 512;
    sim::Simulator sim(options.seed);
    std::uint64_t budget = one_shot_events;
    std::function<void()> tick = [&] {
      if (budget > 0) {
        --budget;
        sim.after(micros(1), tick, "bench.chain");
      }
    };
    for (int c = 0; c < kChains; ++c) {
      if (budget == 0) break;
      --budget;
      sim.after(micros(c), tick, "bench.chain");
    }
    const util::WallTimer timer;
    sim.run();
    const double seconds = timer.seconds();
    const double rate = sim.events_processed() / std::max(seconds, 1e-9);
    print_section("one-shot schedule/fire");
    print_row("events fired", "-", std::to_string(sim.events_processed()));
    print_row("events per second", "-", strformat("%.0f", rate));
    print_row("pool slots / free", "-",
              strformat("%zu / %zu", sim.pool_slots(), sim.pool_free()),
              strformat("%d chains in flight", kChains));
    json.add("oneshot_events", sim.events_processed());
    json.add("oneshot_seconds", seconds);
    json.add("oneshot_events_per_sec", rate);
    json.add("oneshot_pool_slots", static_cast<std::int64_t>(sim.pool_slots()));
  }

  // --- Schedule + cancel churn ----------------------------------------------
  // Every round schedules a batch, cancels the odd half by EventId, and
  // drains. Cancelled entries are dropped at the heap head without
  // counting as processed, so fired == batch/2 per round.
  {
    constexpr std::uint64_t kBatch = 4096;
    const std::uint64_t rounds = std::max<std::uint64_t>(
        1, one_shot_events / (2 * kBatch));
    sim::Simulator sim(options.seed);
    std::vector<sim::EventId> ids;
    ids.reserve(kBatch);
    const util::WallTimer timer;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ids.clear();
      for (std::uint64_t i = 0; i < kBatch; ++i) {
        ids.push_back(
            sim.after(micros(static_cast<std::int64_t>(i % 97)), [] {},
                      "bench.churn"));
      }
      for (std::uint64_t i = 1; i < kBatch; i += 2) sim.cancel(ids[i]);
      sim.run();
    }
    const double seconds = timer.seconds();
    const std::uint64_t ops = rounds * kBatch + rounds * (kBatch / 2);
    const double rate = ops / std::max(seconds, 1e-9);
    print_section("schedule + cancel churn");
    print_row("schedule/cancel ops", "-", std::to_string(ops),
              strformat("%llu fired",
                        static_cast<unsigned long long>(
                            sim.events_processed())));
    print_row("ops per second", "-", strformat("%.0f", rate));
    print_row("pool slots / free", "-",
              strformat("%zu / %zu", sim.pool_slots(), sim.pool_free()),
              "slots recycled across rounds");
    json.add("cancel_ops", ops);
    json.add("cancel_seconds", seconds);
    json.add("cancel_ops_per_sec", rate);
    json.add("cancel_pool_slots", static_cast<std::int64_t>(sim.pool_slots()));
  }

  // --- Periodic every() re-arm ----------------------------------------------
  // Steady-state periodic tasks re-arm their own pool slot, so the
  // whole phase runs in kTasks slots with zero per-tick allocation.
  {
    constexpr int kTasks = 256;
    sim::Simulator sim(options.seed);
    std::uint64_t ticks = 0;
    std::vector<sim::TaskHandle> tasks;
    tasks.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      tasks.push_back(sim.every(millis(1 + t % 17), [&ticks] { ++ticks; },
                                "bench.periodic"));
    }
    const util::WallTimer timer;
    sim.run_for(seconds(static_cast<std::int64_t>(
        std::max<std::uint64_t>(1, one_shot_events / 500000))));
    const double wall = timer.seconds();
    const double rate = ticks / std::max(wall, 1e-9);
    for (sim::TaskHandle& task : tasks) task.cancel();
    print_section("periodic every() re-arm");
    print_row("periodic fires", "-", std::to_string(ticks),
              strformat("%d tasks", kTasks));
    print_row("fires per second", "-", strformat("%.0f", rate));
    print_row("pool slots / free", "-",
              strformat("%zu / %zu", sim.pool_slots(), sim.pool_free()),
              "one slot per live task");
    json.add("periodic_fires", ticks);
    json.add("periodic_seconds", wall);
    json.add("periodic_fires_per_sec", rate);
    json.add("periodic_pool_slots",
             static_cast<std::int64_t>(sim.pool_slots()));
  }

  // --- Label interning -------------------------------------------------------
  // The steady-state label path: repeated intern() of already-known
  // strings must be a single transparent set lookup, no allocation.
  {
    constexpr int kDistinct = 64;
    constexpr std::uint64_t kLookups = 1000000;
    util::StringInterner interner;
    std::vector<std::string> labels;
    labels.reserve(kDistinct);
    for (int i = 0; i < kDistinct; ++i) {
      labels.push_back("kernel.label." + std::to_string(i));
    }
    std::uintptr_t acc = 0;
    const util::WallTimer timer;
    for (std::uint64_t i = 0; i < kLookups; ++i) {
      acc += reinterpret_cast<std::uintptr_t>(
          interner.intern(labels[i % kDistinct]));
    }
    const double wall = timer.seconds();
    const double rate = kLookups / std::max(wall, 1e-9);
    print_section("label interning");
    print_row("intern() lookups", "-", std::to_string(kLookups),
              strformat("%zu distinct labels", interner.size()));
    print_row("lookups per second", "-", strformat("%.0f", rate));
    if (acc == 0) std::printf("  (impossible: null interned pointers)\n");
    json.add("intern_lookups", kLookups);
    json.add("intern_seconds", wall);
    json.add("intern_lookups_per_sec", rate);
  }

  // --- Flat-map hot-path mix ------------------------------------------------
  // The container workload behind Counters/MessageBus endpoints: a
  // bump/hit/miss mix over counter-style string keys, probed through
  // string_view (no per-lookup key allocation). The same program runs
  // against a std::map<.., std::less<>> reference so the open-addressing
  // win is visible as a ratio, not just an absolute rate.
  {
    // Sized like the per-world alert maps (portal sent_at, delivery
    // ack waiters), which hold thousands of live keys — deep enough
    // that the tree's log-n comparisons dominate the reference.
    constexpr int kDistinct = 4096;
    constexpr std::uint64_t kOps = 1000000;
    std::vector<std::string> keys;
    keys.reserve(kDistinct);
    for (int i = 0; i < kDistinct; ++i) {
      keys.push_back("portal.alert.stage." + std::to_string(i));
    }
    std::vector<std::string> misses;
    misses.reserve(kDistinct);
    for (int i = 0; i < kDistinct; ++i) {
      misses.push_back("portal.alert.absent." + std::to_string(i));
    }
    // Op schedule: 4 bumps : 3 hit-lookups : 1 miss-lookup, matching
    // the Counters::bump / bus route / partition-probe mix.
    const auto run_mix = [&](auto& map) -> std::int64_t {
      std::int64_t acc = 0;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const std::size_t k = static_cast<std::size_t>(i) % kDistinct;
        switch (i & 7u) {
          case 0:
          case 2:
          case 4:
          case 6:
            map[keys[k]] += 1;
            break;
          case 7: {
            const auto it = map.find(std::string_view(misses[k]));
            acc += it == map.end() ? 1 : 0;
            break;
          }
          default: {
            const auto it = map.find(std::string_view(keys[k]));
            acc += it == map.end() ? 0 : it->second;
            break;
          }
        }
      }
      return acc;
    };

    util::FlatMap<std::string, std::int64_t> flat;
    const util::WallTimer flat_timer;
    const std::int64_t flat_acc = run_mix(flat);
    const double flat_wall = flat_timer.seconds();

    std::map<std::string, std::int64_t, std::less<>> ref;  // the baseline
    const util::WallTimer ref_timer;
    const std::int64_t ref_acc = run_mix(ref);
    const double ref_wall = ref_timer.seconds();

    const double flat_rate = kOps / std::max(flat_wall, 1e-9);
    const double ref_rate = kOps / std::max(ref_wall, 1e-9);
    print_section("flat-map bump/lookup/miss mix");
    print_row("map ops", "-", std::to_string(kOps),
              strformat("%d distinct keys", kDistinct));
    print_row("FlatMap ops per second", "-", strformat("%.0f", flat_rate));
    print_row("std::map ops per second", "-", strformat("%.0f", ref_rate),
              strformat("%.2fx speedup", flat_rate / std::max(ref_rate, 1e-9)));
    if (flat_acc != ref_acc) {
      std::printf("  (impossible: FlatMap/std::map mix disagree: %lld vs %lld)\n",
                  static_cast<long long>(flat_acc),
                  static_cast<long long>(ref_acc));
      return 1;
    }
    json.add("map_ops", kOps);
    json.add("map_seconds", flat_wall);
    json.add("map_ops_per_sec", flat_rate);
    json.add("map_ref_ops_per_sec", ref_rate);
  }

  const std::uint64_t rss = peak_rss_bytes();
  print_section("footprint");
  print_row("peak RSS", "-",
            strformat("%.1f MiB", rss / (1024.0 * 1024.0)));
  json.add("peak_rss_bytes", rss);

  if (!options.json.empty() && !json.write_to(options.json)) return 1;
  return 0;
}
