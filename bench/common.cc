#include "common.h"

#include <sys/resource.h>

#include <cstring>

#include "util/strings.h"

namespace simba::bench {

Options Options::parse(int argc, char** argv) {
  Options options;
  // Accepts "--flag=value" and "--flag value"; returns nullptr when
  // `arg` is not `flag`, advancing `i` when the value is a separate
  // argv entry.
  auto value_of = [&](const char* arg, const char* flag,
                      int& i) -> const char* {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0) return nullptr;
    if (arg[len] == '=') return arg + len + 1;
    if (arg[len] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(arg, "--seed", i)) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--n", i)) {
      options.n = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of(arg, "--users", i)) {
      options.users = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of(arg, "--threads", i)) {
      options.threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of(arg, "--trace-jsonl", i)) {
      options.trace_jsonl = v;
    } else if (const char* v = value_of(arg, "--json", i)) {
      options.json = v;
    } else if (const char* v = value_of(arg, "--epochs", i)) {
      options.epochs = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of(arg, "--checkpoint-every", i)) {
      options.checkpoint_every = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of(arg, "--checkpoint-path", i)) {
      options.checkpoint_path = v;
    } else if (const char* v = value_of(arg, "--resume-from", i)) {
      options.resume_from = v;
    } else if (std::strcmp(arg, "--stop-at-checkpoint") == 0) {
      options.stop_at_checkpoint = true;
    }
  }
  return options;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

void JsonReport::add(const std::string& key, double value) {
  fields_.emplace_back(key, strformat("%.6g", value));
}

void JsonReport::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonReport::add(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonReport::add(const std::string& key, const std::string& value) {
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  fields_.emplace_back(key, std::move(quoted));
}

std::string JsonReport::render() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  \"";
    out += fields_[i].first;
    out += "\": ";
    out += fields_[i].second;
    out += i + 1 < fields_.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

bool JsonReport::write_to(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = render();
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  return true;
}

ExperimentWorld::ExperimentWorld(std::uint64_t seed)
    : sim(seed),
      bus(sim),
      im_server(sim, bus),
      email_server(sim),
      sms_gateway(sim, "sms.example.net") {
  // IM hop: corporate network + IM service; 150-450 ms per hop gives
  // the paper's sub-second one-way time over the two-hop path.
  net::LinkModel im_link;
  im_link.base_latency = millis(150);
  im_link.jitter = millis(300);
  im_link.loss_probability = 0.001;
  bus.set_default_link(im_link);

  // Email: mostly seconds-to-a-minute, 5% multi-hour tail reaching
  // days, a little silent loss — Section 3.1's "seconds to days".
  email::EmailDelayModel mail;
  mail.fast_probability = 0.95;
  mail.fast_median = seconds(20);
  mail.fast_sigma = 1.0;
  mail.slow_median = hours(2);
  mail.slow_sigma = 1.4;
  mail.loss_probability = 0.003;
  email_server.set_delay_model(mail);

  // SMS: "a similar range of unpredictability" per the paper.
  sms::SmsDelayModel sms_model;
  sms_model.fast_probability = 0.90;
  sms_model.fast_median = seconds(18);
  sms_model.fast_sigma = 0.9;
  sms_model.slow_median = minutes(45);
  sms_model.slow_sigma = 1.3;
  sms_model.loss_probability = 0.01;
  sms_gateway.set_delay_model(sms_model);
  sms_gateway.attach_to(email_server);
}

core::MabOptions experiment_mab_options() {
  core::MabOptions options;
  options.processing_delay = millis(900);
  options.leak_mb_per_hour = 2.0;
  options.leak_mb_per_alert = 0.05;
  return options;
}

gui::FaultProfile buddy_im_client_profile() {
  gui::FaultProfile profile;
  // Hangs needing kill+restart: ~9/month (paper).
  profile.mean_time_to_hang = days(3.2);
  // MAB-terminating exceptions ride the pump fetches: the sweep runs
  // every 30 s (2880/day); 4.2e-4 gives ~1.2 MAB restarts/day => ~36
  // per month, the paper's count.
  profile.op_exception_probability = 4.1e-4;
  profile.exception_op = "fetch_unread";
  profile.leak_mb_per_hour = 3.0;
  // Dialogs the monkey knows how to dismiss. The two previously
  // unknown system dialogs of the paper's month are scripted by the
  // E6 bench as concrete incidents, not drawn from this pool.
  profile.mean_time_to_dialog = hours(8);
  profile.dialog_pool = {
      gui::DialogSpec{"Connection lost", "OK", 0.45, true, false},
      gui::DialogSpec{"Warning: low disk space", "OK", 0.30, false, false},
      gui::DialogSpec{"Update available", "Later", 0.20, false, false},
  };
  return profile;
}

gui::FaultProfile buddy_email_client_profile() {
  gui::FaultProfile profile;
  profile.mean_time_to_hang = days(12);
  profile.leak_mb_per_hour = 2.0;
  profile.mean_time_to_dialog = hours(30);
  profile.dialog_pool = {
      gui::DialogSpec{"Send/Receive error", "OK", 0.7, true, false},
      gui::DialogSpec{"Mailbox is full", "OK", 0.3, false, false},
  };
  return profile;
}

core::MabConfig standard_config(const std::string& owner,
                                const std::string& sms_address,
                                const std::string& email_address) {
  using namespace core;
  MabConfig config;
  config.profile = UserProfile(owner);
  auto& book = config.profile.addresses();
  book.put(Address{"MSN IM", CommType::kIm, owner, true});
  book.put(Address{"Cell SMS", CommType::kSms, sms_address, true});
  book.put(Address{"Home email", CommType::kEmail, email_address, true});

  DeliveryMode urgent("Urgent");
  urgent.add_block(seconds(30)).actions.push_back(
      DeliveryAction{"MSN IM", true});
  urgent.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Cell SMS", false});
  urgent.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Home email", false});
  config.profile.define_mode(urgent);
  DeliveryMode casual("Casual");
  casual.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Home email", false});
  config.profile.define_mode(casual);
  DeliveryMode sms_first("SmsFirst");
  sms_first.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Cell SMS", false});
  sms_first.add_block(minutes(2)).actions.push_back(
      DeliveryAction{"Home email", false});
  config.profile.define_mode(sms_first);
  DeliveryMode im_only("ImOnly");
  im_only.add_block(seconds(45)).actions.push_back(
      DeliveryAction{"MSN IM", true});
  config.profile.define_mode(im_only);

  config.classifier.add_rule(
      SourceRule{"aladdin", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(
      SourceRule{"wish", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{
      "desktop.assistant", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{
      "alert.proxy.election", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{
      "alert.proxy.ps2", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{
      "alert.proxy.community", KeywordLocation::kNativeCategory, {}, ""});
  config.classifier.add_rule(SourceRule{"alerts@yahoo.example",
                                        KeywordLocation::kSenderName,
                                        {"Stocks", "Weather", "Sports"},
                                        "http://alerts.yahoo.example"});
  config.classifier.add_rule(SourceRule{
      "wsj@news.example", KeywordLocation::kSubject, {"Financial news"}, ""});

  config.categories.map_keyword("Sensor ON", "Home Emergency");
  config.categories.map_keyword("Sensor DISARM", "Home Emergency");
  config.categories.map_keyword("Sensor ARM", "Home Emergency");
  config.categories.map_keyword("Sensor OFF", "Home Routine");
  config.categories.map_keyword("Sensor Broken", "Home Maintenance");
  config.categories.map_keyword("Location", "Tracking");
  config.categories.map_keyword("Important Email", "Work Urgent");
  config.categories.map_keyword("Reminder", "Work Urgent");
  config.categories.map_keyword("Election", "News");
  config.categories.map_keyword("PlayStation2", "Shopping");
  config.categories.map_keyword("Community Photos", "Friends");
  config.categories.map_keyword("Stocks", "Investment");
  config.categories.map_keyword("Financial news", "Investment");

  auto& subs = config.subscriptions;
  subs.subscribe("Home Emergency", owner, "Urgent");
  subs.subscribe("Home Routine", owner, "Casual");
  subs.subscribe("Home Maintenance", owner, "Casual");
  subs.subscribe("Tracking", owner, "Urgent");
  subs.subscribe("Work Urgent", owner, "SmsFirst");
  subs.subscribe("News", owner, "Urgent");
  subs.subscribe("Shopping", owner, "Urgent");
  subs.subscribe("Friends", owner, "Casual");
  subs.subscribe("Investment", owner, "Casual");
  return config;
}

Cast::Cast(ExperimentWorld& world, core::MabHostOptions host_options,
           core::UserEndpointOptions user_options) {
  if (user_options.name == "user") user_options.name = "victor";
  if (user_options.ack_reaction_mean == seconds(8)) {
    user_options.ack_reaction_mean = seconds(5);
  }
  user = std::make_unique<core::UserEndpoint>(
      world.sim, world.bus, world.im_server, world.email_server,
      world.sms_gateway, user_options);
  user->start();

  host_options.owner = user_options.name;
  if (host_options.config.profile.user().empty()) {
    host_options.config = standard_config(
        user_options.name, user->sms_address(), user->email_account());
  }
  if (host_options.mab_options.processing_delay == Duration::zero() &&
      host_options.mab_options.leak_mb_per_hour == 0.0) {
    host_options.mab_options = experiment_mab_options();
  }
  host = std::make_unique<core::MabHost>(world.sim, world.bus,
                                         world.im_server, world.email_server,
                                         std::move(host_options));
  host->start();
  world.sim.run_for(seconds(30));
}

std::unique_ptr<core::SourceEndpoint> Cast::make_source(
    ExperimentWorld& world, const std::string& name,
    Duration im_block_timeout) {
  core::SourceEndpointOptions options;
  options.name = name;
  options.im_block_timeout = im_block_timeout;
  auto source = std::make_unique<core::SourceEndpoint>(
      world.sim, world.bus, world.im_server, world.email_server, options);
  source->start();
  world.sim.run_for(seconds(10));
  source->set_target(host->im_address(), host->email_address());
  return source;
}

void print_header(const std::string& experiment_id,
                  const std::string& paper_claim) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("================================================================================\n");
  std::printf("%-38s | %-22s | %s\n", "metric", "paper", "measured");
  std::printf("---------------------------------------+------------------------+----------------\n");
}

void print_row(const std::string& metric, const std::string& paper,
               const std::string& measured, const std::string& note) {
  std::printf("%-38s | %-22s | %s%s%s\n", metric.c_str(), paper.c_str(),
              measured.c_str(), note.empty() ? "" : "   # ", note.c_str());
}

void print_summary_seconds(const std::string& metric, const std::string& paper,
                           const Summary& summary) {
  print_row(metric, paper,
            strformat("mean=%.2fs p50=%.2fs p95=%.2fs (n=%zu)",
                      summary.mean(), summary.percentile(50),
                      summary.percentile(95), summary.count()));
}

void print_section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

}  // namespace simba::bench
