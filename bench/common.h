// Shared experiment harness for the SIMBA benchmarks.
//
// Unlike tests/test_world.h (fast loss-free models), this wires the
// REALISTIC models calibrated against the paper's Section 5 numbers:
//   * IM hop latency ~150-450 ms  => one-way source->MAB "< 1 second"
//   * pessimistic log write 250 ms => acknowledged in "about 1.5 s"
//   * MAB processing ~600 ms      => proxy->user routing "2.5 s"
//   * email seconds-to-days mixture, SMS carrier unpredictability
//
// Every bench binary prints "paper vs measured" rows through the
// helpers at the bottom.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mab_host.h"
#include "core/source_endpoint.h"
#include "core/user_endpoint.h"
#include "email/email_server.h"
#include "im/im_server.h"
#include "net/bus.h"
#include "sim/simulator.h"
#include "sms/sms.h"
#include "util/stats.h"
#include "util/strings.h"

namespace simba::bench {

/// Command-line: --seed, --n (workload size), --users, --threads,
/// --trace-jsonl, and --json, each accepted as "--flag=V" or
/// "--flag V", in any order; unknown flags are ignored so harness
/// wrappers can pass extras. The checkpoint/resume flags switch the
/// benches that support them (bench_portal_scale, bench_fault_month)
/// into the resumable fleet driver (fleet/resume.h); without any of
/// them the legacy single-run output is byte-identical to before.
struct Options {
  std::uint64_t seed = 42;
  int n = 0;        // 0 = bench-specific default
  int users = 0;    // 0 = bench-specific default (fleet shard count)
  int threads = 1;  // fleet worker threads; 1 = serial
  /// Non-empty: write the merged lifecycle trace as sorted JSONL here
  /// (benches that trace; see fleet::FleetReport::trace).
  std::string trace_jsonl;
  /// Non-empty: also write the machine-readable metrics (the
  /// JsonReport the bench builds) to this path.
  std::string json;

  // --- Checkpoint / resume (resumable benches only) -------------------------
  /// > 0: run the resumable driver with this many epochs instead of
  /// the bench's legacy single run.
  int epochs = 0;
  /// > 0: cut a checkpoint image once this many epochs have completed
  /// (fleet::ResumeControl::checkpoint_after_epoch).
  int checkpoint_every = 0;
  /// Die at the checkpoint instead of continuing — the "B" leg of the
  /// cross-process round-trip (tools/resume_roundtrip.py).
  bool stop_at_checkpoint = false;
  /// Non-empty: write the cut checkpoint image to this path.
  std::string checkpoint_path;
  /// Non-empty: decode this image and run the remaining epochs — the
  /// "C" leg of the round-trip.
  std::string resume_from;

  static Options parse(int argc, char** argv);
};

/// Peak resident set size of this process so far, in bytes (Linux
/// ru_maxrss). Timing/footprint-only — never fold into deterministic
/// output.
std::uint64_t peak_rss_bytes();

/// Insertion-ordered flat JSON object for bench metrics; just enough
/// for the BENCH_*.json artifacts (numbers and plain strings).
class JsonReport {
 public:
  void add(const std::string& key, double value);
  void add(const std::string& key, std::int64_t value);
  void add(const std::string& key, std::uint64_t value);
  void add(const std::string& key, int value) {
    add(key, static_cast<std::int64_t>(value));
  }
  void add(const std::string& key, const std::string& value);

  std::string render() const;
  /// Writes render() to `path`; returns false (with a stderr note) on
  /// I/O failure.
  bool write_to(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> literal
};

/// Calibrated infrastructure.
struct ExperimentWorld {
  explicit ExperimentWorld(std::uint64_t seed);

  sim::Simulator sim;
  net::MessageBus bus;
  im::ImServer im_server;
  email::EmailServer email_server;
  sms::SmsGateway sms_gateway;
};

/// The standard experiment cast: Victor (user), his buddy, and the
/// standard category/mode configuration used across experiments.
struct Cast {
  Cast(ExperimentWorld& world, core::MabHostOptions host_options = {},
       core::UserEndpointOptions user_options = {});

  std::unique_ptr<core::SourceEndpoint> make_source(
      ExperimentWorld& world, const std::string& name,
      Duration im_block_timeout = seconds(45));

  std::unique_ptr<core::UserEndpoint> user;
  std::unique_ptr<core::MabHost> host;
};

/// Standard user config: addresses, Urgent/Casual/SmsFirst modes,
/// classifier rules for all five source types, category aggregation.
core::MabConfig standard_config(const std::string& owner,
                                const std::string& sms_address,
                                const std::string& email_address);

/// Default MAB behavioral knobs for experiments (processing delay etc.).
core::MabOptions experiment_mab_options();

/// Mildly flaky client profile for the buddy's desktop, calibrated for
/// the one-month fault log (experiment E6).
gui::FaultProfile buddy_im_client_profile();
gui::FaultProfile buddy_email_client_profile();

// --- Reporting -------------------------------------------------------------

void print_header(const std::string& experiment_id,
                  const std::string& paper_claim);
void print_row(const std::string& metric, const std::string& paper,
               const std::string& measured, const std::string& note = "");
void print_summary_seconds(const std::string& metric, const std::string& paper,
                           const Summary& summary);
void print_section(const std::string& title);

}  // namespace simba::bench
