// Experiment E6 — the one-month fault log (Section 5).
//
// Paper: "within a one-month period of time, there were five extended
// IM downtimes lasting from 4 to 103 minutes. ... there were nine
// instances where MyAlertBuddy was logged out and simple re-logon
// attempts worked. In another nine instances, the hanging IM client
// had to be killed and restarted in order to re-log in. There were 36
// restarts of MyAlertBuddy by the MDC. Most of them were triggered by
// IM exceptions caused by the use of an earlier version of
// undocumented interfaces. The fault-tolerance mechanisms effectively
// recovered MyAlertBuddy from all failures except three: one failure
// was caused by a rare power outage in the office; another two were
// caused by previously unknown dialog boxes. UPS and dialog-box
// handling APIs were then used to fix the problems."
//
// Run 1 reproduces the month as deployed; run 2 applies the paper's
// fixes (UPS + the two caption/button pairs) and shows zero
// unrecovered failures.
#include <algorithm>
#include <map>

#include "common.h"
#include "resumable.h"
#include "sim/chaos.h"
#include "util/log.h"

using namespace simba;
using namespace simba::bench;

namespace {

struct MonthResult {
  sim::OutagePlan im_outages;
  std::int64_t relogins = 0;
  std::int64_t client_restarts = 0;
  std::int64_t mdc_restarts = 0;
  std::int64_t nightly_rejuvenations = 0;
  std::int64_t manual_dialog_fixes = 0;
  std::map<std::string, int> manual_by_caption;
  std::int64_t power_failures = 0;
  std::int64_t alerts_sent = 0;
  std::int64_t alerts_seen = 0;
  double availability_pct = 0.0;
};

MonthResult run_month(std::uint64_t seed, bool with_ups,
                      bool captions_known) {
  const Duration month = days(30);
  ExperimentWorld world(seed);

  // Five extended IM downtimes spread over the month, lengths drawn
  // from a heavy-tailed distribution floored at 4 minutes ("extended")
  // — the paper's were 4 to 103 minutes.
  Rng outage_rng = world.sim.make_rng("im-outages");
  sim::OutagePlan im_plan;
  for (int i = 0; i < 5; ++i) {
    const TimePoint start =
        kTimeZero + days(6 * i) +
        outage_rng.uniform_duration(hours(8), days(5));
    Duration length = outage_rng.lognormal_duration(minutes(15), 1.9);
    length = std::clamp(length, minutes(4), minutes(110));
    im_plan.add(start, length);
  }
  world.im_server.set_outage_plan(im_plan);
  // Server-side session resets: with the five outage recoveries these
  // make up the paper's nine simple re-logons.
  world.im_server.set_session_reset_mtbf(days(7));

  core::MabHostOptions host_options;
  host_options.mab_options = experiment_mab_options();
  host_options.im_client_profile = buddy_im_client_profile();
  host_options.email_client_profile = buddy_email_client_profile();
  host_options.im_client_config.event_loss_probability = 0.02;
  // One office power outage during the month.
  host_options.power_plan.add(kTimeZero + days(17) + hours(14), minutes(48));
  host_options.has_ups = with_ups;

  core::UserEndpointOptions user_options;
  user_options.name = "victor";
  Cast cast(world, std::move(host_options), user_options);
  if (captions_known) {
    // The paper's fix: the two previously unknown captions are now in
    // the Managers' registries.
    cast.host->im_manager().add_caption_pair("Debug Assertion Failed",
                                             "Abort");
    cast.host->im_manager().add_caption_pair("Catastrophic failure", "Close");
  }

  auto source = cast.make_source(world, "aladdin", seconds(45));

  // The month's two "previously unknown dialog box" incidents: system
  // modals whose captions are not in any registry (unless this run
  // applies the paper's fix), popping on days 8 and 22.
  world.sim.at(kTimeZero + days(8) + hours(10), [&] {
    gui::DialogSpec spec;
    spec.caption = "Debug Assertion Failed - msvcrt";
    spec.button = "Abort";
    spec.system_owned = true;
    cast.host->im_manager().client().pop_dialog(spec);
  }, "incident.dialog1");
  world.sim.at(kTimeZero + days(22) + hours(3), [&] {
    gui::DialogSpec spec;
    spec.caption = "Catastrophic failure 0x8000FFFF";
    spec.button = "Close";
    spec.system_owned = true;
    cast.host->im_manager().client().pop_dialog(spec);
  }, "incident.dialog2");

  // Steady alert workload all month.
  Rng workload_rng = world.sim.make_rng("workload");
  std::int64_t alerts_sent = 0;
  std::function<void()> send_next = [&] {
    if (world.sim.now() >= kTimeZero + month) return;
    core::Alert alert;
    alert.source = "aladdin";
    alert.native_category = workload_rng.chance(0.5) ? "Sensor ON"
                                                     : "Sensor OFF";
    alert.subject = "periodic " + std::to_string(alerts_sent);
    alert.high_importance = alert.native_category == "Sensor ON";
    alert.created_at = world.sim.now();
    alert.id = "month-" + std::to_string(alerts_sent);
    ++alerts_sent;
    source->send_alert(alert);
    world.sim.after(minutes(15) + workload_rng.exponential_duration(minutes(10)),
                    send_next, "workload");
  };
  world.sim.after(minutes(5), send_next, "workload");

  // The human operator: checks in every 30 minutes; a dialog that has
  // been stuck for over two hours gets clicked by hand (and counted as
  // a failure the FT mechanisms could not recover).
  std::int64_t manual_fixes = 0;
  std::map<std::string, int> manual_by_caption;
  world.sim.every(minutes(30), [&] {
    for (const auto& box : cast.host->desktop().dialogs()) {
      if (world.sim.now() - box.opened_at < hours(2)) continue;
      if (box.buttons.empty()) continue;
      // Copies: click() invalidates the dialogs() view we iterate.
      const std::string caption = box.caption;
      const std::string button = box.buttons[0];
      if (cast.host->desktop().click(caption, button)) {
        ++manual_fixes;
        manual_by_caption[caption]++;
        log_info("operator", "manually dismissed: " + caption);
      }
      break;  // one fix per visit; re-scan next visit
    }
  }, "operator");

  // Availability sampling.
  std::int64_t samples = 0, healthy_samples = 0;
  world.sim.every(minutes(1), [&] {
    ++samples;
    if (cast.host->healthy()) ++healthy_samples;
  }, "sampler");

  world.sim.run_until(kTimeZero + month);

  MonthResult result;
  result.im_outages = im_plan;
  result.relogins = cast.host->im_manager().stats().get("relogin_fixes");
  result.client_restarts =
      cast.host->im_manager().stats().get("restarts_from_sanity");
  result.mdc_restarts = cast.host->mdc().stats().get("restarts");
  result.nightly_rejuvenations =
      cast.host->stats().get("nightly_rejuvenations");
  result.manual_dialog_fixes = manual_fixes;
  result.manual_by_caption = manual_by_caption;
  result.power_failures = cast.host->stats().get("power_losses");
  result.alerts_sent = alerts_sent;
  result.alerts_seen = static_cast<std::int64_t>(cast.user->alerts_seen());
  result.availability_pct =
      samples == 0 ? 0.0
                   : 100.0 * static_cast<double>(healthy_samples) /
                         static_cast<double>(samples);
  return result;
}

void print_month(const char* label, const MonthResult& r) {
  print_section(label);
  const auto& outages = r.im_outages.outages();
  Duration shortest = outages.empty() ? Duration::zero() : outages[0].length();
  Duration longest = shortest;
  for (const auto& o : outages) {
    shortest = std::min(shortest, o.length());
    longest = std::max(longest, o.length());
  }
  print_row("extended IM downtimes", "5 (4 to 103 min)",
            strformat("%zu (%s to %s)", outages.size(),
                      format_duration(shortest).c_str(),
                      format_duration(longest).c_str()));
  print_row("logged out, re-logon worked", "9",
            std::to_string(r.relogins));
  print_row("hung IM client kill+restart", "9",
            std::to_string(r.client_restarts));
  print_row("MAB restarts by the MDC", "36 (mostly IM exceptions)",
            std::to_string(r.mdc_restarts));
  const std::int64_t unrecovered =
      r.manual_dialog_fixes + (r.power_failures > 0 ? 1 : 0);
  print_row("failures FT could not recover", "3 (1 power, 2 dialogs)",
            strformat("%lld (%lld power, %lld dialogs)",
                      static_cast<long long>(unrecovered),
                      static_cast<long long>(r.power_failures > 0 ? 1 : 0),
                      static_cast<long long>(r.manual_dialog_fixes)));
  print_row("nightly rejuvenations", "30 (one per night)",
            std::to_string(r.nightly_rejuvenations));
  print_row("alerts delivered / sent", "-",
            strformat("%lld / %lld (%.1f%%)",
                      static_cast<long long>(r.alerts_seen),
                      static_cast<long long>(r.alerts_sent),
                      r.alerts_sent == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(r.alerts_seen) /
                                static_cast<double>(r.alerts_sent)));
  print_row("MAB availability (1-min samples)", "-",
            strformat("%.2f%%", r.availability_pct));
  if (!r.manual_by_caption.empty()) {
    std::printf("\n  manually dismissed dialogs:\n");
    for (const auto& [caption, count] : r.manual_by_caption) {
      std::printf("    %dx %s\n", count, caption.c_str());
    }
  }
  std::printf("\n  IM service outage log:\n%s",
              r.im_outages.describe().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = Options::parse(argc, argv);

  // --epochs / --checkpoint-every / --resume-from: a resumable month —
  // the chaos fleet over a 30-day horizon with daily epoch boundaries,
  // each boundary a planned crash-restart (the simulator sibling of
  // the paper's nightly rejuvenation). The bespoke month replay below
  // is untouched when no checkpoint flag is given.
  if (resumable_mode(options)) {
    fleet::ResumableOptions resumable;
    resumable.kind = fleet::ResumeKind::kChaos;
    resumable.world.fidelity = fleet::ModelFidelity::kFast;
    resumable.world.email_check_interval = minutes(15);
    resumable.scenario = sim::ChaosScenario::preset("flaky_network");
    resumable.fleet.shards = 2;
    resumable.horizon = hours(24 * 30);
    resumable.drain = hours(6);
    resumable.epochs = 30;  // one boundary per simulated night
    resumable.alerts_per_user_day = 24.0;
    return run_resumable_bench("fault_month", options, resumable);
  }

  print_header("E6: one-month fault-injection log",
               "5 IM downtimes (4-103 min), 9 re-logons, 9 client "
               "kill+restarts, 36 MDC restarts, 3 unrecovered");

  const MonthResult as_deployed =
      run_month(options.seed, /*with_ups=*/false, /*captions_known=*/false);
  print_month("run 1: as deployed (no UPS, two captions unknown)",
              as_deployed);

  const MonthResult fixed =
      run_month(options.seed, /*with_ups=*/true, /*captions_known=*/true);
  print_month("run 2: after the paper's fixes (UPS + caption pairs)", fixed);

  // Optional robustness sweep: --n=K simulates K different months and
  // reports the spread of each counter (the paper's month is one
  // sample of these distributions).
  if (options.n > 1) {
    Summary relogins, client_restarts, mdc_restarts, availability;
    std::int64_t unrecovered_total = 0;
    for (int i = 0; i < options.n; ++i) {
      const MonthResult r = run_month(options.seed + 1000 + i, false, false);
      relogins.add(static_cast<double>(r.relogins));
      client_restarts.add(static_cast<double>(r.client_restarts));
      mdc_restarts.add(static_cast<double>(r.mdc_restarts));
      availability.add(r.availability_pct);
      unrecovered_total +=
          r.manual_dialog_fixes + (r.power_failures > 0 ? 1 : 0);
    }
    print_section(strformat("%d-month sweep (as-deployed config)",
                            options.n));
    print_row("re-logons per month", "9", relogins.report("%.1f"));
    print_row("client kill+restarts per month", "9",
              client_restarts.report("%.1f"));
    print_row("MDC restarts per month", "36", mdc_restarts.report("%.1f"));
    print_row("availability %", "-", availability.report("%.2f"));
    print_row("unrecovered per month", "3",
              strformat("%.1f avg",
                        static_cast<double>(unrecovered_total) / options.n));
  }
  return 0;
}
