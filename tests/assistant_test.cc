// Unit tests for the desktop assistant: idle detection, important-email
// alerts, reminders.
#include <gtest/gtest.h>

#include "assistant/assistant.h"
#include "sim/simulator.h"

namespace simba::assistant {
namespace {

class AssistantTest : public ::testing::Test {
 protected:
  AssistantTest()
      : assistant_(sim_, mail_, "me@work.example.net", minutes(15)) {
    email::EmailDelayModel fast;
    fast.fast_probability = 1.0;
    fast.fast_median = seconds(2);
    fast.fast_sigma = 0.1;
    fast.loss_probability = 0.0;
    mail_.set_delay_model(fast);
    assistant_.set_alert_sink([this](const core::Alert& a) {
      alerts_.push_back(a);
    });
    assistant_.start(seconds(30));
  }

  void send_mail(bool important, const std::string& subject) {
    email::Email m;
    m.from = "boss@work.example.net";
    m.to = "me@work.example.net";
    m.subject = subject;
    m.high_importance = important;
    ASSERT_TRUE(mail_.submit(std::move(m)).ok());
  }

  sim::Simulator sim_{1};
  email::EmailServer mail_{sim_};
  DesktopAssistant assistant_;
  std::vector<core::Alert> alerts_;
};

TEST_F(AssistantTest, IdleTracking) {
  EXPECT_FALSE(assistant_.user_away());
  sim_.run_for(minutes(20));
  EXPECT_TRUE(assistant_.user_away());
  EXPECT_EQ(assistant_.idle_time(), minutes(20));
  assistant_.record_user_activity();
  EXPECT_FALSE(assistant_.user_away());
}

TEST_F(AssistantTest, NoAlertsWhileUserPresent) {
  send_mail(true, "URGENT: production down");
  sim_.run_for(minutes(5));  // idle < threshold
  EXPECT_TRUE(alerts_.empty());
}

TEST_F(AssistantTest, ImportantEmailAlertsWhenAway) {
  sim_.run_for(minutes(20));  // user goes idle
  send_mail(true, "URGENT: production down");
  sim_.run_for(minutes(2));
  ASSERT_EQ(alerts_.size(), 1u);
  EXPECT_EQ(alerts_[0].source, "desktop.assistant");
  EXPECT_EQ(alerts_[0].native_category, "Important Email");
  EXPECT_NE(alerts_[0].subject.find("boss@work.example.net"),
            std::string::npos);
  EXPECT_TRUE(alerts_[0].high_importance);
}

TEST_F(AssistantTest, NormalEmailNeverAlerts) {
  sim_.run_for(minutes(20));
  send_mail(false, "newsletter");
  sim_.run_for(minutes(2));
  EXPECT_TRUE(alerts_.empty());
}

TEST_F(AssistantTest, MailReadByReturningUserNotReAlerted) {
  // Mail arrives while present; user reads it (activity); then leaves.
  send_mail(true, "read me");
  sim_.run_for(minutes(1));
  assistant_.record_user_activity();
  sim_.run_for(minutes(30));  // away now
  EXPECT_TRUE(alerts_.empty());
}

TEST_F(AssistantTest, ReminderAlertsOnlyWhenAway) {
  assistant_.add_reminder(kTimeZero + minutes(5), "standup", true);
  assistant_.add_reminder(kTimeZero + hours(1), "dentist", true);
  // At +5 min the user is present (popped on screen, no alert); at
  // +1 h the user has been idle since t=0.
  sim_.run_for(hours(2));
  ASSERT_EQ(alerts_.size(), 1u);
  EXPECT_EQ(alerts_[0].subject, "Reminder: dentist");
  EXPECT_EQ(assistant_.stats().get("reminders_seen_locally"), 1);
}

TEST_F(AssistantTest, LowImportanceReminderNotForwarded) {
  assistant_.add_reminder(kTimeZero + hours(1), "water plants", false);
  sim_.run_for(hours(2));
  EXPECT_TRUE(alerts_.empty());
  EXPECT_EQ(assistant_.stats().get("reminders_fired"), 1);
}

TEST_F(AssistantTest, AlertsHaveUniqueIds) {
  sim_.run_for(minutes(20));
  send_mail(true, "one");
  send_mail(true, "two");
  sim_.run_for(minutes(2));
  ASSERT_EQ(alerts_.size(), 2u);
  EXPECT_NE(alerts_[0].id, alerts_[1].id);
}

TEST_F(AssistantTest, StopHaltsSweeps) {
  assistant_.stop();
  sim_.run_for(minutes(20));
  send_mail(true, "missed");
  sim_.run_for(minutes(5));
  EXPECT_TRUE(alerts_.empty());
}

}  // namespace
}  // namespace simba::assistant
